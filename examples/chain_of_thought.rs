//! The paper's Fig. 10: chain-of-thought prompting for the Odd One Out
//! task, with eager constraints on the reasoning and a `distribute`
//! clause over the answer options.
//!
//! ```sh
//! cargo run --example chain_of_thought
//! ```

use lmql_repro::lmql_bench::experiments::{lm_derail_branch, lm_digression};
use lmql_repro::lmql_datasets::{odd_one_out, GPT_J_PROFILE};
use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let inst = odd_one_out::generate(8, 2024, &GPT_J_PROFILE)
        .into_iter()
        .find(|i| i.digression.is_some())
        .expect("some instance digresses");
    println!("question: Pick the odd word out: {}", inst.options_line);
    println!("gold: {}\n", inst.gold);

    // The simulated model: follows the instance's intended reasoning but
    // would digress mid-way when unconstrained.
    let question_line = format!("Pick the odd word out: {}", inst.options_line);
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode {
            trigger: format!("{question_line}\n"),
            script: inst.script(),
            digressions: inst
                .digression
                .iter()
                .map(|d| lm_digression(d, "So the odd one is "))
                .collect(),
            branches: inst
                .digression
                .iter()
                .map(|d| lm_derail_branch(d, "So the odd one is "))
                .collect(),
        }],
    ));

    let mut runtime = Runtime::new(lm, bpe);
    runtime.bind("FEWSHOT", Value::Str(odd_one_out::FEW_SHOT.into()));
    runtime.bind("OPTIONS", Value::Str(inst.options_line.clone()));

    let result = runtime.run(lmql_bench::queries::ODD_ONE_OUT)?;
    println!("— reasoning (digression masked out by the where clause) —");
    println!("{}\n", result.best().var_str("REASONING").unwrap_or(""));

    println!("— distribution over options —");
    for (value, p) in result.distribution.as_deref().unwrap_or(&[]) {
        println!("{:>6.1}%  {value}", p * 100.0);
    }
    println!(
        "\nanswer: {:?} ({})",
        result.top_distribution_value().unwrap_or(""),
        if inst.is_correct(result.top_distribution_value().unwrap_or("")) {
            "correct"
        } else {
            "the model's intended — possibly wrong — answer"
        }
    );
    Ok(())
}
