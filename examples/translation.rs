//! The paper's Fig. 3 few-shot translation prompt, as an LMQL query with
//! a measured distribution over candidate translations.
//!
//! ```sh
//! cargo run --example translation
//! ```

use lmql_repro::lmql_lm::{Branch, SCRIPT_LOGIT};
use lmql_repro::prelude::*;

const QUERY: &str = r#"
argmax
    "Translate English to French:\n"
    "sea otter => loutre de mer\n"
    "peppermint => menthe poivree\n"
    "plush giraffe => girafe peluche\n"
    "cheese =>[TRANSLATION]"
from "scripted-demo"
distribute TRANSLATION in [" fromage", " jambon", " poisson"]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode {
            trigger: "cheese =>".to_owned(),
            script: " fromage".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: " jambon".to_owned(),
                weight: SCRIPT_LOGIT - 2.5,
            }],
        }],
    ));

    let runtime = Runtime::new(lm, bpe);
    let result = runtime.run(QUERY)?;
    println!("{}\n", result.best().trace);
    for (t, p) in result.distribution.as_deref().unwrap_or(&[]) {
        println!("P({t}) = {:.1}%", p * 100.0);
    }
    assert_eq!(result.top_distribution_value(), Some(" fromage"));
    Ok(())
}
