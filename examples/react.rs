//! The paper's Fig. 11: interactive ReAct prompting with real tool calls
//! (mini-wiki lookups) issued from inside the query's control flow.
//!
//! ```sh
//! cargo run --example react
//! ```

use lmql_repro::lmql_datasets::tools::WikiTool;
use lmql_repro::lmql_datasets::wiki::MiniWiki;
use lmql_repro::lmql_datasets::{hotpot, GPT_J_PROFILE};
use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let wiki = MiniWiki::standard();
    let inst = hotpot::generate(3, 7, &GPT_J_PROFILE).remove(0);
    println!("{}\n", inst.question);

    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            format!("{}\n", inst.question),
            inst.script.clone(),
        )],
    ));

    let mut runtime = Runtime::new(lm, bpe);
    runtime.register_tool(Arc::new(WikiTool::new(wiki.clone())));
    runtime.bind("FEWSHOT", Value::Str(hotpot::FEW_SHOT.into()));
    runtime.bind("QUESTION", Value::Str(inst.question.clone()));

    let result = runtime.run(lmql_bench::queries::REACT)?;
    let trace = &result.best().trace;
    // Print the transcript after the few-shot prefix.
    let transcript = trace
        .split_once(&inst.question)
        .map(|(_, t)| t)
        .unwrap_or(trace);
    println!("— transcript —{transcript}");

    let answer = result
        .best()
        .var_str("SUBJECT")
        .map(|s| s.trim_end_matches('\''))
        .unwrap_or("");
    println!(
        "answer: {answer:?} — {}",
        if inst.is_correct(answer) {
            "correct"
        } else {
            "incorrect"
        }
    );

    let usage = runtime.meter().snapshot();
    println!(
        "cost: {} decoder call(s), {} model queries, {} billable tokens",
        usage.decoder_calls, usage.model_queries, usage.billable_tokens
    );
    Ok(())
}
