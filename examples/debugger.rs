//! The paper's Appendix A.3 "visual debugger", terminal edition: run a
//! query with per-step decode tracing and inspect, for every token, the
//! mask size, EOS admissibility and the pick.
//!
//! ```sh
//! cargo run --example debugger
//! ```

use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            "Mode:",
            " Search then more text that never appears",
        )],
    ));
    let runtime = Runtime::new(lm, bpe);

    let (result, trace) = runtime.run_traced(
        r#"
argmax
    "Mode:[MODE] selected."
from "scripted-demo"
where MODE in [" Search", " Finish"]
"#,
    )?;

    println!("trace: {:?}\n", result.best().trace);
    println!("— decoder graph —");
    print!("{}", trace.render());

    // The in-list constraint narrows the mask sharply at every step.
    let hole = &trace.holes[0];
    assert!(hole.steps.iter().all(|s| s.allowed < 20));
    Ok(())
}
