//! The paper's Appendix A.2 client–server split, live: an inference
//! server hosts the model in one thread; the LMQL runtime connects as a
//! client, receives the tokenizer, and runs the decoding loop locally —
//! only `score()` crosses the wire.
//!
//! ```sh
//! cargo run --example remote
//! ```

use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: the "GPU box".
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            "Q: What makes Quantum Forge?\nA:",
            " Quantum Forge makes precision actuators. Also other products nobody asked about.",
        )],
    ));
    let server = InferenceServer::spawn(lm, bpe)?;
    println!("inference server listening on {}", server.addr());

    // Client side: tokenizer ships over the wire; decoding stays local.
    let (remote, remote_bpe) = RemoteLm::connect(server.addr())?;
    let runtime = Runtime::new(Arc::new(remote), remote_bpe);

    let result = runtime.run(
        r#"
argmax
    "Q: What makes Quantum Forge?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".")
"#,
    )?;

    println!("{}", result.best().trace);
    let usage = runtime.meter().snapshot();
    println!(
        "({} forward passes crossed the network; constraints were enforced client-side)",
        usage.model_queries
    );
    server.shutdown();
    Ok(())
}
