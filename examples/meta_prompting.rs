//! The paper's Fig. 4 meta-prompting example: first ask the model for an
//! expert on the question, then ask for the expert's answer — one query,
//! no manual interaction, with constraints keeping the expert name short
//! (at most three words, ending in a period) exactly as Fig. 4d shows.
//!
//! ```sh
//! cargo run --example meta_prompting
//! ```

use lmql_repro::lmql_lm::{Digression, ScriptedLmBuilder};
use lmql_repro::prelude::*;

const QUERY: &str = r#"
argmax
    "Q: What is the circumference of the earth?\n"
    "The best person to answer this question would be[EXPERT]\n\n"
    "For instance,{EXPERT} would answer[ANSWER]"
from "scripted-demo"
where
    len(words(EXPERT)) <= 3 and stops_at(EXPERT, ".") and
    stops_at(ANSWER, ".") and not "\n" in EXPERT
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = Arc::new(Bpe::char_level(""));
    // The scripted model would love to digress into a rambling expert
    // description (the paper's Fig. 4b failure modes); the word-limit and
    // stop constraints cut it to a clean name.
    let lm = Arc::new(
        ScriptedLmBuilder::new(Arc::clone(&bpe))
            .episode(Episode {
                trigger: "would be".to_owned(),
                script: " a geophysicist.".to_owned(),
                digressions: vec![Digression {
                    at: 16,
                    text: "\nwho has a PhD in Geodesy and is a professor at Colorado State \
                           University and will probably have to refer to the relevant books"
                        .to_owned(),
                    replace_remainder: None,
                }],
                branches: vec![],
            })
            .episode(Episode::plain(
                "would answer",
                " that the circumference of the earth is about 40,075 km.",
            ))
            .build(),
    );

    let runtime = Runtime::new(lm, bpe);
    let result = runtime.run(QUERY)?;
    println!("{}\n", result.best().trace);
    println!(
        "EXPERT  = {:?}",
        result.best().var_str("EXPERT").unwrap_or("")
    );
    println!(
        "ANSWER  = {:?}",
        result.best().var_str("ANSWER").unwrap_or("")
    );
    Ok(())
}
