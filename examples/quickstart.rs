//! Quickstart: parse and run a first LMQL query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The query greets the model with a scripted prompt, decodes one hole
//! under constraints, and prints the interaction trace, the hole variable
//! and the usage metrics.

use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tokenizer (BPE trained on the built-in corpus) and a model. The
    // scripted model plays a fixed completion — swap in `standard_ngram()`
    // for free-running text.
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            "Q: What is the capital of France?\nA:",
            " The capital of France is Paris. It sits on the Seine and is lovely in spring.",
        )],
    ));

    let runtime = Runtime::new(lm, bpe);

    // Five clauses: decoder, scripted prompt, model, constraints — the
    // `where` clause stops the answer at the first sentence and bounds
    // its length, enforced token-by-token during decoding.
    let result = runtime.run(
        r#"
argmax
    "Q: What is the capital of France?\n"
    "A:[ANSWER]"
from "scripted-demo"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#,
    )?;

    let run = result.best();
    println!("trace:\n{}\n", run.trace);
    println!("ANSWER = {:?}", run.var_str("ANSWER").unwrap_or(""));

    let usage = runtime.meter().snapshot();
    println!(
        "cost: {} model queries, {} decoder call(s), {} billable tokens",
        usage.model_queries, usage.decoder_calls, usage.billable_tokens
    );

    // The constraint cut the answer at the first period:
    assert_eq!(
        run.var_str("ANSWER"),
        Some(" The capital of France is Paris.")
    );
    Ok(())
}
