//! A multi-turn chat loop (the §2 "interaction" challenge): each turn is
//! one LMQL query whose prompt recalls the running transcript, with the
//! reply constrained to stay short and stop at a sentence boundary.
//!
//! ```sh
//! cargo run --example chat
//! ```

use lmql_repro::prelude::*;

// max_length is generous because this demo model is character-level.
const TURN_QUERY: &str = r#"
argmax(max_length=200)
    "{TRANSCRIPT}"
    "User: {INPUT}\n"
    "Assistant:[REPLY]"
from "chat-model"
where stops_at(REPLY, "\n") and len(words(REPLY)) < 30 and not "User:" in REPLY
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = Arc::new(Bpe::char_level(""));
    // The scripted "chat model" knows three exchanges; a real deployment
    // would plug any LanguageModel in here.
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [
            Episode::plain(
                "User: hello\nAssistant:",
                " Hi! How can I help you today?\n",
            ),
            Episode::plain(
                "User: what is lmql\nAssistant:",
                " LMQL is a query language for language models: prompts become programs \
                 with constraints.\n",
            ),
            Episode::plain("User: bye\nAssistant:", " Goodbye! It was a pleasure.\n"),
        ],
    ));

    let mut runtime = Runtime::new(lm, bpe);
    let mut transcript = String::new();

    for user_input in ["hello", "what is lmql", "bye"] {
        runtime.bind("TRANSCRIPT", Value::Str(transcript.clone()));
        runtime.bind("INPUT", Value::Str(user_input.to_owned()));
        let result = runtime.run(TURN_QUERY)?;
        let reply = result.best().var_str("REPLY").unwrap_or("").trim_end();
        println!("User: {user_input}");
        println!("Assistant:{reply}\n");
        // The whole turn (including the reply) becomes the next prompt.
        transcript = result.best().trace.clone();
        if !transcript.ends_with('\n') {
            transcript.push('\n');
        }
    }

    let usage = runtime.meter().snapshot();
    println!(
        "(3 turns: {} decoder calls, {} model queries)",
        usage.decoder_calls, usage.model_queries
    );
    Ok(())
}
