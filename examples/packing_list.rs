//! The paper's Fig. 1b / Fig. 6 / Fig. 7 example: a scripted prompt with
//! a loop, hole reassignment, and a `distribute` clause, run against the
//! free-running n-gram model trained on the built-in corpus.
//!
//! ```sh
//! cargo run --example packing_list
//! ```

use lmql_repro::prelude::*;

const QUERY: &str = r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "-[THING]"
        things.append(THING)
    "The most important of these is [ITEM]."
from "builtin-ngram"
where stops_at(THING, "\n") and len(words(THING)) <= 3 and stops_at(ITEM, ".")
distribute ITEM in things
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let lm = corpus::standard_ngram();
    let runtime = Runtime::new(lm, bpe);

    let result = runtime.run(QUERY)?;
    println!("— interaction trace (argmax, Fig. 6a) —");
    println!("{}\n", result.best().trace);

    // Fig. 7: the distribution over the collected things.
    if let Some(dist) = &result.distribution {
        println!("— distribution over ITEM (Fig. 7) —");
        for (value, p) in dist {
            println!("{:>6.1}%  {}", p * 100.0, value.trim());
        }
    }

    let things = result.best().variables.get("things");
    println!("\nthings = {}", things.expect("bound by the loop"));
    Ok(())
}
