//! Classification with the `distribute` clause (§3): sentiment analysis
//! as a probability distribution over {POSITIVE, NEGATIVE}, the use case
//! the paper calls out for `distribute`.
//!
//! ```sh
//! cargo run --example sentiment
//! ```

use lmql_repro::lmql_lm::{Branch, SCRIPT_LOGIT};
use lmql_repro::prelude::*;

const QUERY: &str = r#"
argmax
    "Review: The staff were friendly and the food arrived quickly.\n"
    "Sentiment: [LABEL]"
from "scripted-demo"
distribute LABEL in ["POSITIVE", "NEGATIVE"]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = Arc::new(Bpe::char_level(""));
    // The simulated classifier leans positive but keeps real mass on the
    // negative label (a 0.9-logit gap ≈ 70/30).
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode {
            trigger: "Sentiment: ".to_owned(),
            script: "POSITIVE".to_owned(),
            digressions: vec![],
            branches: vec![Branch {
                at: 0,
                text: "NEGATIVE".to_owned(),
                weight: SCRIPT_LOGIT - 0.9,
            }],
        }],
    ));

    let runtime = Runtime::new(lm, bpe);
    let result = runtime.run(QUERY)?;

    println!("{}\n", result.best().trace);
    for (label, p) in result.distribution.as_deref().unwrap_or(&[]) {
        println!("P({label}) = {:.1}%", p * 100.0);
    }
    Ok(())
}
