//! The paper's Fig. 13: on-the-fly evaluation of arithmetic expressions
//! during generation — the query scans for `<<`, decodes the expression,
//! calls the external calculator, and splices the result back into the
//! prompt, all inside one decoding run.
//!
//! ```sh
//! cargo run --example arithmetic
//! ```

use lmql_repro::lmql_datasets::tools::CalculatorTool;
use lmql_repro::lmql_datasets::{gsm8k, GPT_J_PROFILE};
use lmql_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let inst = gsm8k::generate(3, 1, &GPT_J_PROFILE).remove(0);
    println!("Q: {}\n", inst.question);

    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain(
            format!("Q: {}\nA: Let's think step by step.\n", inst.question),
            inst.script.clone(),
        )],
    ));

    let mut runtime = Runtime::new(lm, bpe);
    runtime.register_tool(Arc::new(CalculatorTool));
    runtime.bind("FEWSHOT", Value::Str(gsm8k::FEW_SHOT.into()));
    runtime.bind("QUESTION", Value::Str(inst.question.clone()));

    let result = runtime.run(lmql_bench::queries::ARITHMETIC)?;
    let trace = &result.best().trace;
    let completion = trace
        .split_once("step by step.\n")
        .map(|(_, t)| t)
        .unwrap_or(trace);
    println!("— completion (calculator results spliced at `<< … >>`) —");
    println!("{completion}\n");

    let answer = result.best().var_str("RESULT").unwrap_or("");
    println!(
        "RESULT = {answer:?} — {} (gold: {})",
        if inst.is_correct(answer) {
            "correct"
        } else {
            "incorrect"
        },
        inst.answer
    );
    Ok(())
}
