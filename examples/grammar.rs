//! Grammar-constrained generation through a custom operator — the
//! extension path the paper's §7 describes ("our set of operators can
//! easily be extended by the user, allowing for the integration of
//! grammar-based parsers").
//!
//! The custom `arith(X)` operator only admits prefixes of well-formed
//! arithmetic expressions (digits, `+*-/`, balanced parentheses), so the
//! model cannot emit a malformed formula even when it wants to.
//!
//! ```sh
//! cargo run --example grammar
//! ```

use lmql_repro::lmql::constraints::{CustomOp, Fin, FinalValue, OpCtx};
use lmql_repro::prelude::*;

/// How far a string gets as an arithmetic expression.
#[derive(PartialEq)]
enum Parse {
    /// A complete, well-formed expression.
    Complete,
    /// A prefix that can still be completed.
    Prefix,
    /// Irrecoverably malformed.
    Invalid,
}

fn classify(s: &str) -> Parse {
    let mut depth = 0i32;
    let mut expect_operand = true;
    for c in s.chars() {
        match c {
            '0'..='9' => expect_operand = false,
            '(' if expect_operand => depth += 1,
            ')' if !expect_operand && depth > 0 => depth -= 1,
            '+' | '-' | '*' | '/' if !expect_operand => expect_operand = true,
            _ => return Parse::Invalid,
        }
    }
    if depth == 0 && !expect_operand {
        Parse::Complete
    } else {
        Parse::Prefix
    }
}

/// `arith(X)`: X must be (a prefix of) a well-formed expression; at EOS
/// it must be complete.
struct ArithGrammar;

impl CustomOp for ArithGrammar {
    fn forward(&self, args: &[Value], ctx: &OpCtx<'_>) -> Result<Value, String> {
        let s = args[0].as_str().ok_or("arith() expects a string")?;
        Ok(Value::Bool(match classify(s) {
            Parse::Complete => true,
            Parse::Prefix => !ctx.var_final,
            Parse::Invalid => false,
        }))
    }

    fn final_hint(&self, args: &[FinalValue], result: &Value, _ctx: &OpCtx<'_>) -> Fin {
        // A malformed prefix cannot be repaired by appending characters.
        match (args[0].fin, result) {
            (Fin::Inc, Value::Bool(false)) => Fin::Fin,
            (Fin::Fin, _) => Fin::Fin,
            _ => Fin::Var,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = Arc::new(Bpe::char_level(""));
    // The model's intended output forgets the closing parenthesis; the
    // grammar mask blocks EOS until the expression balances, and the
    // decoder completes it.
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Formula: ", "2+(3*4")],
    ));

    let mut runtime = Runtime::new(lm, bpe);
    runtime.register_constraint_op("arith", Arc::new(ArithGrammar));

    let result = runtime.run(
        r#"
argmax(max_length=24)
    "Formula: [EXPR]"
from "scripted-demo"
where arith(EXPR)
"#,
    )?;

    let expr = result.best().var_str("EXPR").unwrap_or("");
    println!("generated: {expr:?}");
    assert!(
        classify(expr) == Parse::Complete,
        "grammar constraint guaranteed well-formedness"
    );
    println!("well-formed: yes");
    Ok(())
}
