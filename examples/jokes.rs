//! The paper's Fig. 1a example: generating a dad joke with scripted beam
//! search, eager output constraining and stop phrases, against the
//! n-gram model (which has seen a handful of jokes in its corpus).
//!
//! ```sh
//! cargo run --example jokes
//! ```

use lmql_repro::prelude::*;

const QUERY: &str = r#"
beam(n=3)
    "A list of good dad jokes. A indicates the punchline\n"
    "Q: How does a penguin build its house?\n"
    "A: Igloos it together. END\n"
    "Q: [JOKE]\n"
    "A: [PUNCHLINE]\n"
from "builtin-ngram"
where
    stops_at(JOKE, "?") and stops_at(PUNCHLINE, "END")
    and len(words(JOKE)) < 20 and len(characters(PUNCHLINE)) > 10
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bpe = corpus::standard_bpe();
    let lm = corpus::standard_ngram();
    let runtime = Runtime::new(lm, bpe);

    let result = runtime.run(QUERY)?;
    for (i, run) in result.runs.iter().enumerate() {
        println!("— beam {} (log-prob {:.2}) —", i + 1, run.log_prob);
        println!("Q:{}", run.var_str("JOKE").unwrap_or(""));
        println!("A:{}\n", run.var_str("PUNCHLINE").unwrap_or(""));
    }
    Ok(())
}
