//! Integration tests for the query language surface: `while` loops and
//! f-string-style expression recalls.

use lmql::{Runtime, Value};
use lmql_lm::{Episode, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn runtime(script: &str) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("P:", script)],
    ));
    Runtime::new(lm, bpe)
}

#[test]
fn while_loop_counts() {
    let rt = runtime(" x");
    let result = rt
        .run(
            r#"
argmax
    n = 0
    while n < 5:
        n = n + 1
    "n = {n}"
from "m"
"#,
        )
        .unwrap();
    assert_eq!(result.best().trace, "n = 5");
}

#[test]
fn while_with_break_and_continue() {
    let rt = runtime(" x");
    let result = rt
        .run(
            r#"
argmax
    out = []
    n = 0
    while True:
        n = n + 1
        if n == 2:
            continue
        if n > 4:
            break
        out.append(n)
    "{out}"
from "m"
"#,
        )
        .unwrap();
    assert_eq!(result.best().trace, "[1, 3, 4]");
}

#[test]
fn while_nested_in_for_with_breaks() {
    let rt = runtime(" x");
    let result = rt
        .run(
            r#"
argmax
    out = []
    for i in range(3):
        j = 0
        while j < 10:
            j = j + 1
            if j > i:
                break
        out.append(j)
    "{out}"
from "m"
"#,
        )
        .unwrap();
    // i=0: first increment already beats i. i=1: two increments. i=2: three.
    assert_eq!(result.best().trace, "[1, 2, 3]");
}

#[test]
fn while_condition_false_initially() {
    let rt = runtime(" x");
    let result = rt
        .run("argmax\n    while False:\n        \"never\"\n    \"done\"\nfrom \"m\"\n")
        .unwrap();
    assert_eq!(result.best().trace, "done");
}

#[test]
fn while_decoding_until_model_output_condition() {
    // A genuinely LMQL-ish use: keep decoding items until the model says
    // "done".
    let rt = runtime(" alpha\n beta\n done\n");
    let result = rt
        .run(
            r#"
argmax
    "P:"
    items = []
    word = ""
    while word != " done\n":
        "[WORD]"
        word = WORD
        items.append(WORD)
    "count: {len(items)}"
from "m"
where stops_at(WORD, "\n")
"#,
        )
        .unwrap();
    assert!(
        result.best().trace.ends_with("count: 3"),
        "{}",
        result.best().trace
    );
}

#[test]
fn expression_recalls_in_prompts() {
    let rt = runtime(" x");
    let result = rt
        .run(
            r#"
argmax
    xs = ["a", "b", "c"]
    for i in range(2):
        "line {i + 1}: {xs[i]}\n"
    "total {len(xs)} and {xs[1].upper()}"
from "m"
"#,
        )
        .unwrap();
    assert_eq!(result.best().trace, "line 1: a\nline 2: b\ntotal 3 and B");
}

#[test]
fn recall_expression_errors_are_compile_time() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    \"broken {1 +}\"\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("invalid expression"), "{err}");
}

#[test]
fn recall_with_external_call() {
    let mut rt = runtime(" x");
    rt.register_external("util", "double", |args| {
        Ok(Value::Int(args[0].as_int().ok_or("int expected")? * 2))
    });
    let result = rt
        .run("import util\nargmax\n    n = 21\n    \"answer: {util.double(n)}\"\nfrom \"m\"\n")
        .unwrap();
    assert_eq!(result.best().trace, "answer: 42");
}
