//! Failure-injection tests: the runtime must surface — not mask — errors
//! from constraints, externals and dead-end decodings.

use lmql::{Error, Runtime, Value};
use lmql_lm::{Episode, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn runtime(script: &str) -> Runtime {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("P:", script)],
    ));
    Runtime::new(lm, bpe)
}

#[test]
fn unsatisfiable_constraints_are_reported() {
    let rt = runtime(" anything");
    let err = rt
        .run("argmax\n    \"P:[X]\"\nfrom \"m\"\nwhere X in [\"a\"] and X in [\"b\"]\n")
        .unwrap_err();
    assert!(matches!(err, Error::NoValidContinuation { ref var } if var == "X"));
}

#[test]
fn external_failure_propagates_with_context() {
    let mut rt = runtime(" 1+1=");
    rt.register_external("calc", "run", |_args| {
        Err::<Value, String>("arithmetic overflow".into())
    });
    let err = rt
        .run(
            "import calc\nargmax\n    \"P:[E]\"\n    r = calc.run(E)\nfrom \"m\"\nwhere stops_at(E, \"=\")\n",
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("calc.run"), "{msg}");
    assert!(msg.contains("arithmetic overflow"), "{msg}");
}

#[test]
fn unregistered_external_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("import nope\nargmax\n    r = nope.f(1)\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("not registered"), "{err}");
}

#[test]
fn undefined_variable_in_prompt_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    \"value: {missing}\"\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

#[test]
fn type_errors_carry_spans() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    y = 1 + \"s\"\nfrom \"m\"\n")
        .unwrap_err();
    let Error::Eval { span, .. } = err else {
        panic!("expected eval error, got {err}");
    };
    assert_eq!(span.start.line, 2);
}

#[test]
fn division_and_modulo_by_zero() {
    let rt = runtime(" x");
    for src in ["y = 1 / 0", "y = 1 % 0"] {
        let err = rt
            .run(&format!("argmax\n    {src}\nfrom \"m\"\n"))
            .unwrap_err();
        assert!(err.to_string().contains("zero"), "{src}: {err}");
    }
}

#[test]
fn index_out_of_range_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    xs = [1]\n    y = xs[5]\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn iterating_non_iterable_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    for i in 5:\n        pass\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("iterate"), "{err}");
}

#[test]
fn distribute_over_non_list_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    \"P:[X]\"\nfrom \"m\"\ndistribute X in 5\n")
        .unwrap_err();
    assert!(err.to_string().contains("must be a list"), "{err}");
}

#[test]
fn distribute_over_empty_support_is_an_error() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    \"P:[X]\"\nfrom \"m\"\ndistribute X in []\n")
        .unwrap_err();
    assert!(err.to_string().contains("empty"), "{err}");
}

#[test]
fn errors_inside_loops_point_at_the_statement() {
    let rt = runtime(" x");
    let err = rt
        .run("argmax\n    for i in range(3):\n        y = undefined_var\nfrom \"m\"\n")
        .unwrap_err();
    assert!(err.to_string().contains("undefined_var"), "{err}");
    let Error::Eval { span, .. } = err else {
        panic!()
    };
    assert_eq!(span.start.line, 3);
}

#[test]
fn string_iteration_is_supported_not_an_error() {
    // Python iterates strings by character; so do we.
    let rt = runtime(" x");
    let result = rt
        .run("argmax\n    out = []\n    for c in \"abc\":\n        out.append(c)\n    \"{out}\"\nfrom \"m\"\n")
        .unwrap();
    assert_eq!(result.best().trace, "['a', 'b', 'c']");
}
