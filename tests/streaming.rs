//! Streaming acceptance tests (DESIGN.md §11): for every decoder clause,
//! the event stream reassembles **byte-identically** to the non-streamed
//! result — same traces, same hole values, bit-exact log-probabilities —
//! and every event survives a wire round trip.

use lmql_repro::prelude::*;

const ARGMAX_QUERY: &str = "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const SAMPLE_QUERY: &str = "sample(n=3, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const BEAM_QUERY: &str = "beam(n=2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const DISTRIBUTE_QUERY: &str = "argmax\n    \"Review: great\\nSentiment:[CLS]\"\nfrom \"m\"\ndistribute CLS in [\" positive\", \" negative\"]\n";

fn runtime() -> Runtime {
    let mut rt = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe());
    rt.options_mut().max_tokens_per_hole = 24;
    rt
}

/// Runs `source` twice — plain and streamed — and checks the reassembled
/// stream matches the direct result byte for byte and bit for bit.
fn assert_stream_matches(source: &str) -> Vec<QueryEvent> {
    let direct = runtime().run(source).expect("direct run");

    let (sink, collector) = StreamSink::collector();
    let streamed = runtime().run_streamed(source, sink).expect("streamed run");
    let events = collector.events();
    assert!(!events.is_empty(), "stream produced no events");

    // The streamed call returns the same result object as the plain one.
    assert_eq!(streamed.runs.len(), direct.runs.len());
    for (a, b) in streamed.runs.iter().zip(&direct.runs) {
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
    }

    // The event stream alone rebuilds the result: same run order, same
    // traces, same hole values, bit-exact scores.
    let rebuilt = Reassembler::from_events(&events).expect("reassembly");
    assert!(rebuilt.error.is_none(), "stream ended in error");
    assert_eq!(rebuilt.runs.len(), direct.runs.len(), "run count differs");
    for (got, want) in rebuilt.runs.iter().zip(&direct.runs) {
        assert_eq!(got.trace, want.trace, "trace differs");
        let want_holes: Vec<(String, String)> = want
            .hole_records
            .iter()
            .map(|r| (r.var.clone(), r.value.clone()))
            .collect();
        assert_eq!(got.holes, want_holes, "holes differ");
        assert_eq!(
            got.log_prob.to_bits(),
            want.log_prob.to_bits(),
            "log-prob not bit-exact: {} vs {}",
            got.log_prob,
            want.log_prob
        );
    }
    match (&rebuilt.distribution, &direct.distribution) {
        (None, None) => {}
        (Some(got), Some(want)) => {
            assert_eq!(got.len(), want.len());
            for ((gv, gp), (wv, wp)) in got.iter().zip(want) {
                assert_eq!(gv, wv);
                assert_eq!(gp.to_bits(), wp.to_bits());
            }
        }
        other => panic!("distribution presence differs: {other:?}"),
    }
    assert!(rebuilt.usage.is_some(), "no Usage event");
    events
}

#[test]
fn argmax_stream_reassembles_byte_identically() {
    let events = assert_stream_matches(ARGMAX_QUERY);
    // Single-hypothesis decoding never forks.
    assert!(!events
        .iter()
        .any(|e| matches!(e, QueryEvent::BeamFork { .. })));
}

#[test]
fn sample_stream_reassembles_byte_identically() {
    let events = assert_stream_matches(SAMPLE_QUERY);
    // sample(n=3) streams three independent hypotheses: paths 0, 1, 2.
    let mut paths: Vec<u32> = events.iter().filter_map(|e| e.path()).collect();
    paths.sort_unstable();
    paths.dedup();
    assert_eq!(paths, vec![0, 1, 2]);
}

#[test]
fn beam_stream_reassembles_byte_identically() {
    let events = assert_stream_matches(BEAM_QUERY);
    // Beam search announces every forked hypothesis before its first
    // delta, and prunes carry a previously-introduced path id.
    let mut known = vec![0u32];
    for event in &events {
        match event {
            QueryEvent::BeamFork { parent, child } => {
                assert!(known.contains(parent), "fork from unknown path");
                assert!(!known.contains(child), "child id reused");
                known.push(*child);
            }
            QueryEvent::BeamPrune { path } => {
                assert!(known.contains(path), "pruned unknown path");
            }
            other => {
                if let Some(p) = other.path() {
                    assert!(known.contains(&p), "event on unannounced path");
                }
            }
        }
    }
}

#[test]
fn distribute_stream_reassembles_byte_identically() {
    assert_stream_matches(DISTRIBUTE_QUERY);
}

#[test]
fn every_event_round_trips_the_wire() {
    for source in [ARGMAX_QUERY, SAMPLE_QUERY, BEAM_QUERY, DISTRIBUTE_QUERY] {
        let (sink, collector) = StreamSink::collector();
        runtime().run_streamed(source, sink).expect("streamed run");
        for event in collector.events() {
            let wire = event.to_wire();
            let back = QueryEvent::from_wire(&wire)
                .unwrap_or_else(|e| panic!("{wire:?} failed to parse: {e}"));
            assert_eq!(back, event, "wire round trip changed {wire:?}");
        }
    }
}

#[test]
fn token_deltas_concatenate_to_hole_values() {
    // Beam is excluded: a forked hypothesis only streams deltas decoded
    // *after* the fork (the prefix lives on the parent's path), so the
    // per-path concatenation is a suffix there — the reassembler handles
    // that by copying partial state at the fork.
    for source in [ARGMAX_QUERY, SAMPLE_QUERY] {
        let (sink, collector) = StreamSink::collector();
        runtime().run_streamed(source, sink).expect("streamed run");
        let events = collector.events();
        for done in &events {
            let QueryEvent::VariableDone {
                path, var, value, ..
            } = done
            else {
                continue;
            };
            let concat: String = events
                .iter()
                .filter_map(|e| match e {
                    QueryEvent::TokenDelta {
                        path: p,
                        var: v,
                        text,
                        ..
                    } if p == path && v == var => Some(text.as_str()),
                    _ => None,
                })
                .collect();
            // Beam EOS picks may finish a hole without a delta; whenever
            // deltas exist they must concatenate to the final value.
            if !concat.is_empty() {
                assert_eq!(&concat, value, "deltas disagree with {var} on path {path}");
            }
        }
    }
}
