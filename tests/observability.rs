//! The observability acceptance path end to end: a `sample(n)` query run
//! through the concurrent engine with tracing on must emit a Chrome-trace
//! JSON (loadable in `chrome://tracing`) containing spans for hole
//! decoding, batch dispatch and cache hits — and metrics must agree with
//! the usage meter.

use lmql_engine::{Engine, EngineConfig, EngineObs};
use lmql_lm::{Episode, ScriptedLm};
use lmql_obs::{chrome, Registry, Tracer};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

const SAMPLE_QUERY: &str =
    "sample(n=2, temperature=1.2)\n    \"Q:[A]\"\nfrom \"m\"\nwhere stops_at(A, \".\")\n";

fn traced_engine(tracer: Tracer, registry: Option<Registry>) -> Engine {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Q:", " ok.")],
    ));
    Engine::new_with_obs(
        lm,
        bpe,
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        EngineObs { tracer, registry },
    )
}

#[test]
fn sample_run_emits_chrome_trace_with_required_spans() {
    let eng = traced_engine(Tracer::manual(), None);
    // Two identical sample(n) queries: the repeat's contexts are all
    // prefix-cache hits.
    let results = eng.run_queries(&[SAMPLE_QUERY, SAMPLE_QUERY]);
    assert!(results.iter().all(|r| r.is_ok()), "{results:?}");

    let events = eng.tracer().events();
    let json = chrome::to_chrome_json(&events);

    // Loadable in chrome://tracing: the canonical object form with a
    // traceEvents array of complete ("X") and instant ("i") events.
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"i\""));
    let parsed = chrome::parse_chrome_json(&json).expect("trace JSON round-trips");
    assert_eq!(parsed, events, "export is lossless");

    // The required spans, found in the JSON itself (not just the event
    // list): hole decoding, batch dispatch, cache hits.
    assert!(json.contains("\"name\":\"hole:A\""), "hole-decoding span");
    assert!(
        json.contains("\"name\":\"dispatch\""),
        "batch-dispatch span"
    );
    assert!(json.contains("\"name\":\"hit\""), "cache-hit instant");
    assert!(
        json.contains("\"name\":\"run:sample\""),
        "decoder-level span"
    );
    assert!(json.contains("\"name\":\"compute_mask\""), "mask span");
}

#[test]
fn engine_metrics_snapshot_is_consistent_with_usage() {
    let registry = Registry::new();
    let eng = traced_engine(Tracer::disabled(), Some(registry.clone()));
    let results = eng.run_queries(&[SAMPLE_QUERY]);
    assert!(results.iter().all(|r| r.is_ok()));

    let usage = eng.stats().usage;
    assert!(usage.model_queries > 0);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("lm.model_queries"), Some(usage.model_queries));
    assert_eq!(
        snap.histogram("engine.batch.size").unwrap().sum,
        usage.model_queries,
        "every model query went through a dispatch"
    );
    // The text exposition carries all three metric kinds.
    let text = snap.render_text();
    assert!(text.contains("counter lm.model_queries"), "{text}");
    assert!(text.contains("gauge engine.cache.entries"), "{text}");
    assert!(text.contains("histogram engine.batch.wait_us"), "{text}");
}

#[test]
fn disabled_tracer_stays_silent_through_the_engine() {
    let eng = traced_engine(Tracer::disabled(), None);
    let results = eng.run_queries(&[SAMPLE_QUERY]);
    assert!(results.iter().all(|r| r.is_ok()));
    assert!(eng.tracer().events().is_empty());
    assert_eq!(chrome::to_chrome_json(&[]), "{\"traceEvents\":[\n\n]}\n");
}
