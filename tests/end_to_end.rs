//! Cross-crate integration tests: full pipelines from dataset instances
//! through scripted models, the LMQL runtime and the baseline, checking
//! the paper's qualitative claims end to end.

use lmql::constraints::MaskEngine;
use lmql::{Runtime, Value};
use lmql_bench::experiments::{lm_derail_branch, lm_digression};
use lmql_datasets::wiki::MiniWiki;
use lmql_datasets::{calculator, gsm8k, hotpot, odd_one_out, GPT_J_PROFILE};
use lmql_lm::{corpus, Episode, ScriptedLm};
use std::sync::Arc;

fn cot_runtime(inst: &odd_one_out::Instance) -> Runtime {
    let bpe = corpus::standard_bpe();
    let question_line = format!("Pick the odd word out: {}", inst.options_line);
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode {
            trigger: format!("{question_line}\n"),
            script: inst.script(),
            digressions: inst
                .digression
                .iter()
                .map(|d| lm_digression(d, "So the odd one is "))
                .collect(),
            branches: inst
                .digression
                .iter()
                .map(|d| lm_derail_branch(d, "So the odd one is "))
                .collect(),
        }],
    ));
    let mut rt = Runtime::new(lm, bpe);
    rt.bind("FEWSHOT", Value::Str(odd_one_out::FEW_SHOT.into()));
    rt.bind("OPTIONS", Value::Str(inst.options_line.clone()));
    rt
}

#[test]
fn lmql_suppresses_digressions_end_to_end() {
    let inst = odd_one_out::generate(40, 5, &GPT_J_PROFILE)
        .into_iter()
        .find(|i| i.digression.is_some())
        .expect("some instance digresses");
    let rt = cot_runtime(&inst);
    let result = rt.run(lmql_bench::queries::ODD_ONE_OUT).unwrap();
    // The where clause forbids newlines in REASONING, so the digression
    // (which starts with one) was masked and the reasoning is the clean
    // intended sentence.
    assert_eq!(
        result.best().var_str("REASONING"),
        Some(inst.reasoning.as_str())
    );
    assert!(!result.best().var_str("REASONING").unwrap().contains("Pick"));
    // The answer is the model's intended one.
    assert_eq!(
        result.top_distribution_value(),
        Some(inst.model_answer.as_str())
    );
}

#[test]
fn both_mask_engines_produce_identical_runs() {
    let inst = odd_one_out::generate(3, 8, &GPT_J_PROFILE).remove(1);
    let mut traces = Vec::new();
    for engine in [MaskEngine::Exact, MaskEngine::Symbolic] {
        let mut rt = cot_runtime(&inst);
        rt.options_mut().engine = engine;
        let result = rt.run(lmql_bench::queries::ODD_ONE_OUT).unwrap();
        traces.push(result.best().trace.clone());
    }
    assert_eq!(traces[0], traces[1]);
}

#[test]
fn react_full_pipeline_with_real_lookups() {
    let wiki = MiniWiki::standard();
    for inst in hotpot::generate(4, 11, &GPT_J_PROFILE) {
        let bpe = corpus::standard_bpe();
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain(
                format!("{}\n", inst.question),
                inst.script.clone(),
            )],
        ));
        let mut rt = Runtime::new(lm, bpe);
        let w = wiki.clone();
        rt.register_external("wikipedia_utils", "search", move |args| {
            Ok(Value::Str(w.search(args[0].as_str().ok_or("bad arg")?)))
        });
        rt.bind("FEWSHOT", Value::Str(hotpot::FEW_SHOT.into()));
        rt.bind("QUESTION", Value::Str(inst.question.clone()));
        let result = rt.run(lmql_bench::queries::REACT).unwrap();

        // The answer comes back through the Finish action's SUBJECT.
        let answer = result
            .best()
            .var_str("SUBJECT")
            .map(|s| s.trim_end_matches('\''))
            .unwrap();
        assert!(inst.is_correct(answer), "wrong answer {answer:?}");
        // The observations in the trace are real wiki search results.
        for hop in &inst.hops {
            assert!(result
                .best()
                .trace
                .contains(&format!("Obs: {}", wiki.search(hop))));
        }
        // One decoder call for the whole interactive flow.
        assert_eq!(rt.meter().snapshot().decoder_calls, 1);
    }
}

#[test]
fn arithmetic_full_pipeline_with_calculator() {
    for inst in gsm8k::generate(4, 13, &GPT_J_PROFILE) {
        let bpe = corpus::standard_bpe();
        let run_on = format!("{}\n\n{}", inst.script, gsm8k::FEW_SHOT);
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain(
                format!("Q: {}\nA: Let's think step by step.\n", inst.question),
                run_on,
            )],
        ));
        let mut rt = Runtime::new(lm, bpe);
        rt.register_external("calculator", "run", |args| {
            calculator::run(args[0].as_str().ok_or("bad arg")?)
                .map(Value::Int)
                .map_err(|e| e.to_string())
        });
        rt.bind("FEWSHOT", Value::Str(gsm8k::FEW_SHOT.into()));
        rt.bind("QUESTION", Value::Str(inst.question.clone()));
        let result = rt.run(lmql_bench::queries::ARITHMETIC).unwrap();

        assert!(inst.is_correct(result.best().var_str("RESULT").unwrap()));
        // Every calculator result was spliced into the trace.
        for (_, v) in &inst.expressions {
            assert!(result.best().trace.contains(&format!(" {v} >>")));
        }
    }
}

#[test]
fn constraints_can_force_unscripted_output() {
    // §2.3: "constraints can also force a model to generate text that
    // unconstrained it would have never explored". The script wants
    // " maybe"; the constraint only allows yes/no.
    let bpe = corpus::standard_bpe();
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Verdict:", " maybe")],
    ));
    let rt = Runtime::new(lm, bpe);
    let result = rt
        .run("argmax\n    \"Verdict:[V]\"\nfrom \"m\"\nwhere V in [\" yes\", \" no\"]\n")
        .unwrap();
    let v = result.best().var_str("V").unwrap();
    assert!(v == " yes" || v == " no");
}

#[test]
fn sampling_is_deterministic_per_seed() {
    let bpe = corpus::standard_bpe();
    let lm = corpus::standard_ngram();
    let run = |seed: u64| {
        let mut rt = Runtime::new(lm.clone(), Arc::clone(&bpe));
        rt.options_mut().seed = seed;
        rt.run(
            "sample(n=2, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n",
        )
        .unwrap()
        .runs
        .iter()
        .map(|r| r.trace.clone())
        .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(1));
    // Individual seed pairs may coincide on a peaked distribution; across
    // a handful of seeds the sampler must explore more than one outcome.
    let outcomes: std::collections::HashSet<Vec<String>> = (1..=6).map(run).collect();
    assert!(
        outcomes.len() > 1,
        "different seeds should explore differently"
    );
}
