//! The PR's acceptance bar: with [`ChaosLm`] injecting transient faults
//! into ~20% of score calls (fixed seed), example queries under both
//! `argmax` and `sample(n)` decoding produce *byte-identical* output to
//! the fault-free run once a [`RetryLm`] absorbs the faults.
//!
//! "Byte-identical" is checked on the full `Debug` rendering of every
//! run's trace and log-probability (f64 `Debug` is shortest-roundtrip,
//! so equal strings mean equal bits).

use lmql::Runtime;
use lmql_lm::{corpus, ChaosLm, FaultPlan, LanguageModel, RetryLm, RetryPolicy};
use std::sync::Arc;
use std::time::Duration;

const ARGMAX_QUERY: &str = "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const SAMPLE_QUERY: &str = "sample(n=2, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";

/// Retries with sub-millisecond backoff: enough budget to out-last any
/// fault streak the 20% plan produces, fast enough for CI.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 12,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
        jitter: 0.5,
        seed: 5,
        deadline: None,
    }
}

/// Runs `query` at `seed` on `lm` and renders every run byte-exactly.
fn run_rendered(lm: Arc<dyn LanguageModel>, query: &str, seed: u64) -> String {
    let bpe = corpus::standard_bpe();
    let mut rt = Runtime::new(lm, bpe);
    rt.options_mut().seed = seed;
    let result = rt.run(query).expect("query must succeed");
    result
        .runs
        .iter()
        .map(|r| format!("{:?} {:?}\n", r.trace, r.log_prob))
        .collect()
}

fn chaos_model(chaos_seed: u64) -> Arc<dyn LanguageModel> {
    let chaos = ChaosLm::new(
        corpus::standard_ngram(),
        FaultPlan::transient(chaos_seed, 0.2),
    );
    Arc::new(RetryLm::new(chaos, chaos_retry()))
}

#[test]
fn argmax_is_byte_identical_under_chaos() {
    let reference = run_rendered(corpus::standard_ngram(), ARGMAX_QUERY, 1);
    // Chaos seed chosen so the plan actually fires on this query's small
    // call count (seed 6 injects errors *and* a truncated reply here).
    let chaos = ChaosLm::new(corpus::standard_ngram(), FaultPlan::transient(6, 0.2));
    let stats = chaos.stats().clone();
    let lm: Arc<dyn LanguageModel> = Arc::new(RetryLm::new(chaos, chaos_retry()));
    let under_chaos = run_rendered(lm, ARGMAX_QUERY, 1);
    assert!(stats.total_faults() > 0, "the fault plan must fire");
    assert_eq!(under_chaos, reference);
}

#[test]
fn sample_n_is_byte_identical_under_chaos() {
    for seed in [1, 2, 3] {
        let reference = run_rendered(corpus::standard_ngram(), SAMPLE_QUERY, seed);
        let under_chaos = run_rendered(chaos_model(13 + seed), SAMPLE_QUERY, seed);
        assert_eq!(under_chaos, reference, "decoder seed {seed}");
    }
}

#[test]
fn chaos_runs_replay_identically() {
    let once = run_rendered(chaos_model(21), SAMPLE_QUERY, 4);
    let twice = run_rendered(chaos_model(21), SAMPLE_QUERY, 4);
    assert_eq!(once, twice, "same chaos seed, same output bytes");
}
