//! Soundness of the dynamic-set constraint over tool-produced lists
//! (DESIGN.md §16): `ANSWER in spans`, where `spans` comes from
//! `retrieval.spans(...)` at run time, must decode a member of the set —
//! and must do so identically under the symbolic masker, the exact
//! reference masker, and with constraint automata on or off.

use lmql::constraints::MaskEngine;
use lmql::{Runtime, Value};
use lmql_lm::{Episode, ScriptedLm};
use lmql_retrieval::{Bm25Index, ChunkConfig, Document, FactCorpus, RetrievalTool};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn scripted(bpe: &Arc<Bpe>, answer: &str) -> Arc<ScriptedLm> {
    Arc::new(ScriptedLm::new(
        Arc::clone(bpe),
        [Episode::plain("Answer:", format!(" {answer} END"))],
    ))
}

/// Runs the retrieval-QA query under one masker configuration.
fn run_config(
    tool: &RetrievalTool,
    question: &str,
    answer: &str,
    engine: MaskEngine,
    automata: bool,
) -> (String, String, u64) {
    let bpe = Arc::new(Bpe::char_level(""));
    let mut rt = Runtime::new(scripted(&bpe, answer), Arc::clone(&bpe));
    rt.options_mut().engine = engine;
    rt.options_mut().mask.automata = automata;
    rt.register_tool(Arc::new(tool.clone()));
    rt.bind("QUESTION", Value::Str(question.to_owned()));
    let result = rt
        .run(lmql_bench::queries::RETRIEVAL_QA)
        .expect("query runs");
    let best = result.best();
    (
        best.var_str("ANSWER").expect("ANSWER decoded").to_owned(),
        best.trace.clone(),
        best.log_prob.to_bits(),
    )
}

#[test]
fn spans_constraint_identical_across_mask_engines() {
    let corpus = FactCorpus::generate(6, 13);
    let index = Arc::new(Bm25Index::build(&corpus.documents, ChunkConfig::default()));
    let tool = RetrievalTool::new(index, 3);

    for inst in corpus.questions.iter().take(4) {
        let spans = tool.spans(&inst.question);
        assert!(spans.contains(&inst.answer), "retrieval must surface gold");

        let reference = run_config(
            &tool,
            &inst.question,
            &inst.answer,
            MaskEngine::Exact,
            false,
        );
        for (engine, automata) in [
            (MaskEngine::Exact, true),
            (MaskEngine::Symbolic, false),
            (MaskEngine::Symbolic, true),
        ] {
            let got = run_config(&tool, &inst.question, &inst.answer, engine, automata);
            assert_eq!(
                got, reference,
                "{engine:?}/automata={automata} diverged from reference masker"
            );
        }
        // Sound and, with the gold span retrievable, also correct.
        assert_eq!(reference.0, inst.answer);
        assert!(spans.contains(&reference.0));
    }
}

#[test]
fn spans_constraint_never_decodes_outside_the_set() {
    // An index whose spans do NOT include what the model wants to say:
    // the constraint must force a member of the retrieved set anyway.
    let docs = [
        Document::new("Gate note", "The Crimson gate opens with the word Ember."),
        Document::new(
            "Tower note",
            "The Silver tower is watched by Marshal Vidric.",
        ),
    ];
    let index = Arc::new(Bm25Index::build(&docs, ChunkConfig::default()));
    let tool = RetrievalTool::new(index, 2);
    let question = "What opens the Crimson gate?";
    let spans = tool.spans(question);
    assert!(!spans.is_empty());
    let off_script = "Bazinga"; // not a retrievable span anywhere
    assert!(!spans.contains(&off_script.to_owned()));

    for (engine, automata) in [
        (MaskEngine::Exact, false),
        (MaskEngine::Symbolic, false),
        (MaskEngine::Symbolic, true),
    ] {
        let (answer, _, _) = run_config(&tool, question, off_script, engine, automata);
        assert!(
            spans.contains(&answer),
            "{engine:?}/automata={automata}: decoded {answer:?} outside retrieved spans {spans:?}"
        );
    }
}

#[test]
fn tool_usage_is_metered_per_invocation() {
    let corpus = FactCorpus::generate(4, 3);
    let index = Arc::new(Bm25Index::build(&corpus.documents, ChunkConfig::default()));
    let bpe = Arc::new(Bpe::char_level(""));
    let inst = &corpus.questions[0];
    let mut rt = Runtime::new(scripted(&bpe, &inst.answer), Arc::clone(&bpe));
    rt.register_tool(Arc::new(RetrievalTool::new(index, 3)));
    rt.bind("QUESTION", Value::Str(inst.question.clone()));
    rt.run(lmql_bench::queries::RETRIEVAL_QA)
        .expect("query runs");
    // One `search` + one `spans` call.
    assert_eq!(rt.tools().usage(), vec![("retrieval".to_owned(), 2)]);
}
