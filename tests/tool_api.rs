//! Differential suite for the first-class tool API (DESIGN.md §16).
//!
//! The calculator and wiki tools must be *byte-identical* to the legacy
//! `register_external` closures they replace — same traces, same hole
//! values, same log-probs — across every decoder (argmax, sample, beam,
//! distribute). Also covers the request-level registry
//! ([`QueryRequest::tool`]) and the engine-config path.

use lmql::{QueryRequest, QueryResult, Runtime, ToolRegistry, Value};
use lmql_datasets::tools::{CalculatorTool, WikiTool};
use lmql_datasets::wiki::MiniWiki;
use lmql_datasets::{calculator, hotpot, GPT_J_PROFILE};
use lmql_engine::{Engine, EngineConfig};
use lmql_lm::{corpus, Episode, LanguageModel, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

/// Everything observable about a result, for byte-identity assertions.
type RunFingerprint = (String, u64, Vec<(String, String)>);

fn fingerprint(result: &QueryResult) -> Vec<RunFingerprint> {
    result
        .runs
        .iter()
        .map(|run| {
            (
                run.trace.clone(),
                run.log_prob.to_bits(),
                run.hole_records
                    .iter()
                    .map(|r| (r.var.clone(), r.value.clone()))
                    .collect(),
            )
        })
        .collect()
}

fn calc_model(bpe: &Arc<Bpe>) -> Arc<dyn LanguageModel> {
    Arc::new(ScriptedLm::new(
        Arc::clone(bpe),
        [Episode::plain("Q: add <<", "3 + 4 =")],
    ))
}

/// Every branch the decoder can take feeds the calculator a parseable
/// expression, so sampled/beam paths that leave the model's intended
/// script still exercise the tool rather than erroring out.
fn calc_query(decoder: &str) -> String {
    format!(
        "import calculator\n{decoder}\n    \"Q: add <<[EXPR]\"\n    \
         result = calculator.run(EXPR)\n    \" {{result}} >>\"\nfrom \"m\"\n\
         where EXPR in [\"3 + 4 =\", \"3 * 4 =\"]\n"
    )
}

/// The legacy closure registration the tool replaces (verbatim from the
/// pre-tool examples).
fn register_legacy_calculator(rt: &mut Runtime) {
    #[allow(deprecated)]
    rt.register_external("calculator", "run", |args| {
        calculator::run(args[0].as_str().ok_or("bad arg")?)
            .map(Value::Int)
            .map_err(|e| e.to_string())
    });
}

#[test]
fn calculator_tool_matches_legacy_closure_across_decoders() {
    let bpe = Arc::new(Bpe::char_level(""));
    let decoders = [
        "argmax",
        "sample(n=2, temperature=1.2)",
        "beam(n=2)",
        // distribute rides on an argmax body (the fourth decoder mode).
    ];
    for decoder in decoders {
        let source = calc_query(decoder);

        let mut legacy = Runtime::new(calc_model(&bpe), Arc::clone(&bpe));
        legacy.options_mut().seed = 7;
        register_legacy_calculator(&mut legacy);
        let legacy_result = legacy.run(&source).expect("legacy run");

        let mut tooled = Runtime::new(calc_model(&bpe), Arc::clone(&bpe));
        tooled.options_mut().seed = 7;
        tooled.register_tool(Arc::new(CalculatorTool));
        let tooled_result = tooled.run(&source).expect("tooled run");

        assert_eq!(
            fingerprint(&legacy_result),
            fingerprint(&tooled_result),
            "decoder {decoder}: tool output diverged from legacy closure"
        );
        // Same usage accounting, too.
        assert_eq!(
            legacy.meter().snapshot().billable_tokens,
            tooled.meter().snapshot().billable_tokens,
            "decoder {decoder}"
        );
    }
}

#[test]
fn calculator_tool_matches_legacy_closure_under_distribute() {
    let bpe = Arc::new(Bpe::char_level(""));
    let source = "import calculator\nargmax\n    \"Q: add <<[EXPR]\"\n    \
                  result = calculator.run(EXPR)\n    \" {result} >> so[ANS]\"\nfrom \"m\"\n\
                  where stops_at(EXPR, \"=\")\ndistribute ANS in [\" 7\", \" 8\"]\n";

    let mut legacy = Runtime::new(calc_model(&bpe), Arc::clone(&bpe));
    register_legacy_calculator(&mut legacy);
    let legacy_result = legacy.run(source).expect("legacy run");

    let mut tooled = Runtime::new(calc_model(&bpe), Arc::clone(&bpe));
    tooled.register_tool(Arc::new(CalculatorTool));
    let tooled_result = tooled.run(source).expect("tooled run");

    assert_eq!(fingerprint(&legacy_result), fingerprint(&tooled_result));
    let legacy_dist = legacy_result.distribution.expect("legacy distribution");
    let tooled_dist = tooled_result.distribution.expect("tooled distribution");
    assert_eq!(legacy_dist.len(), tooled_dist.len());
    for ((lv, lp), (tv, tp)) in legacy_dist.iter().zip(&tooled_dist) {
        assert_eq!(lv, tv);
        assert_eq!(lp.to_bits(), tp.to_bits());
    }
}

#[test]
fn wiki_tool_matches_legacy_closure_on_react() {
    let bpe = corpus::standard_bpe();
    let wiki = MiniWiki::standard();
    let inst = hotpot::generate(1, 5, &GPT_J_PROFILE).remove(0);
    let episode = Episode::plain(format!("{}\n", inst.question), inst.script.clone());

    for decoder in ["argmax", "beam(n=2)", "sample(n=2, temperature=1.1)"] {
        let source = lmql_bench::queries::REACT.replacen("argmax", decoder, 1);
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [episode.clone()]));

        let mut legacy = Runtime::new(lm.clone(), Arc::clone(&bpe));
        legacy.options_mut().seed = 11;
        let w = wiki.clone();
        #[allow(deprecated)]
        legacy.register_external("wikipedia_utils", "search", move |args| {
            Ok(Value::Str(w.search(args[0].as_str().ok_or("bad arg")?)))
        });
        legacy.bind("FEWSHOT", Value::Str(hotpot::FEW_SHOT.into()));
        legacy.bind("QUESTION", Value::Str(inst.question.clone()));
        let legacy_result = legacy.run(&source).expect("legacy run");

        let mut tooled = Runtime::new(lm, Arc::clone(&bpe));
        tooled.options_mut().seed = 11;
        tooled.register_tool(Arc::new(WikiTool::new(wiki.clone())));
        tooled.bind("FEWSHOT", Value::Str(hotpot::FEW_SHOT.into()));
        tooled.bind("QUESTION", Value::Str(inst.question.clone()));
        let tooled_result = tooled.run(&source).expect("tooled run");

        assert_eq!(
            fingerprint(&legacy_result),
            fingerprint(&tooled_result),
            "decoder {decoder}: wiki tool diverged from legacy closure"
        );
    }
}

#[test]
fn request_level_tools_apply_to_one_query_only() {
    let bpe = Arc::new(Bpe::char_level(""));
    let runtime = Runtime::new(calc_model(&bpe), Arc::clone(&bpe));
    assert!(runtime.tools().is_empty());

    let request = QueryRequest::new(calc_query("argmax")).tool(Arc::new(CalculatorTool));
    let result = runtime.execute(&request).expect("request with tools");
    assert!(
        result.best().trace.contains(" 7 >>"),
        "{}",
        result.best().trace
    );
    // The request's registry metered the call; the runtime stays bare.
    assert_eq!(
        request.tool_registry().usage(),
        vec![("calculator".to_owned(), 1)]
    );
    assert!(runtime.tools().is_empty());

    // Without the request-level tool the same query fails to resolve.
    let bare = QueryRequest::new(calc_query("argmax"));
    assert!(runtime.execute(&bare).is_err());
}

#[test]
fn engine_config_tools_reach_every_worker() {
    let bpe = Arc::new(Bpe::char_level(""));
    let tools = ToolRegistry::new().with(Arc::new(CalculatorTool));
    let engine = Engine::new(
        calc_model(&bpe),
        Arc::clone(&bpe),
        EngineConfig {
            threads: 2,
            tools: tools.clone(),
            ..EngineConfig::default()
        },
    );
    let source = calc_query("argmax");
    let sources = vec![source.as_str(); 4];
    for result in engine.run_queries(&sources) {
        let result = result.expect("engine query");
        assert!(result.best().trace.contains(" 7 >>"));
    }
    // Shared counters roll usage up across the pool.
    assert_eq!(tools.usage(), vec![("calculator".to_owned(), 4)]);
    assert_eq!(engine.tools().usage(), tools.usage());
}
