//! Integration test for the paper's Fig. 9: the step-by-step execution
//! semantics of the Fig. 1b query — interaction trace construction, hole
//! reassignment and scope updates, observed through the public API.

use lmql::{compile_source, Externals, Step, Value, VmState};

const FIG_1B_BODY: &str = r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "- [THING]\n"
        things.append(THING)
    "The most important of these is [ITEM]."
from "EleutherAI/gpt-j-6B"
"#;

#[test]
fn fig9_trace_states() {
    let program = compile_source(FIG_1B_BODY).unwrap();
    let externals = Externals::new();
    let mut vm = VmState::new([]);

    // Lines 2–3: literals appended to u.
    let step = vm.run(&program, &externals).unwrap();
    assert_eq!(
        vm.trace(),
        "A list of things not to forget when travelling:\n- "
    );
    let Step::NeedHole(req) = step else {
        panic!("expected a hole request");
    };
    assert_eq!(req.var, "THING");

    // Line 4, i = 0: decode(f, u) → "sun screen".
    vm.provide_hole("sun screen");
    let step = vm.run(&program, &externals).unwrap();
    assert_eq!(
        vm.trace(),
        "A list of things not to forget when travelling:\n- sun screen\n- "
    );
    assert_eq!(vm.scope()["THING"], Value::Str("sun screen".into()));
    // The VM is already suspended inside iteration i = 1 (Fig. 9's
    // "4, i = 0" state existed between the append and the loop head).
    assert_eq!(vm.scope()["i"], Value::Int(1));
    assert_eq!(vm.scope()["things"], Value::List(vec!["sun screen".into()]));
    assert!(matches!(step, Step::NeedHole(r) if r.var == "THING"));

    // Line 4, i = 1: THING is *reassigned* (Fig. 9's second block).
    vm.provide_hole("beach towel");
    let step = vm.run(&program, &externals).unwrap();
    assert_eq!(vm.scope()["THING"], Value::Str("beach towel".into()));
    assert_eq!(vm.scope()["i"], Value::Int(1));
    assert_eq!(
        vm.scope()["things"],
        Value::List(vec!["sun screen".into(), "beach towel".into()])
    );
    assert!(matches!(step, Step::NeedHole(r) if r.var == "ITEM"));
    assert!(vm
        .trace()
        .ends_with("- beach towel\nThe most important of these is "));

    // Final hole, then completion.
    vm.provide_hole("sun screen");
    assert_eq!(vm.run(&program, &externals).unwrap(), Step::Done);
    assert_eq!(
        vm.trace(),
        "A list of things not to forget when travelling:\n- sun screen\n- beach towel\n\
         The most important of these is sun screen."
    );

    // Fig. 6a: the full interaction trace with hole records.
    let records = vm.hole_records();
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].var, "THING");
    assert_eq!(
        vm.trace().slice_string(records[2].start..records[2].end),
        "sun screen"
    );
}

#[test]
fn hole_values_substituted_and_recalled() {
    let program = compile_source("argmax\n    \"[A] and {A}!\"\nfrom \"m\"\n").unwrap();
    let mut vm = VmState::new([]);
    let externals = Externals::new();
    vm.run(&program, &externals).unwrap();
    vm.provide_hole("echo");
    assert_eq!(vm.run(&program, &externals).unwrap(), Step::Done);
    assert_eq!(vm.trace(), "echo and echo!");
}
