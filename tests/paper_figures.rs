//! The paper's figure queries parse and compile through the public API
//! (Fig. 1a, Fig. 1b, Fig. 4d, Fig. 10, Fig. 11, Fig. 13 — transcribed
//! with this reproduction's minor syntax notes, e.g. `#` comments).

use lmql::compile_source;
use lmql_syntax::parse_query;

const FIG_1A: &str = r#"
beam(n=3)
    "A list of good dad jokes. A indicates the punchline\n"
    "Q: How does a penguin build its house?\n"
    "A: Igloos it together. END\n"
    "Q: Which knight invented King Arthur's Round Table?\n"
    "A: Sir Cumference. END\n"
    "Q: [JOKE]\n"
    "A: [PUNCHLINE]\n"
from "gpt2-medium"
where
    stops_at(JOKE, "?") and stops_at(PUNCHLINE, "END")
    and len(words(JOKE)) < 20
    and len(characters(PUNCHLINE)) > 10
"#;

const FIG_1B: &str = r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "- [THING]\n"
        things.append(THING)
    "The most important of these is [ITEM]."
from "EleutherAI/gpt-j-6B"
where
    THING in ["passport", "phone", "keys"] # a longer list
    and len(words(THING)) <= 2
"#;

const FIG_4D: &str = r#"
argmax
    "Q: What is the circumference of the earth?\n"
    "The best person to answer this question would be [EXPERT]\n\n"
    "For instance, {EXPERT} would answer [ANSWER]"
from "gpt2-medium"
where len(words(EXPERT)) <= 3 and stops_at(EXPERT, ".")
"#;

const FIG_10: &str = r#"
argmax
    "Pick the odd word out: skirt, dress, pen, jacket.\n"
    "skirt is clothing, dress is clothing, pen is an object, jacket is clothing.\n"
    "So the odd one is pen.\n\n"
    "Pick the odd word out: {OPTIONS}\n"
    "[REASONING]"
    "[RESULT]"
from "EleutherAI/gpt-j-6B"
where
    not "\n" in REASONING and not "Pick" in REASONING and
    stops_at(REASONING, "Pick the odd word") and stops_at(REASONING, "\n") and
    stops_at(REASONING, "So the odd one") and stops_at(REASONING, ".") and
    len(words(REASONING)) < 40
distribute
    RESULT over OPTIONS.split(", ")
"#;

const FIG_11: &str = r#"
import wikipedia_utils
sample(no_repeat_ngram_size=3)
    "What is the elevation range for the area that the eastern sector extends into?\n"
    "Tho 1: I need to search Colorado orogeny.\n"
    "Act 2: Search 'Colorado orogeny'\n"
    "Where is Apple Computers headquartered?\n"
    for i in range(1024):
        "[MODE] {i}:"
        if MODE == "Tho":
            "[THOUGHT] "
        elif MODE == "Act":
            " [ACTION] '[SUBJECT]\n"
            if ACTION == "Search":
                result = wikipedia_utils.search(SUBJECT[:-1])
                "Obs {i}: {result}\n"
            else:
                break
from "gpt2-xl"
where
    MODE in ["Tho", "Act"] and stops_at(THOUGHT, "\n") and
    ACTION in ["Search", "Finish"] and len(words(THOUGHT)) > 2 and
    stops_at(SUBJECT, "'") and not "Tho" in THOUGHT
"#;

const FIG_13: &str = r#"
import calculator
argmax(distribution_batch_size=1, max_length=2048)
    "{few_shot_examples}"
    "Q: {QUESTION}\n"
    "A: Let's think step by step.\n"
    for i in range(1024):
        "[REASON_OR_CALC]"
        if REASON_OR_CALC.endswith("<<"):
            " [EXPR] "
            result = calculator.run(EXPR)
            " {result} >> "
        elif REASON_OR_CALC.endswith("So the answer"):
            " is [RESULT]"
            break
from "EleutherAI/gpt-j-6B"
where
    int(RESULT) and
    stops_at(REASON_OR_CALC, "<<") and
    stops_at(EXPR, "=") and
    stops_at(REASON_OR_CALC, "So the answer")
"#;

#[test]
fn all_paper_figures_parse() {
    for (name, src) in [
        ("fig1a", FIG_1A),
        ("fig1b", FIG_1B),
        ("fig4d", FIG_4D),
        ("fig10", FIG_10),
        ("fig11", FIG_11),
        ("fig13", FIG_13),
    ] {
        parse_query(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
    }
}

#[test]
fn all_paper_figures_compile() {
    for (name, src) in [
        ("fig1a", FIG_1A),
        ("fig1b", FIG_1B),
        ("fig4d", FIG_4D),
        ("fig10", FIG_10),
        ("fig11", FIG_11),
        ("fig13", FIG_13),
    ] {
        compile_source(src).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    }
}

#[test]
fn fig10_structure() {
    let q = parse_query(FIG_10).unwrap();
    assert_eq!(q.decoder.name, "argmax");
    let d = q.distribute.expect("fig10 has a distribute clause");
    assert_eq!(d.var, "RESULT");
}

#[test]
fn fig11_decoder_params() {
    let q = parse_query(FIG_11).unwrap();
    assert_eq!(q.decoder.name, "sample");
    assert_eq!(q.decoder.int_param("no_repeat_ngram_size", 0), 3);
    assert_eq!(q.imports.len(), 1);
}

#[test]
fn fig13_decoder_params() {
    let q = parse_query(FIG_13).unwrap();
    assert_eq!(q.decoder.int_param("max_length", 0), 2048);
}
