//! Integration tests for the `lmql-run` command-line tool.

use std::process::Command;

fn lmql_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lmql-run"))
}

fn write_query(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lmql-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

#[test]
fn runs_a_query_file_against_scripted_model() {
    let q = write_query(
        "basic.lmql",
        "argmax\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \".\")\n",
    );
    let out = lmql_run()
        .arg(&q)
        .args(["--model", "script:A:= hello there. more"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("A: hello there."), "{stdout}");
    assert!(stdout.contains("ANSWER = \" hello there.\""), "{stdout}");
    assert!(stdout.contains("model queries"), "{stdout}");
}

#[test]
fn bind_passes_query_arguments() {
    let q = write_query(
        "bind.lmql",
        "argmax\n    \"{GREETING} world:[X]\"\nfrom \"m\"\nwhere stops_at(X, \"!\")\n",
    );
    let out = lmql_run()
        .arg(&q)
        .args(["--model", "script:world:= hi!", "--bind", "GREETING=hello"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("hello world: hi!"), "{stdout}");
}

#[test]
fn trace_flag_prints_decoder_graph() {
    let q = write_query(
        "trace.lmql",
        "argmax\n    \"P:[X]\"\nfrom \"m\"\nwhere X in [\" yes\", \" no\"]\n",
    );
    let out = lmql_run()
        .arg(&q)
        .args(["--model", "script:P:= yes", "--trace"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("decoder trace"), "{stdout}");
    assert!(stdout.contains("[X] stopped by"), "{stdout}");
}

#[test]
fn syntax_errors_fail_with_location() {
    let q = write_query("broken.lmql", "argmax\n    \"unclosed [X\"\nfrom \"m\"\n");
    let out = lmql_run()
        .arg(&q)
        .args(["--model", "script:x=y"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unclosed"), "{stderr}");
}

#[test]
fn bad_flags_are_reported() {
    let out = lmql_run().args(["--definitely-bogus"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument"), "{stderr}");

    let out = lmql_run().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("missing query file"));
}

#[test]
fn ngram_model_runs_builtin_corpus_queries() {
    let q = write_query(
        "ngram.lmql",
        "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"ngram\"\nwhere stops_at(THING, \"\\n\")\n",
    );
    let out = lmql_run()
        .arg(&q)
        .args(["--model", "ngram"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("THING = "), "{stdout}");
}

#[test]
fn chaos_flag_injects_absorbed_faults() {
    let q = write_query(
        "chaos.lmql",
        "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"ngram\"\nwhere stops_at(THING, \"\\n\")\n",
    );
    let clean = lmql_run().arg(&q).output().unwrap();
    assert!(clean.status.success(), "{clean:?}");
    let chaotic = lmql_run()
        .arg(&q)
        .args(["--chaos", "6", "--retries", "8", "--timeout-ms", "5000"])
        .output()
        .unwrap();
    assert!(chaotic.status.success(), "{chaotic:?}");
    let clean = String::from_utf8(clean.stdout).unwrap();
    let chaotic = String::from_utf8(chaotic.stdout).unwrap();
    let line = chaotic
        .lines()
        .find(|l| l.contains("--- chaos:"))
        .expect("chaos summary line");
    assert!(!line.contains("0 faults injected"), "{line}");
    // Everything except the chaos summary is byte-identical.
    let without_summary: String = chaotic
        .lines()
        .filter(|l| !l.contains("--- chaos:"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(without_summary, clean);
}

#[test]
fn format_flag_pretty_prints() {
    let q = write_query(
        "fmt.lmql",
        "argmax( n = 2 )\n    \"[X]\"\nfrom \"m\"\nwhere len(X)<5 and stops_at(X,\".\")\n",
    );
    let out = lmql_run().arg(&q).arg("--format").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout,
        "argmax(n=2)\n    \"[X]\"\nfrom \"m\"\nwhere len(X) < 5 and stops_at(X, \".\")\n"
    );
}
