//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then a fixed
//! measurement budget, reporting mean time per iteration to stdout. No
//! statistics, plots, or baselines; the numbers are for relative
//! comparison within one run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver: owns the measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    budget: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: env_ms("LMQL_BENCH_WARMUP_MS", 50),
            budget: env_ms("LMQL_BENCH_BUDGET_MS", 300),
            sample_size: 100,
        }
    }
}

/// Reads a millisecond duration from the environment, so CI smoke runs
/// (`scripts/verify.sh --bench-smoke`) can shrink the per-bench budget
/// without touching each bench's source.
fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

impl Criterion {
    /// Sets the nominal sample count (scales the measurement budget).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.budget);
        f(&mut b, input);
        b.report(&full);
        self
    }

    /// Runs one unparameterised benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.budget);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Sets the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    /// (total elapsed, iterations) filled in by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warm_up: Duration, budget: Duration) -> Self {
        Bencher {
            warm_up,
            budget,
            measured: None,
        }
    }

    /// Times `f` until the measurement budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also discovers a batch size so the clock is read at
        // most a few thousand times regardless of per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch =
            (Duration::from_micros(200).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.measured = Some((start.elapsed(), iters.max(1)));
    }

    fn report(&self, name: &str) {
        match self.measured {
            Some((elapsed, iters)) => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench: {name:<50} {} /iter ({iters} iters)", fmt_ns(per));
            }
            None => println!("bench: {name:<50} (no measurement)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group: a function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }
}
