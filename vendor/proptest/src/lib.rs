//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest its property tests actually use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple and `&str`-regex
//! strategies, [`collection`] / [`char`] / [`sample`] helpers, and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its assertion message and
//!   case number; cases are deterministic per test, so a failure
//!   reproduces exactly on re-run.
//! - **Deterministic generation.** Each test derives its RNG stream from
//!   a fixed base seed and the case index — no environment entropy.
//! - **Regex strategies** support the character-class subset used here
//!   (for example `"[a-c]{1,4}"`), not full regex syntax.

pub mod test_runner {
    //! Case execution: configuration, errors, and the driver loop.

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (not counted as a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (the case is skipped, not failed).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Test-runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic generator handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream derived from `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot draw below 0");
            // Lemire-style widening multiply: unbiased enough for test
            // generation and never loops.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives `config.cases` executions of `case`, panicking on the first
    /// failure. Rejected cases are skipped (with a retry budget).
    pub fn run_cases(
        config: &Config,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rejected = 0u32;
        for i in 0..config.cases {
            // Distinct, deterministic stream per (test, case).
            let mut seed = 0x5eed_0000_0000_0000u64 ^ u64::from(i);
            for b in test_name.bytes() {
                seed = seed.wrapping_mul(1_000_003).wrapping_add(u64::from(b));
            }
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.cases * 4,
                        "proptest `{test_name}`: too many rejected cases"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed at case {i}/{}: {msg}",
                        config.cases
                    )
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (regenerating otherwise).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Builds recursive values: `recurse` receives a strategy for
        /// smaller instances and returns one for larger ones; `depth`
        /// bounds the nesting. (`desired_size` and `expected_branch_size`
        /// are accepted for proptest signature compatibility.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A reference-counted, type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("BoxedStrategy").finish_non_exhaustive()
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}`: no accepted value in 1000 draws",
                self.whence
            )
        }
    }

    /// Uniform choice among several strategies of one value type
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `variants`.
        ///
        /// # Panics
        ///
        /// Panics if `variants` is empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !variants.is_empty(),
                "prop_oneof needs at least one variant"
            );
            Union { variants }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    // span + 1 may not overflow u64 for the types below.
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// `&str` strategies: the string is a regex over the supported subset
    /// (literals, `[..]` classes with ranges, `{m,n}` / `{m}` / `*` /
    /// `+` / `?` quantifiers), e.g. `"[a-c]{1,4}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    /// Owned variant of the `&str` regex strategy.
    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Generation from the supported regex subset.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Inclusive ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset — better a loud test
    /// error than silently generating the wrong distribution.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let span = u64::from(piece.max - piece.min) + 1;
            let count = piece.min + rng.below(span) as u32;
            for _ in 0..count {
                out.push(match &piece.atom {
                    Atom::Literal(c) => *c,
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        let mut chosen = ranges[0].0;
                        for &(lo, hi) in ranges {
                            let size = u64::from(hi as u32 - lo as u32) + 1;
                            if pick < size {
                                chosen = char::from_u32(lo as u32 + pick as u32)
                                    .expect("class range covers invalid scalar");
                                break;
                            }
                            pick -= size;
                        }
                        chosen
                    }
                });
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    assert!(
                        !"(){}*+?|.^$".contains(c),
                        "unsupported regex syntax {c:?} in pattern {pattern:?}"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, "")) => {
                                let m: u32 = m.trim().parse().expect("bad repeat bound");
                                (m, m + 8)
                            }
                            Some((m, n)) => (
                                m.trim().parse().expect("bad repeat bound"),
                                n.trim().parse().expect("bad repeat bound"),
                            ),
                            None => {
                                let m: u32 = body.trim().parse().expect("bad repeat bound");
                                (m, m)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repeat bounds in pattern {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`, sized within `size` where
    /// the element space allows (duplicates are redrawn a bounded number
    /// of times).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 10 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Characters in `[lo, hi]` (inclusive).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    /// See [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let span = u64::from(self.hi as u32 - self.lo as u32) + 1;
            loop {
                let v = self.lo as u32 + rng.below(span) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A uniformly random element of `items` (cloned out).
    pub fn select<T: Clone + 'static>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from empty slice");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone, Copy)]
    pub struct Select<T: 'static> {
        items: &'static [T],
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The imports property tests start from.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a [`Union`](strategy::Union) choosing uniformly among the given
/// strategies (all must generate the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn` runs its body once per generated
/// case, with the named inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-c]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
        }
        for _ in 0..50 {
            let s = "[a-c]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
        }
    }

    #[test]
    fn union_hits_all_variants() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|n| n.to_string());
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline works end to end.
        #[test]
        fn macro_smoke(x in 0u32..100, (a, b) in (0i64..50, 0i64..50)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            if a == b {
                // Early returns are part of the supported surface.
                return Ok(());
            }
            prop_assert_ne!(a, b);
        }
    }
}
