//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic across platforms and runs, which is all the
//! reproduction relies on (tests assert seed-determinism, never specific
//! stream values).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a generator can produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw from `[0, n)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    assert!(n > 0 && n <= (1 << 64), "span must fit in 64 bits");
    let n = n as u64 as u128;
    if n.is_power_of_two() {
        return (rng.next_u64() as u128) & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n as u64 + 1) % n as u64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % n as u64) as u128;
        }
    }
}

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Unlike the real `rand`, the output stream is stable across versions
    /// — the reproduction's datasets are seeded and must not drift.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice operations driven by a generator.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: i32 = rng.gen_range(-9..=9);
            assert!((-9..=9).contains(&w));
        }
        // All residues reachable (no degenerate mapping).
        let mut seen = [false; 12];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..12)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
