#!/usr/bin/env bash
# Full verification: formatting, lints, release build, tests.
#
# Usage: scripts/verify.sh [--slow | --quick | --chaos | --stream | --automata | --decode | --parallel | --router | --tools | --bench-smoke | --bench-publish]
#   --slow    also runs the proptest suites (slow-tests feature)
#   --quick   build + tests only (skips rustfmt/clippy; useful where the
#             toolchain components are not installed)
#   --chaos   fault-injection suites only (deterministic seeds, offline):
#             chaos determinism, engine chaos, server fault tolerance,
#             scheduler fault handling
#   --stream  streaming suites only (DESIGN.md §11): byte-identical
#             reassembly per decoder, engine cancellation, the server's
#             STREAM frame, plus an `lmql-run --stream` CLI smoke run
#   --automata  constraint-automata suites only (DESIGN.md §12): the
#             automata crate's unit tests, differential mask equality
#             against the uncompiled engines, and fast-forward decoder
#             accounting
#   --decode  zero-copy data-plane suites only (DESIGN.md §13): the arena
#             crate's unit tests, the counting-allocator budget pins
#             (fork cost, decode allocs/step), and rope-trace round-trip
#             identity across all four decoders
#   --parallel  program-level parallelism suites only (DESIGN.md §14):
#             the hole-DAG differential byte-identity suite across all
#             four decoders, subquery tree admission/cancellation/usage
#             tests (with the >=2x dispatch-round pin), the streaming
#             drop-cancels-tree regression, plus an
#             `lmql-run --no-parallel-holes` bisection smoke run
#   --router  scale-out router suites only (DESIGN.md §15): router unit
#             tests (affinity hashing, admission, health-aware routing),
#             the replica fail-over + multi-replica soak acceptance
#             tests, the pooled-server wire suite, the scheduler
#             starvation regression, the zero-alloc prefix-key budget
#             pin, plus an `lmql-run --replicas` bisection smoke run
#   --tools   first-class tool API + retrieval suites (DESIGN.md §16):
#             the core tool-registry unit tests, the BM25/corpus/session
#             crate, the legacy-closure differential byte-identity suite
#             across all four decoders, dynamic-set (`ANSWER in spans`)
#             soundness against the reference masker, the three
#             retrieval-workload scenarios, plus an `lmql-run --corpus`
#             smoke run
#   --bench-smoke  runs the masking/followmap benches with a tiny
#             measurement budget plus the mask, decode, router and
#             retrieval benchmark binaries, writing smoke-level JSON to
#             target/bench/ (never the committed BENCH_*.json); asserts
#             the allocs/step budgets, the router's >=2x affinity
#             hit-rate advantage, and retrieval-QA's billable-token
#             savings over the chunk-wise baseline, so it is safe to
#             gate merges on
#   --bench-publish  full-budget benchmark run that rewrites the
#             committed BENCH_mask.json, BENCH_decode.json,
#             BENCH_router.json and BENCH_retrieval.json in place; run
#             manually (or nightly) on quiet hardware
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
case "${1:-}" in
    "") ;;
    --slow) MODE=slow ;;
    --quick) MODE=quick ;;
    --chaos) MODE=chaos ;;
    --stream) MODE=stream ;;
    --automata) MODE=automata ;;
    --decode) MODE=decode ;;
    --parallel) MODE=parallel ;;
    --router) MODE=router ;;
    --tools) MODE=tools ;;
    --bench-smoke) MODE=bench-smoke ;;
    --bench-publish) MODE=bench-publish ;;
    *)
        echo "usage: scripts/verify.sh [--slow | --quick | --chaos | --stream | --automata | --decode | --parallel | --router | --tools | --bench-smoke | --bench-publish]" >&2
        exit 2
        ;;
esac

if [[ "$MODE" == bench-smoke ]]; then
    # Exercise the benchmark paths end to end on a small budget: catches
    # bench-target rot and perf-path panics, and asserts the hard
    # allocation budgets. Timing numbers at this budget are noise, so
    # the JSON goes to target/bench/, never over the committed files —
    # publishable numbers come from --bench-publish.
    export LMQL_BENCH_WARMUP_MS="${LMQL_BENCH_WARMUP_MS:-5}"
    export LMQL_BENCH_BUDGET_MS="${LMQL_BENCH_BUDGET_MS:-30}"
    # The compiled-automata advancing workload is designed to be
    # allocation-free after state discovery (one TokenSet clone per
    # step); a regression here silently reintroduces the per-step vocab
    # scan, so it is a hard budget, not a timing measurement.
    export LMQL_BENCH_ALLOC_BUDGET="${LMQL_BENCH_ALLOC_BUDGET:-25}"
    # The decode loop is tighter still: pooled mask scratch + in-place
    # softmax leave only the model's logits allocation per step.
    DECODE_ALLOC_BUDGET="${LMQL_BENCH_DECODE_ALLOC_BUDGET:-8}"
    mkdir -p target/bench
    echo "==> cargo bench: masking + followmap (budget ${LMQL_BENCH_BUDGET_MS}ms)"
    cargo bench -q -p lmql-bench --bench masking
    cargo bench -q -p lmql-bench --bench followmap
    echo "==> bench_mask (target/bench/BENCH_mask.json, alloc budget ${LMQL_BENCH_ALLOC_BUDGET}/step)"
    cargo run -q --release -p lmql-bench --bin bench_mask -- --out target/bench/BENCH_mask.json
    echo "==> bench_decode (target/bench/BENCH_decode.json, alloc budget ${DECODE_ALLOC_BUDGET}/step)"
    LMQL_BENCH_ALLOC_BUDGET="$DECODE_ALLOC_BUDGET" \
        cargo run -q --release -p lmql-bench --bin bench_decode -- --out target/bench/BENCH_decode.json
    # The affinity advantage is a property of the routing policy, not the
    # hardware, so even the smoke budget gates on the >=2x acceptance
    # floor from DESIGN.md §15.
    echo "==> bench_router (target/bench/BENCH_router.json, min advantage ${LMQL_BENCH_ROUTER_MIN_ADVANTAGE:-2.0}x)"
    LMQL_BENCH_ROUTER_REPEATS="${LMQL_BENCH_ROUTER_REPEATS:-4}" \
        LMQL_BENCH_ROUTER_MIN_ADVANTAGE="${LMQL_BENCH_ROUTER_MIN_ADVANTAGE:-2.0}" \
        cargo run -q --release -p lmql-bench --bin bench_router -- --out target/bench/BENCH_router.json
    # Retrieval-augmented QA must beat the prompt-everything baseline on
    # billable tokens (DESIGN.md §16) — a policy property, not a timing
    # number, so it gates even at smoke budget.
    echo "==> bench_retrieval (target/bench/BENCH_retrieval.json, min savings ${LMQL_BENCH_RETRIEVAL_MIN_SAVINGS:-2.0}x)"
    LMQL_BENCH_RETRIEVAL_N="${LMQL_BENCH_RETRIEVAL_N:-4}" \
        LMQL_BENCH_RETRIEVAL_MIN_SAVINGS="${LMQL_BENCH_RETRIEVAL_MIN_SAVINGS:-2.0}" \
        cargo run -q --release -p lmql-bench --bin bench_retrieval -- --out target/bench/BENCH_retrieval.json
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == bench-publish ]]; then
    # Full-budget run that replaces the committed benchmark numbers.
    export LMQL_BENCH_ALLOC_BUDGET="${LMQL_BENCH_ALLOC_BUDGET:-25}"
    DECODE_ALLOC_BUDGET="${LMQL_BENCH_DECODE_ALLOC_BUDGET:-8}"
    echo "==> bench_mask (publishing BENCH_mask.json)"
    cargo run -q --release -p lmql-bench --bin bench_mask -- --out BENCH_mask.json
    echo "==> bench_decode (publishing BENCH_decode.json)"
    LMQL_BENCH_ALLOC_BUDGET="$DECODE_ALLOC_BUDGET" \
        cargo run -q --release -p lmql-bench --bin bench_decode -- --out BENCH_decode.json
    echo "==> bench_router (publishing BENCH_router.json)"
    LMQL_BENCH_ROUTER_MIN_ADVANTAGE="${LMQL_BENCH_ROUTER_MIN_ADVANTAGE:-2.0}" \
        cargo run -q --release -p lmql-bench --bin bench_router -- --out BENCH_router.json
    echo "==> bench_retrieval (publishing BENCH_retrieval.json)"
    LMQL_BENCH_RETRIEVAL_MIN_SAVINGS="${LMQL_BENCH_RETRIEVAL_MIN_SAVINGS:-2.0}" \
        cargo run -q --release -p lmql-bench --bin bench_retrieval -- --out BENCH_retrieval.json
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == decode ]]; then
    echo "==> zero-copy data-plane suites (rope trace + allocation budgets)"
    cargo test -q -p lmql-arena
    cargo test -q -p lmql --test alloc_budget
    cargo test -q -p lmql --test rope_trace
    cargo test -q -p lmql-repro --test trace_semantics
    cargo test -q -p lmql-repro --test streaming
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == parallel ]]; then
    echo "==> program-level parallelism suites (hole DAGs + subquery trees)"
    cargo test -q -p lmql --test parallel_equivalence
    cargo test -q -p lmql-engine --test subquery
    cargo test -q -p lmql-engine --test streaming
    cargo test -q -p lmql --lib parallel
    echo "==> lmql-run --no-parallel-holes bisection smoke"
    QUERY_FILE="$(mktemp /tmp/lmql-parallel-smoke.XXXXXX.lmql)"
    trap 'rm -f "$QUERY_FILE"' EXIT
    printf '%s\n' \
        'argmax' \
        '    "Q:[A]\nR:[B]"' \
        'from "ngram"' \
        'where stops_at(A, "\n") and stops_at(B, "\n")' > "$QUERY_FILE"
    PAR_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --max-tokens 12)"
    SEQ_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --max-tokens 12 --no-parallel-holes)"
    if [[ "$PAR_OUT" != "$SEQ_OUT" ]]; then
        echo "error: lmql-run output differs with --no-parallel-holes" >&2
        exit 1
    fi
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == router ]]; then
    echo "==> scale-out router suites (prefix affinity + fail-over + admission)"
    cargo test -q -p lmql-engine --lib router
    cargo test -q -p lmql-engine --test router
    cargo test -q -p lmql-engine --lib sched
    cargo test -q -p lmql-server --test pool
    cargo test -q -p lmql --test alloc_budget router_prefix
    echo "==> lmql-run --replicas bisection smoke"
    QUERY_FILE="$(mktemp /tmp/lmql-router-smoke.XXXXXX.lmql)"
    trap 'rm -f "$QUERY_FILE"' EXIT
    printf '%s\n' \
        'argmax' \
        '    "A list of things not to forget when travelling:\n-[THING]"' \
        'from "ngram"' \
        'where stops_at(THING, "\n")' > "$QUERY_FILE"
    # The result blocks must be byte-identical across the single-runtime
    # path, the pooled path, and the pooled round-robin path; only the
    # usage footer differs, so strip it before comparing.
    ONE_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --max-tokens 16 | grep -v '^--- usage:')"
    POOL_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --max-tokens 16 --replicas 3 | grep -v '^--- usage:')"
    RR_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --max-tokens 16 --replicas 3 --no-affinity | grep -v '^--- usage:')"
    if [[ "$ONE_OUT" != "$POOL_OUT" || "$ONE_OUT" != "$RR_OUT" ]]; then
        echo "error: lmql-run output differs with --replicas/--no-affinity" >&2
        exit 1
    fi
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == tools ]]; then
    echo "==> first-class tool + retrieval suites (DESIGN.md §16)"
    cargo test -q -p lmql --lib tool
    cargo test -q -p lmql-retrieval
    cargo test -q -p lmql-datasets --lib tools
    cargo test -q -p lmql-repro --test tool_api
    cargo test -q -p lmql-repro --test retrieved_spans
    cargo test -q -p lmql-bench --lib retrieval_exp
    echo "==> lmql-run --corpus smoke"
    QUERY_FILE="$(mktemp /tmp/lmql-tools-smoke.XXXXXX.lmql)"
    CORPUS_FILE="$(mktemp /tmp/lmql-tools-corpus.XXXXXX.txt)"
    trap 'rm -f "$QUERY_FILE" "$CORPUS_FILE"' EXIT
    printf '%s\n' \
        'The Atlas Project. The access code for the Atlas vault is 4471.' \
        '' \
        'The Borealis Project. The access code for the Borealis vault is 9032.' > "$CORPUS_FILE"
    printf '%s\n' \
        'import retrieval' \
        'argmax' \
        '    "Note:[X]\n"' \
        '    ev = retrieval.search("Atlas vault access code")' \
        '    "Evidence: {ev}"' \
        'from "ngram"' \
        'where stops_at(X, "\n")' > "$QUERY_FILE"
    CORPUS_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --corpus "$CORPUS_FILE" --max-tokens 12)"
    echo "$CORPUS_OUT" | grep -q "4471" || {
        echo "error: lmql-run --corpus did not splice retrieved evidence" >&2
        exit 1
    }
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == automata ]]; then
    echo "==> constraint-automata suites (compiled masks + fast-forwarding)"
    cargo test -q -p lmql-automata
    cargo test -q -p lmql --test automata_equivalence
    cargo test -q -p lmql --test fast_forward_accounting
    cargo test -q -p lmql --test mask_equivalence
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == chaos ]]; then
    echo "==> fault-injection suites (deterministic seeds)"
    cargo test -q -p lmql-repro --test chaos_determinism
    cargo test -q -p lmql-engine --test chaos
    cargo test -q -p lmql-server --test fault_tolerance
    cargo test -q -p lmql-engine --lib sched
    cargo test -q -p lmql-lm --lib retry
    cargo test -q -p lmql-lm --lib chaos
    echo "==> OK"
    exit 0
fi

if [[ "$MODE" == stream ]]; then
    echo "==> streaming suites (byte-identical reassembly + cancellation)"
    cargo test -q -p lmql-repro --test streaming
    cargo test -q -p lmql-engine --test streaming
    cargo test -q -p lmql-server --test streaming
    cargo test -q -p lmql --lib stream
    echo "==> lmql-run --stream smoke"
    QUERY_FILE="$(mktemp /tmp/lmql-stream-smoke.XXXXXX.lmql)"
    trap 'rm -f "$QUERY_FILE"' EXIT
    printf '%s\n' \
        'argmax' \
        '    "A list of things not to forget when travelling:\n-[THING]"' \
        'from "ngram"' \
        'where stops_at(THING, "\n")' > "$QUERY_FILE"
    STREAM_OUT="$(cargo run -q --bin lmql-run -- "$QUERY_FILE" --stream --max-tokens 16)"
    echo "$STREAM_OUT" | grep -q -- "--- result ---" || {
        echo "error: lmql-run --stream produced no result summary" >&2
        exit 1
    }
    echo "==> OK"
    exit 0
fi

FEATURES=()
if [[ "$MODE" == slow ]]; then
    FEATURES=(--features slow-tests)
fi

require_component() {
    # `cargo fmt`/`cargo clippy` exist as subcommands only when the
    # rustfmt/clippy rustup components are installed; fail with an
    # actionable message instead of cargo's "no such command".
    local subcommand="$1" component="$2"
    if ! cargo "$subcommand" --version >/dev/null 2>&1; then
        echo "error: \`cargo $subcommand\` is unavailable." >&2
        echo "  Install it with: rustup component add $component" >&2
        echo "  Or run the build+test subset only: scripts/verify.sh --quick" >&2
        exit 1
    fi
}

if [[ "$MODE" != quick ]]; then
    require_component fmt rustfmt
    require_component clippy clippy

    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (workspace, all targets, -D warnings)"
    cargo clippy --workspace --all-targets "${FEATURES[@]}" -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q "${FEATURES[@]}"

echo "==> OK"
