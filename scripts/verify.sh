#!/usr/bin/env bash
# Full verification: formatting, lints, release build, tests.
# Usage: scripts/verify.sh [--slow]   (--slow also runs the proptest suites)
set -euo pipefail
cd "$(dirname "$0")/.."

FEATURES=()
if [[ "${1:-}" == "--slow" ]]; then
    FEATURES=(--features slow-tests)
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets "${FEATURES[@]}" -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q "${FEATURES[@]}"

echo "==> OK"
