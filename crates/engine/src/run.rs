//! The thread-pool query runner: many LMQL queries, one shared model.
//!
//! [`Engine::run_queries`] executes a set of queries concurrently on a
//! pool of worker threads. Every query gets its own fresh
//! [`Runtime`] (own seed, own per-run cache, own meter), but they all
//! score through one shared [`Scheduler`] — so shared prompt prefixes
//! are paid for once, identical in-flight contexts single-flight, and
//! concurrent steps coalesce into microbatches.
//!
//! Results are deterministic and bit-identical to running each query
//! alone on the bare model: the scheduler only ever returns what a
//! direct `score` call would have, and each query's decoding consumes
//! its own RNG stream. Thread scheduling can change *when* work runs,
//! never what it computes.

use crate::radix::{RadixCacheConfig, RadixStats};
use crate::sched::{BatchPolicy, BatchedLm, Scheduler, SchedulerObs};
use lmql::constraints::{AutomataCache, MaskMemo};
use lmql::{EventSink, QueryEvent, QueryResult, Runtime, StreamSink, SubqueryLimits, ToolRegistry};
use lmql_lm::{CancelToken, LanguageModel, MeteredLm, RetryPolicy, Usage, UsageMeter};
use lmql_obs::{Registry, StreamMetrics, Tracer};
use lmql_tokenizer::Bpe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Tunables for an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::run_queries`]. `0` (the default)
    /// uses the machine's available parallelism.
    pub threads: usize,
    /// Microbatch dispatch policy.
    pub policy: BatchPolicy,
    /// Prefix-cache budgets.
    pub cache: RadixCacheConfig,
    /// Retry/deadline policy for dispatch-time fault recovery when the
    /// model is fallible (a remote backend, a chaos wrapper). Free for
    /// infallible models — retries only ever run after a fault.
    pub retry: RetryPolicy,
    /// Depth/budget limits on the `subquery(...)` trees queries may
    /// spawn (applied to every worker runtime).
    pub subquery: SubqueryLimits,
    /// First-class tools installed on every worker runtime (DESIGN.md
    /// §16). Replicas seeded from one config share the registry's call
    /// counters, so tool usage rolls up across the pool.
    pub tools: ToolRegistry,
}

/// Observability hooks for an [`Engine`]: a trace recorder shared by the
/// scheduler and every worker [`Runtime`], and an optional metrics
/// registry collecting `engine.*` and `lm.*` metrics. Both default to
/// off/absent and are free in that state (configuration stays plain
/// data; these hooks ride separately through [`Engine::new_with_obs`]).
#[derive(Debug, Clone, Default)]
pub struct EngineObs {
    /// Trace recorder: per-hole decode, mask, cache and batch-dispatch
    /// spans from every query run through the engine.
    pub tracer: Tracer,
    /// Metrics registry: scheduler metrics under `engine.*`, the usage
    /// meter under `lm.*`.
    pub registry: Option<Registry>,
}

/// A point-in-time view of the engine's §6 usage counters plus the
/// prefix-cache counters.
#[derive(Debug, Clone, Copy)]
pub struct EngineStats {
    /// Model queries / dispatches / batch sizes, as recorded by the
    /// engine's meter on the shared model.
    pub usage: Usage,
    /// Prefix-cache hits, misses, evictions and occupancy.
    pub cache: RadixStats,
}

/// A concurrent inference engine: one shared model behind a
/// [`Scheduler`], a thread pool for query execution.
///
/// # Example
///
/// ```
/// use lmql_engine::{Engine, EngineConfig};
/// use lmql_lm::{Episode, ScriptedLm};
/// use lmql_tokenizer::Bpe;
/// use std::sync::Arc;
///
/// let bpe = Arc::new(Bpe::char_level(""));
/// let lm = Arc::new(ScriptedLm::new(
///     Arc::clone(&bpe),
///     [Episode::plain("Q:", " fine.")],
/// ));
/// let engine = Engine::new(lm, bpe, EngineConfig::default());
/// let query = "argmax\n    \"Q:[A]\"\nfrom \"m\"\nwhere stops_at(A, \".\")\n";
/// let results = engine.run_queries(&[query, query]);
/// for r in results {
///     assert_eq!(r.unwrap().best().var_str("A"), Some(" fine."));
/// }
/// ```
pub struct Engine {
    sched: Arc<Scheduler>,
    bpe: Arc<Bpe>,
    meter: UsageMeter,
    threads: usize,
    tracer: Tracer,
    registry: Option<Registry>,
    /// Cross-query mask memo: every worker runtime masks over the same
    /// `bpe`, so memoized masks transfer between concurrent queries with
    /// identical constraints (the engine's analogue of the radix prefix
    /// cache, for masks instead of scores).
    mask_memo: Arc<MaskMemo>,
    /// Cross-query constraint-automata cache: compiled automata and their
    /// per-state interned masks transfer between concurrent queries with
    /// identical constraints, so only the first run of a query shape pays
    /// compilation and per-state mask discovery.
    automata: Arc<AutomataCache>,
    /// Subquery tree limits applied to every worker runtime.
    subquery: SubqueryLimits,
    /// Tools installed on every worker runtime.
    tools: ToolRegistry,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine over `model` and its tokenizer.
    ///
    /// # Panics
    ///
    /// Panics if the model's vocabulary size does not match the
    /// tokenizer's.
    pub fn new(model: Arc<dyn LanguageModel>, bpe: Arc<Bpe>, config: EngineConfig) -> Self {
        Self::new_with_obs(model, bpe, config, EngineObs::default())
    }

    /// Like [`new`](Self::new), with observability hooks: the tracer is
    /// shared by the scheduler and every worker runtime, and the registry
    /// (when given) collects `engine.*` scheduler metrics and the `lm.*`
    /// usage counters.
    ///
    /// # Panics
    ///
    /// Panics if the model's vocabulary size does not match the
    /// tokenizer's.
    pub fn new_with_obs(
        model: Arc<dyn LanguageModel>,
        bpe: Arc<Bpe>,
        config: EngineConfig,
        obs: EngineObs,
    ) -> Self {
        assert_eq!(
            model.vocab().len(),
            bpe.vocab().len(),
            "model and tokenizer vocabulary mismatch"
        );
        let meter = UsageMeter::new();
        if let Some(registry) = &obs.registry {
            meter.register_into(registry, "lm");
        }
        // The meter wraps the model *inside* the scheduler: it counts
        // real dispatches after caching/single-flighting, which is what
        // the Tables 3–5 binaries and benches compare against.
        let metered = MeteredLm::new(model, meter.clone());
        let sched = Arc::new(Scheduler::with_retry(
            Box::new(metered),
            config.policy,
            config.cache,
            config.retry,
            SchedulerObs {
                meter: Some(meter.clone()),
                tracer: obs.tracer.clone(),
                registry: obs.registry.clone(),
            },
        ));
        Engine {
            sched,
            bpe,
            meter,
            threads: config.threads,
            tracer: obs.tracer,
            registry: obs.registry,
            mask_memo: MaskMemo::new(1024),
            automata: AutomataCache::new(),
            subquery: config.subquery,
            tools: config.tools,
        }
    }

    /// The engine's tool registry (installed on every worker runtime;
    /// [`ToolRegistry::usage`] here is the pool-wide rollup).
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// A [`LanguageModel`] handle routing through this engine's
    /// scheduler — plug it into a [`Runtime`] (or anything else) to join
    /// the shared cache and microbatches.
    pub fn handle(&self) -> BatchedLm {
        BatchedLm::new(Arc::clone(&self.sched))
    }

    /// The shared scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// The engine-level meter: model queries and batch statistics for
    /// everything scored through this engine.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Usage and prefix-cache counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            usage: self.meter.snapshot(),
            cache: self.sched.cache_stats(),
        }
    }

    /// The engine's trace recorder (disabled unless one was installed via
    /// [`new_with_obs`](Self::new_with_obs)).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry, if one was installed via
    /// [`new_with_obs`](Self::new_with_obs).
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// The engine's shared cross-query mask memo.
    pub fn mask_memo(&self) -> &Arc<MaskMemo> {
        &self.mask_memo
    }

    /// The engine's shared cross-query constraint-automata cache.
    pub fn automata_cache(&self) -> &Arc<AutomataCache> {
        &self.automata
    }

    /// Runs each query source concurrently over the shared model,
    /// returning results in input order.
    ///
    /// Each query runs on a fresh default [`Runtime`]; use
    /// [`run_queries_with`](Self::run_queries_with) to configure
    /// runtimes (seeds, bindings, externals) per query.
    pub fn run_queries(&self, sources: &[&str]) -> Vec<lmql::Result<QueryResult>> {
        self.run_queries_with(sources, |_, _| {})
    }

    /// Like [`run_queries`](Self::run_queries), calling `configure`
    /// with each query's index and runtime before it runs.
    pub fn run_queries_with<F>(
        &self,
        sources: &[&str],
        configure: F,
    ) -> Vec<lmql::Result<QueryResult>>
    where
        F: Fn(usize, &mut Runtime) + Sync,
    {
        let n = sources.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(n);

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<lmql::Result<QueryResult>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut rt = Runtime::new(Arc::new(self.handle()), Arc::clone(&self.bpe));
                    rt.set_tracer(self.tracer.clone());
                    rt.set_mask_memo(Arc::clone(&self.mask_memo));
                    rt.set_automata_cache(Arc::clone(&self.automata));
                    rt.set_subquery_limits(self.subquery);
                    if !self.tools.is_empty() {
                        rt.set_tools(self.tools.clone());
                    }
                    if let Some(registry) = &self.registry {
                        rt.set_metrics_registry(registry.clone());
                    }
                    configure(i, &mut rt);
                    // A model failure past the scheduler's retry budget
                    // surfaces as a panic inside the runtime's `score`
                    // calls; contain it to this query — the other
                    // queries (and this worker) keep running.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        rt.run(sources[i])
                    }))
                    .unwrap_or_else(|payload| {
                        let message = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("query worker panicked")
                            .to_owned();
                        Err(lmql::Error::Model { message })
                    });
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every query slot is filled by a worker")
            })
            .collect()
    }

    /// Streaming variant of [`run_queries`](Self::run_queries): each
    /// query starts immediately on its own thread and returns a
    /// [`QueryStream`] handle delivering [`QueryEvent`]s as decoding
    /// progresses. Handles are independent: consume them in any order,
    /// [`wait`](QueryStream::wait) for final results, or drop one to
    /// cancel its query — cancellation releases the query's scheduler
    /// slots (counted by the `engine.cancelled` metric) without
    /// disturbing other queries.
    pub fn stream_queries(&self, sources: &[&str]) -> Vec<QueryStream> {
        sources.iter().map(|src| self.stream_query(src)).collect()
    }

    /// Streams one query; see [`stream_queries`](Self::stream_queries).
    pub fn stream_query(&self, source: &str) -> QueryStream {
        self.stream_query_with(source, |_| {})
    }

    /// Like [`stream_query`](Self::stream_query), calling `configure` on
    /// the query's runtime (seed, bindings, externals) before it runs.
    pub fn stream_query_with<F>(&self, source: &str, configure: F) -> QueryStream
    where
        F: FnOnce(&mut Runtime) + Send + 'static,
    {
        let (channel_sink, events, cancel) = StreamSink::channel();
        let metrics = match &self.registry {
            Some(registry) => StreamMetrics::registered(registry),
            None => StreamMetrics::default(),
        };
        let sink = StreamSink::new(Arc::new(MeteredSink {
            inner: channel_sink,
            metrics: metrics.clone(),
            started: Instant::now(),
            saw_token: AtomicBool::new(false),
        }));
        let (result_tx, result) = mpsc::channel();

        let lm = BatchedLm::with_cancel(Arc::clone(&self.sched), cancel.clone());
        let bpe = Arc::clone(&self.bpe);
        let tracer = self.tracer.clone();
        let registry = self.registry.clone();
        let mask_memo = Arc::clone(&self.mask_memo);
        let automata = Arc::clone(&self.automata);
        let subquery = self.subquery;
        let tools = self.tools.clone();
        let source = source.to_owned();
        std::thread::Builder::new()
            .name("lmql-engine-stream".to_owned())
            .spawn(move || {
                let mut rt = Runtime::new(Arc::new(lm), bpe);
                rt.set_tracer(tracer);
                rt.set_mask_memo(mask_memo);
                rt.set_automata_cache(automata);
                rt.set_subquery_limits(subquery);
                if !tools.is_empty() {
                    rt.set_tools(tools);
                }
                if let Some(registry) = &registry {
                    rt.set_metrics_registry(registry.clone());
                }
                configure(&mut rt);
                // Same containment as the pooled runner: a model failure
                // past the retry budget panics inside `score`; keep it
                // inside this query's thread.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rt.run_streamed(&source, sink)
                }))
                .unwrap_or_else(|payload| {
                    let message = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("query worker panicked")
                        .to_owned();
                    Err(lmql::Error::Model { message })
                });
                if matches!(result, Err(lmql::Error::Cancelled)) {
                    metrics.cancelled.inc();
                }
                // The consumer may already be gone (dropped handle) —
                // then the result is simply discarded.
                let _ = result_tx.send(result);
            })
            .expect("failed to spawn stream worker thread");

        QueryStream {
            events,
            cancel,
            result,
        }
    }
}

/// A live streamed query (see [`Engine::stream_queries`]): an event
/// receiver, a cancellation handle, and the final result.
///
/// Dropping the handle cancels the query cooperatively: the runtime
/// stops at its next decode step, queued scheduler work is released
/// without reaching the model, and pending single-flight waits resolve —
/// the query's resources are freed rather than decoding for nobody.
#[derive(Debug)]
pub struct QueryStream {
    events: mpsc::Receiver<QueryEvent>,
    cancel: CancelToken,
    result: mpsc::Receiver<lmql::Result<QueryResult>>,
}

impl QueryStream {
    /// Blocks for the next event; `None` once the stream is over (the
    /// terminal `Done`/`Error` event was already delivered, or the
    /// producer is gone).
    pub fn next_event(&self) -> Option<QueryEvent> {
        self.events.recv().ok()
    }

    /// A blocking iterator over the remaining events.
    pub fn events(&self) -> impl Iterator<Item = QueryEvent> + '_ {
        std::iter::from_fn(move || self.next_event())
    }

    /// Requests cooperative cancellation. Idempotent; the final result
    /// (usually [`lmql::Error::Cancelled`]) still arrives via
    /// [`wait`](Self::wait) if the query was already past its last
    /// decode step.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether cancellation was requested (by [`cancel`](Self::cancel)
    /// or a dropped receiver).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Discards any unconsumed events and blocks for the query's final
    /// result — byte-identical to what the non-streaming
    /// [`Engine::run_queries`] would have returned.
    pub fn wait(self) -> lmql::Result<QueryResult> {
        self.result.recv().unwrap_or_else(|_| {
            Err(lmql::Error::Model {
                message: "stream worker vanished without a result".to_owned(),
            })
        })
    }
}

impl Drop for QueryStream {
    fn drop(&mut self) {
        // Dropping an unfinished stream abandons the query; make that
        // explicit so the scheduler releases its work promptly instead
        // of waiting for the next emit to notice the closed channel.
        self.cancel.cancel();
    }
}

/// Wraps the channel sink with delivery metrics: every event counts,
/// and the first `TokenDelta` records time-to-first-token.
struct MeteredSink {
    inner: StreamSink,
    metrics: StreamMetrics,
    started: Instant,
    saw_token: AtomicBool,
}

impl EventSink for MeteredSink {
    fn emit(&self, event: QueryEvent) {
        self.metrics.events.inc();
        if matches!(event, QueryEvent::TokenDelta { .. })
            && !self.saw_token.swap(true, Ordering::Relaxed)
        {
            self.metrics
                .first_token_us
                .record(self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        self.inner.emit(event);
    }

    fn cancelled(&self) -> bool {
        self.inner.cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Episode, ScriptedLm};

    fn engine(episodes: Vec<Episode>, threads: usize) -> Engine {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
        Engine::new(
            lm,
            bpe,
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn runs_queries_in_input_order() {
        let eng = engine(
            vec![Episode::plain("A:", " one."), Episode::plain("B:", " two.")],
            4,
        );
        let qa = "argmax\n    \"A:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let qb = "argmax\n    \"B:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let results = eng.run_queries(&[qa, qb, qa]);
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].as_ref().unwrap().best().var_str("X"),
            Some(" one.")
        );
        assert_eq!(
            results[1].as_ref().unwrap().best().var_str("X"),
            Some(" two.")
        );
        assert_eq!(
            results[2].as_ref().unwrap().best().var_str("X"),
            Some(" one.")
        );
    }

    #[test]
    fn errors_stay_per_query() {
        let eng = engine(vec![Episode::plain("A:", " ok.")], 2);
        let good = "argmax\n    \"A:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let bad = "magic\n    \"A:[X]\"\nfrom \"m\"\n";
        let results = eng.run_queries(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let eng = engine(vec![], 2);
        assert!(eng.run_queries(&[]).is_empty());
    }

    #[test]
    fn shared_prompts_pay_the_model_once() {
        let q = "argmax\n    \"Q:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let solo = engine(vec![Episode::plain("Q:", " yes.")], 4);
        solo.run_queries(&[q]).remove(0).unwrap();
        let solo_queries = solo.stats().usage.model_queries;

        let shared = engine(vec![Episode::plain("Q:", " yes.")], 4);
        let results = shared.run_queries(&[q, q, q, q]);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = shared.stats();
        // Whether repeats land as cache hits or join in-flight slots
        // depends on timing, but either way each distinct context is
        // scored exactly once — the same work as a single query.
        assert_eq!(stats.usage.model_queries, solo_queries);
        assert!(stats.usage.cache_misses >= solo_queries);
    }

    #[test]
    fn configure_binds_per_query() {
        let eng = engine(vec![Episode::plain("v: a\npick:", " a")], 2);
        let q = "argmax\n    \"v: {V}\\npick:[X]\"\nfrom \"m\"\n";
        let results = eng.run_queries_with(&[q], |_, rt| {
            rt.bind("V", lmql::Value::Str("a".into()));
        });
        assert!(results[0]
            .as_ref()
            .unwrap()
            .best()
            .trace
            .starts_with("v: a"));
    }
}
