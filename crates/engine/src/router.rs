//! The front-end router: a sharded pool of replica engines with
//! prefix-affinity routing, continuous admission control, and
//! per-replica health tracking (DESIGN.md §15).
//!
//! One [`Engine`] is one worker group: a scheduler, a radix prefix
//! cache, a mask memo. The [`Router`] fans queries out over N of them.
//! Three mechanisms make the pool behave like one big fast engine
//! instead of N cold small ones:
//!
//! 1. **Prefix affinity** — the routing key is a fingerprint of the
//!    query's *tokenized prompt prefix* ([`Bpe::prefix_fingerprint`]),
//!    placed by rendezvous (highest-random-weight) hashing over the
//!    replica set. Queries sharing a prompt prefix land on the same
//!    replica, so RadixCache hit rates survive sharding (SGLang's
//!    cache-aware routing is the model). Raw token contexts route
//!    through [`fingerprint_tokens`] — the same key — so server `SCORE`/
//!    `BATCH` frames shard with the queries that produced them.
//! 2. **Admission control** — an optional in-flight cap; at capacity
//!    the router sheds instead of queueing (the server maps this to its
//!    `BUSY` frame). RAII [`Permit`]s make the accounting exception-safe.
//! 3. **Health + fail-over** — every replica carries a
//!    [`CircuitBreaker`]. Routing prefers healthy replicas (affinity
//!    order is preserved among them); a query whose replica fails
//!    mid-run is retried on the next healthy replica, counted by
//!    `engine.replica.failover`. Results stay byte-identical: queries
//!    are deterministic in (source, seed), never in placement.
//!
//! Because every replica computes exactly what a single-node engine
//! would, the router changes *where* and *when* work runs, never what
//! it computes — the multi-replica soak test pins byte-identity against
//! a single-node run.

use crate::radix::RadixStats;
use crate::run::{Engine, EngineConfig, EngineObs};
use lmql::{QueryEvent, QueryResult};
use lmql_lm::{
    BreakerConfig, BreakerState, CancelToken, CircuitBreaker, LanguageModel, LmError, LmResult,
    Logits, Usage,
};
use lmql_obs::{Counter, Registry, RouterMetrics, Tracer};
use lmql_tokenizer::{fingerprint_tokens, Bpe, TokenId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Tunables for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica engines in the pool (each its own scheduler + caches).
    pub replicas: usize,
    /// Prefix-affinity routing. When `false`, queries are dealt
    /// round-robin — the cache-oblivious baseline the bench compares
    /// against (`--no-affinity` bisects).
    pub affinity: bool,
    /// Token budget of the routing key: how much of the tokenized
    /// prompt prefix the fingerprint covers.
    pub prefix_tokens: usize,
    /// Router-level admission cap on concurrently running queries;
    /// `0` means unbounded. At capacity new work is shed, not queued.
    pub max_inflight: usize,
    /// Configuration applied to every replica engine.
    pub engine: EngineConfig,
    /// Per-replica circuit-breaker tuning.
    pub health: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 4,
            affinity: true,
            prefix_tokens: 32,
            max_inflight: 0,
            engine: EngineConfig::default(),
            health: BreakerConfig::default(),
        }
    }
}

/// Observability hooks for a [`Router`]: a tracer shared by every
/// replica, and an optional registry collecting `router.*` metrics,
/// per-replica counters (`router.replica.<i>.queries`, breaker gauges)
/// and the `engine.replica.failover` counter. Each router needs its own
/// registry (per-replica names are registered once).
#[derive(Debug, Clone, Default)]
pub struct RouterObs {
    /// Trace recorder shared by every replica engine.
    pub tracer: Tracer,
    /// Metrics registry for router + per-replica metrics.
    pub registry: Option<Registry>,
}

struct Replica {
    engine: Engine,
    breaker: CircuitBreaker,
    queries: Counter,
}

struct Shared {
    replicas: Vec<Replica>,
    bpe: Arc<Bpe>,
    affinity: bool,
    prefix_tokens: usize,
    max_inflight: usize,
    inflight: AtomicUsize,
    /// Round-robin cursor for `affinity: false` routing.
    rr: AtomicU64,
    metrics: RouterMetrics,
}

/// The replica-pool router; see the module docs.
pub struct Router {
    shared: Arc<Shared>,
    registry: Option<Registry>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("replicas", &self.shared.replicas.len())
            .field("affinity", &self.shared.affinity)
            .finish_non_exhaustive()
    }
}

/// An RAII admission slot: holding one keeps a unit of router capacity
/// reserved; dropping it releases the slot. See [`Router::admit`].
pub struct Permit {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Per-replica usage snapshot inside [`RouterStats`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicaStats {
    /// Queries this replica was handed (including fail-over retries).
    pub queries: u64,
    /// The replica engine's §6 usage counters.
    pub usage: Usage,
    /// The replica's prefix-cache counters.
    pub cache: RadixStats,
    /// Current breaker state.
    pub breaker: BreakerState,
}

/// A point-in-time view of the router and each replica.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Queries admitted and routed.
    pub routed: u64,
    /// Queries rejected at admission.
    pub shed: u64,
    /// Queries retried on another replica after a replica failure.
    pub failovers: u64,
    /// Routing decisions diverted from their affinity choice because
    /// that replica was unhealthy.
    pub rerouted: u64,
    /// Per-replica usage, in replica order.
    pub replicas: Vec<ReplicaStats>,
}

impl RouterStats {
    /// Pool-wide prefix-cache counters: every field summed across
    /// replicas.
    pub fn cache_totals(&self) -> RadixStats {
        self.replicas
            .iter()
            .fold(RadixStats::default(), |acc, r| RadixStats {
                hits: acc.hits + r.cache.hits,
                misses: acc.misses + r.cache.misses,
                evictions: acc.evictions + r.cache.evictions,
                entries: acc.entries + r.cache.entries,
                bytes: acc.bytes + r.cache.bytes,
            })
    }

    /// Pool-wide radix hit rate: hits over lookups, summed across
    /// replicas — the number affinity routing exists to protect.
    pub fn cache_hit_rate(&self) -> f64 {
        let totals = self.cache_totals();
        if totals.hits + totals.misses == 0 {
            0.0
        } else {
            totals.hits as f64 / (totals.hits + totals.misses) as f64
        }
    }
}

/// The routable prompt prefix of a query source: the first prompt
/// string literal, up to its first hole `[` or recall `{`. Borrowed
/// straight out of `source` — deriving a routing key allocates nothing.
pub fn prompt_prefix(source: &str) -> &str {
    let Some(start) = source.find('"') else {
        return source;
    };
    let body = &source[start + 1..];
    let end = body.find(['"', '[', '{']).unwrap_or(body.len());
    &body[..end]
}

/// The message of the [`Error::Model`](lmql::Error::Model) a router
/// returns when it sheds a query at admission. Front ends map it to
/// their own back-pressure signal (the server's `BUSY` frame).
pub const BUSY_MESSAGE: &str = "router at capacity: query shed at admission";

/// Whether `err` is the router's admission-shed error — back-pressure to
/// surface to the caller, not a replica failure.
pub fn is_busy(err: &lmql::Error) -> bool {
    matches!(err, lmql::Error::Model { message } if message == BUSY_MESSAGE)
}

/// SplitMix64 finaliser: the per-replica weight mixer for rendezvous
/// hashing.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Shared {
    /// Replica preference order for `key` under rendezvous hashing:
    /// every replica gets a pseudo-random weight from (key, replica) and
    /// the order is by descending weight. Stable in `key`, and removing
    /// one replica only moves the keys that pointed at it — the
    /// consistent-hashing property that keeps the other replicas' radix
    /// caches warm through membership changes.
    fn rendezvous_order(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(mix(key ^ (i as u64 + 1))));
        order
    }

    /// Full preference order for a routing key: affinity (or
    /// round-robin) order, stably partitioned so healthy replicas come
    /// first. Unhealthy replicas stay as last-resort fallbacks — an
    /// all-open pool still serves (each attempt doubles as a breaker
    /// probe) rather than failing outright.
    fn route_order(&self, key: u64) -> Vec<usize> {
        let base = if self.affinity {
            self.rendezvous_order(key)
        } else {
            let n = self.replicas.len() as u64;
            let start = (self.rr.fetch_add(1, Ordering::Relaxed) % n) as usize;
            (0..self.replicas.len())
                .map(|k| (start + k) % self.replicas.len())
                .collect()
        };
        let preferred = base[0];
        let (healthy, unhealthy): (Vec<usize>, Vec<usize>) = base
            .into_iter()
            .partition(|&i| self.replicas[i].breaker.allow());
        let order: Vec<usize> = healthy.into_iter().chain(unhealthy).collect();
        if order[0] != preferred {
            self.metrics.rerouted.inc();
        }
        order
    }

    fn query_key(&self, source: &str) -> u64 {
        self.bpe
            .prefix_fingerprint(prompt_prefix(source), self.prefix_tokens)
    }

    fn admit(self: &Arc<Self>) -> Option<Permit> {
        loop {
            let cur = self.inflight.load(Ordering::Acquire);
            if self.max_inflight != 0 && cur >= self.max_inflight {
                self.metrics.shed.inc();
                return None;
            }
            if self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(Permit {
                    shared: Arc::clone(self),
                });
            }
        }
    }

    /// One attempt of `source` on replica `i`, with health recording: a
    /// model-layer failure counts against the replica's breaker, any
    /// other outcome (success, or a deterministic query error that no
    /// replica could serve differently) closes it.
    fn attempt(
        &self,
        i: usize,
        source: &str,
        configure: &(dyn Fn(&mut lmql::Runtime) + Sync),
    ) -> lmql::Result<QueryResult> {
        let replica = &self.replicas[i];
        replica.queries.inc();
        let result = replica
            .engine
            .run_queries_with(&[source], |_, rt| configure(rt))
            .pop()
            .expect("one result per query");
        match &result {
            Err(lmql::Error::Model { .. }) => replica.breaker.record_failure(),
            _ => replica.breaker.record_success(),
        }
        result
    }

    /// Runs `source` down a preference order, failing over (and
    /// counting `engine.replica.failover`) on model-layer errors only:
    /// query-level errors (syntax, no valid continuation, …) are
    /// deterministic and identical on every replica.
    fn run_on(
        &self,
        order: &[usize],
        source: &str,
        configure: &(dyn Fn(&mut lmql::Runtime) + Sync),
    ) -> lmql::Result<QueryResult> {
        let started = Instant::now();
        self.metrics.queries.inc();
        let mut result = self.attempt(order[0], source, configure);
        for &i in &order[1..] {
            if !matches!(result, Err(lmql::Error::Model { .. })) {
                break;
            }
            self.metrics.failovers.inc();
            result = self.attempt(i, source, configure);
        }
        self.metrics
            .latency_us
            .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        result
    }

    fn busy() -> lmql::Error {
        lmql::Error::Model {
            message: BUSY_MESSAGE.to_owned(),
        }
    }
}

impl Router {
    /// A router whose replicas all score through one shared `model`.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero or the model's vocabulary
    /// size does not match the tokenizer's.
    pub fn new(model: Arc<dyn LanguageModel>, bpe: Arc<Bpe>, config: RouterConfig) -> Self {
        Self::new_with_obs(model, bpe, config, RouterObs::default())
    }

    /// Like [`new`](Self::new) with observability hooks.
    pub fn new_with_obs(
        model: Arc<dyn LanguageModel>,
        bpe: Arc<Bpe>,
        config: RouterConfig,
        obs: RouterObs,
    ) -> Self {
        Self::with_backends(|_| Arc::clone(&model), bpe, config, obs)
    }

    /// The full constructor: `backend(i)` supplies replica `i`'s model —
    /// in production a per-replica connection, in the chaos tests a
    /// per-replica fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero or any backend's vocabulary
    /// size does not match the tokenizer's.
    pub fn with_backends(
        mut backend: impl FnMut(usize) -> Arc<dyn LanguageModel>,
        bpe: Arc<Bpe>,
        config: RouterConfig,
        obs: RouterObs,
    ) -> Self {
        assert!(config.replicas >= 1, "router needs at least one replica");
        let metrics = match &obs.registry {
            Some(registry) => RouterMetrics::registered(registry),
            None => RouterMetrics::default(),
        };
        let replicas: Vec<Replica> = (0..config.replicas)
            .map(|i| {
                // Replica engines keep their metrics private (their
                // meters would collide under one registry); the router
                // registry carries the per-replica counters instead.
                let engine = Engine::new_with_obs(
                    backend(i),
                    Arc::clone(&bpe),
                    // Each replica gets a clone of the engine config;
                    // the tool registry's call counters are shared by
                    // cloning, so pool-wide tool usage stays one rollup.
                    config.engine.clone(),
                    EngineObs {
                        tracer: obs.tracer.clone(),
                        registry: None,
                    },
                );
                let breaker = CircuitBreaker::new(config.health);
                let queries = match &obs.registry {
                    Some(registry) => {
                        registry.register_gauge(
                            &format!("router.replica.{i}.breaker"),
                            breaker.gauge().clone(),
                        );
                        registry.counter(&format!("router.replica.{i}.queries"))
                    }
                    None => Counter::default(),
                };
                Replica {
                    engine,
                    breaker,
                    queries,
                }
            })
            .collect();
        Router {
            shared: Arc::new(Shared {
                replicas,
                bpe,
                affinity: config.affinity,
                prefix_tokens: config.prefix_tokens,
                max_inflight: config.max_inflight,
                inflight: AtomicUsize::new(0),
                rr: AtomicU64::new(0),
                metrics,
            }),
            registry: obs.registry,
        }
    }

    /// Number of replicas in the pool.
    pub fn replicas(&self) -> usize {
        self.shared.replicas.len()
    }

    /// The metrics registry, if one was installed.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// The router's metric handles.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// The affinity choice for `source` (health ignored) — which replica
    /// its prompt prefix maps to. Exposed for tests and benches; with
    /// `affinity: false` this is still the would-be affinity target.
    pub fn route_for(&self, source: &str) -> usize {
        self.shared.rendezvous_order(self.shared.query_key(source))[0]
    }

    /// Reserves one unit of router capacity, or `None` (counted as
    /// `router.shed`) at the admission cap. [`run_query`](Self::run_query)
    /// and friends admit internally; the server calls this directly so
    /// it can answer `BUSY` on the wire before reading the payload.
    pub fn admit(&self) -> Option<Permit> {
        self.shared.admit()
    }

    /// Routes and runs one query, failing over to the next healthy
    /// replica on model-layer errors. Returns the `BUSY` shed error at
    /// the admission cap.
    pub fn run_query(&self, source: &str) -> lmql::Result<QueryResult> {
        self.run_query_with(source, |_| {})
    }

    /// Like [`run_query`](Self::run_query), calling `configure` on the
    /// query's runtime before it runs (seed, bindings, decode options).
    /// The closure runs once per attempt, so a fail-over retry gets the
    /// same configuration — which is what keeps retried results
    /// byte-identical.
    pub fn run_query_with<F>(&self, source: &str, configure: F) -> lmql::Result<QueryResult>
    where
        F: Fn(&mut lmql::Runtime) + Sync,
    {
        let Some(_permit) = self.shared.admit() else {
            return Err(Shared::busy());
        };
        let order = self.shared.route_order(self.shared.query_key(source));
        self.shared.run_on(&order, source, &configure)
    }

    /// Routes and runs many queries concurrently: sources are grouped by
    /// their routed replica, each group runs on its replica's own thread
    /// pool in parallel, and any model-layer failure fails over
    /// per-query. Results come back in input order, byte-identical to a
    /// single-node run.
    pub fn run_queries(&self, sources: &[&str]) -> Vec<lmql::Result<QueryResult>> {
        let n = sources.len();
        if n == 0 {
            return Vec::new();
        }
        let shared = &self.shared;
        let mut permits = Vec::with_capacity(n);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shared.replicas.len()];
        let mut admitted = vec![false; n];
        for (qi, src) in sources.iter().enumerate() {
            if let Some(permit) = shared.admit() {
                permits.push(permit);
                admitted[qi] = true;
                let order = shared.route_order(shared.query_key(src));
                groups[order[0]].push(qi);
            }
        }
        let slots: Vec<std::sync::Mutex<Option<lmql::Result<QueryResult>>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for (ri, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let slots = &slots;
                s.spawn(move || {
                    let replica = &shared.replicas[ri];
                    let srcs: Vec<&str> = group.iter().map(|&qi| sources[qi]).collect();
                    shared.metrics.queries.add(srcs.len() as u64);
                    replica.queries.add(srcs.len() as u64);
                    let results = replica.engine.run_queries(&srcs);
                    for (&qi, result) in group.iter().zip(results) {
                        match &result {
                            Err(lmql::Error::Model { .. }) => replica.breaker.record_failure(),
                            _ => replica.breaker.record_success(),
                        }
                        *slots[qi].lock().expect("router slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(qi, slot)| {
                if !admitted[qi] {
                    return Err(Shared::busy());
                }
                let result = slot
                    .into_inner()
                    .expect("router slot poisoned")
                    .expect("every admitted query gets a result");
                if matches!(result, Err(lmql::Error::Model { .. })) {
                    // Per-query fail-over pass: re-route excluding the
                    // replica that just failed.
                    let order = shared.route_order(shared.query_key(sources[qi]));
                    let failed = order[0];
                    let rest: Vec<usize> = order.into_iter().filter(|&i| i != failed).collect();
                    if rest.is_empty() {
                        return result;
                    }
                    self.shared.metrics.failovers.inc();
                    return shared.run_on(&rest, sources[qi], &|_| {});
                }
                result
            })
            .collect()
    }

    /// Scores a raw token context through the pool, routed by the same
    /// token-prefix fingerprint as queries — a scoring request shards
    /// with the query traffic whose prompt it extends. Fails over on
    /// model errors (except cancellation/deadline, which are the
    /// caller's verdicts, not the replica's).
    pub fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        let shared = &self.shared;
        let key = fingerprint_tokens(context, shared.prefix_tokens);
        let order = shared.route_order(key);
        let mut last: Option<LmError> = None;
        for (attempt, &i) in order.iter().enumerate() {
            if attempt > 0 {
                shared.metrics.failovers.inc();
            }
            let replica = &shared.replicas[i];
            match replica.engine.scheduler().try_score(context) {
                Ok(logits) => {
                    replica.breaker.record_success();
                    return Ok(logits);
                }
                Err(e @ (LmError::Cancelled | LmError::DeadlineExceeded { .. })) => {
                    return Err(e);
                }
                Err(e) => {
                    replica.breaker.record_failure();
                    last = Some(e);
                }
            }
        }
        Err(last.expect("at least one replica attempted"))
    }

    /// Batched [`try_score`](Self::try_score) with per-item results.
    pub fn try_score_many(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        contexts.iter().map(|ctx| self.try_score(ctx)).collect()
    }

    /// Routes and streams one query; events arrive as decoding
    /// progresses. On a replica failure mid-stream the query fails over:
    /// the event stream *restarts from the beginning* on the next
    /// healthy replica (consumers see the new attempt's events after the
    /// old attempt's partial ones), and [`RouterStream::wait`] returns
    /// the retried run's result — byte-identical to a single-node run,
    /// because results depend only on (source, seed).
    pub fn stream_query(&self, source: &str) -> RouterStream {
        self.stream_query_with(source, |_| {})
    }

    /// [`Router::stream_query`] with a configuration hook applied to the
    /// per-query [`Runtime`](lmql::Runtime) before decoding starts. The
    /// closure runs once per attempt, so a fail-over retry streams under
    /// the same configuration (and thus the same result bytes).
    pub fn stream_query_with<F>(&self, source: &str, configure: F) -> RouterStream
    where
        F: Fn(&mut lmql::Runtime) + Send + Sync + 'static,
    {
        let configure = Arc::new(configure);
        let (evt_tx, events) = mpsc::channel();
        let (res_tx, result) = mpsc::channel();
        let cancel = CancelToken::new();
        let Some(permit) = self.shared.admit() else {
            let _ = res_tx.send(Err(Shared::busy()));
            return RouterStream {
                events,
                cancel,
                result,
            };
        };
        let shared = Arc::clone(&self.shared);
        let source = source.to_owned();
        let outer = cancel.clone();
        std::thread::Builder::new()
            .name("lmql-router-stream".to_owned())
            .spawn(move || {
                let _permit = permit;
                let started = Instant::now();
                shared.metrics.queries.inc();
                let order = shared.route_order(shared.query_key(&source));
                let mut outcome: lmql::Result<QueryResult> = Err(Shared::busy());
                for (attempt, &i) in order.iter().enumerate() {
                    if outer.is_cancelled() {
                        outcome = Err(lmql::Error::Cancelled);
                        break;
                    }
                    if attempt > 0 {
                        shared.metrics.failovers.inc();
                    }
                    let replica = &shared.replicas[i];
                    replica.queries.inc();
                    let cfg = Arc::clone(&configure);
                    let stream = replica.engine.stream_query_with(&source, move |rt| cfg(rt));
                    let mut consumer_gone = false;
                    for event in stream.events() {
                        if outer.is_cancelled() {
                            stream.cancel();
                        }
                        if evt_tx.send(event).is_err() {
                            // Consumer dropped the handle: cancel the
                            // query instead of decoding for nobody.
                            consumer_gone = true;
                            stream.cancel();
                            break;
                        }
                    }
                    let result = stream.wait();
                    match &result {
                        Err(lmql::Error::Model { .. }) if !consumer_gone => {
                            replica.breaker.record_failure();
                            outcome = result;
                            continue;
                        }
                        Err(lmql::Error::Model { .. }) => {
                            replica.breaker.record_failure();
                            outcome = result;
                            break;
                        }
                        _ => {
                            replica.breaker.record_success();
                            outcome = result;
                            break;
                        }
                    }
                }
                shared
                    .metrics
                    .latency_us
                    .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                let _ = res_tx.send(outcome);
            })
            .expect("failed to spawn router stream thread");
        RouterStream {
            events,
            cancel,
            result,
        }
    }

    /// Streams many queries; handles are independent (consume, wait, or
    /// drop-to-cancel in any order).
    pub fn stream_queries(&self, sources: &[&str]) -> Vec<RouterStream> {
        sources.iter().map(|src| self.stream_query(src)).collect()
    }

    /// Shuts every replica's scheduler down, draining queued and
    /// in-flight batches. Idempotent; also happens implicitly on drop.
    pub fn shutdown(&self) {
        for replica in &self.shared.replicas {
            replica.engine.scheduler().shutdown();
        }
    }

    /// A point-in-time snapshot of router counters and every replica's
    /// usage, cache, and breaker state.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.shared.metrics.queries.get(),
            shed: self.shared.metrics.shed.get(),
            failovers: self.shared.metrics.failovers.get(),
            rerouted: self.shared.metrics.rerouted.get(),
            replicas: self
                .shared
                .replicas
                .iter()
                .map(|r| ReplicaStats {
                    queries: r.queries.get(),
                    usage: r.engine.meter().snapshot(),
                    cache: r.engine.scheduler().cache_stats(),
                    breaker: r.breaker.state(),
                })
                .collect(),
        }
    }
}

/// A live streamed query routed through the pool; the router-side
/// analogue of [`QueryStream`](crate::QueryStream), with the same
/// consume/cancel/wait surface. Dropping the handle cancels the query.
#[derive(Debug)]
pub struct RouterStream {
    events: mpsc::Receiver<QueryEvent>,
    cancel: CancelToken,
    result: mpsc::Receiver<lmql::Result<QueryResult>>,
}

impl RouterStream {
    /// Blocks for the next event; `None` once the stream is over.
    pub fn next_event(&self) -> Option<QueryEvent> {
        self.events.recv().ok()
    }

    /// A blocking iterator over the remaining events.
    pub fn events(&self) -> impl Iterator<Item = QueryEvent> + '_ {
        std::iter::from_fn(move || self.next_event())
    }

    /// Requests cooperative cancellation (idempotent).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Discards unconsumed events and blocks for the final result.
    pub fn wait(self) -> lmql::Result<QueryResult> {
        self.result.recv().unwrap_or_else(|_| {
            Err(lmql::Error::Model {
                message: "router stream worker vanished without a result".to_owned(),
            })
        })
    }
}

impl Drop for RouterStream {
    fn drop(&mut self) {
        self.cancel.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Episode, ScriptedLm};

    fn pool(replicas: usize, affinity: bool, episodes: Vec<Episode>) -> Router {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
        Router::new(
            lm,
            bpe,
            RouterConfig {
                replicas,
                affinity,
                engine: EngineConfig {
                    threads: 2,
                    ..EngineConfig::default()
                },
                ..RouterConfig::default()
            },
        )
    }

    #[test]
    fn prompt_prefix_stops_at_holes_and_recalls() {
        let src = "argmax\n    \"Q: what[A]\"\nfrom \"m\"\n";
        assert_eq!(prompt_prefix(src), "Q: what");
        let recall = "argmax\n    \"ctx {V} then[A]\"\nfrom \"m\"\n";
        assert_eq!(prompt_prefix(recall), "ctx ");
        assert_eq!(prompt_prefix("no quotes at all"), "no quotes at all");
    }

    #[test]
    fn affinity_routing_is_deterministic_and_prefix_keyed() {
        let router = pool(4, true, vec![Episode::plain("Q:", " a.")]);
        let q1 = "argmax\n    \"shared prefix one[A]\"\nfrom \"m\"\n";
        let q2 = "argmax\n    \"shared prefix one[B]\"\nfrom \"m\"\n";
        assert_eq!(router.route_for(q1), router.route_for(q1));
        assert_eq!(
            router.route_for(q1),
            router.route_for(q2),
            "same prompt prefix, same replica (hole name is irrelevant)"
        );
        // Any one pair of prompts may collide on a replica; the key only
        // ignores the text if *every* distinct prompt collides.
        let elsewhere = (0..16).any(|i| {
            let q = format!("argmax\n    \"other prompt {i} goes[A]\"\nfrom \"m\"\n");
            router.route_for(&q) != router.route_for(q1)
        });
        assert!(elsewhere, "distinct prefixes never left q1's replica");
    }

    #[test]
    fn rendezvous_spreads_keys_over_replicas() {
        let router = pool(4, true, vec![]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            let src = format!("argmax\n    \"prompt number {i} says[A]\"\nfrom \"m\"\n");
            seen.insert(router.route_for(&src));
        }
        assert!(
            seen.len() >= 3,
            "32 distinct prompts should reach most of 4 replicas, got {seen:?}"
        );
    }

    #[test]
    fn round_robin_mode_rotates() {
        let router = pool(3, false, vec![Episode::plain("Q:", " a.")]);
        let q = "argmax\n    \"Q:[A]\"\nfrom \"m\"\nwhere stops_at(A, \".\")\n";
        for _ in 0..6 {
            router.run_query(q).unwrap();
        }
        let stats = router.stats();
        let loads: Vec<u64> = stats.replicas.iter().map(|r| r.queries).collect();
        assert_eq!(loads, vec![2, 2, 2], "round-robin deals evenly");
    }

    #[test]
    fn admission_cap_sheds_and_releases() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            vec![Episode::plain("Q:", " a.")],
        ));
        let router = Router::new(
            lm,
            bpe,
            RouterConfig {
                replicas: 2,
                max_inflight: 2,
                ..RouterConfig::default()
            },
        );
        let p1 = router.admit().expect("slot 1");
        let _p2 = router.admit().expect("slot 2");
        assert!(router.admit().is_none(), "cap reached");
        let q = "argmax\n    \"Q:[A]\"\nfrom \"m\"\nwhere stops_at(A, \".\")\n";
        let shed = router.run_query(q);
        assert!(
            matches!(shed, Err(lmql::Error::Model { ref message }) if message.contains("capacity")),
            "{shed:?}"
        );
        drop(p1);
        assert!(router.admit().is_some(), "released slot is reusable");
        assert_eq!(router.stats().shed, 2);
        drop(router);
    }

    #[test]
    fn routed_queries_match_single_node() {
        let episodes = vec![Episode::plain("A:", " one."), Episode::plain("B:", " two.")];
        let router = pool(3, true, episodes.clone());
        let bpe = Arc::new(Bpe::char_level(""));
        let single = Engine::new(
            Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes)),
            bpe,
            EngineConfig::default(),
        );
        let qa = "argmax\n    \"A:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let qb = "argmax\n    \"B:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
        let sources = vec![qa, qb, qa, qb, qa];
        let pooled = router.run_queries(&sources);
        let reference = single.run_queries(&sources);
        for (p, r) in pooled.iter().zip(&reference) {
            let (p, r) = (p.as_ref().unwrap(), r.as_ref().unwrap());
            assert_eq!(p.best().trace, r.best().trace);
            assert_eq!(
                p.best().log_prob.to_bits(),
                r.best().log_prob.to_bits(),
                "bit-identical scores"
            );
        }
    }
}
