//! A token-trie prefix cache with LRU eviction (the SGLang-style
//! "radix cache" specialised to whole-context score memoisation).
//!
//! Decoding revisits contexts that share long token prefixes: every step
//! of a hole extends the previous step's context by one token, `n`
//! lockstep samples share the prompt, and concurrent queries over the
//! same template share almost everything. Storing score vectors in a trie
//! keyed by the token path makes that sharing structural — one node per
//! context, shared spine for shared prefixes — and makes bounded
//! eviction cheap: evicting the least-recently-used *entry* prunes only
//! its private suffix nodes, never a shared spine still in use.
//!
//! Unlike the unbounded per-context `HashMap` in
//! [`CachedLm`](lmql_lm::CachedLm), this cache is budgeted (entry count
//! and approximate bytes) so long-running servers reach a steady state
//! instead of leaking.
//!
//! Keys stay zero-copy on the lookup path: walks take borrowed
//! `&[TokenId]` slices (the scheduler hands over the same `Arc<[TokenId]>`
//! payload it queued), and the trie itself stores one token per edge, so
//! shared prefixes are represented structurally rather than by duplicating
//! key vectors per entry.

use lmql_lm::Logits;
use lmql_tokenizer::TokenId;
use std::collections::HashMap;

/// Sentinel for "no node" in the arena / LRU links.
const NIL: usize = usize::MAX;

/// Per-entry bookkeeping overhead assumed by the byte budget (node,
/// hash-map slot, LRU links). An estimate — the budget bounds growth, it
/// is not an allocator audit.
const ENTRY_OVERHEAD_BYTES: usize = 96;

/// Budgets for a [`RadixCache`].
#[derive(Debug, Clone, Copy)]
pub struct RadixCacheConfig {
    /// Maximum number of cached entries (contexts with a stored score
    /// vector). At least 1.
    pub max_entries: usize,
    /// Maximum approximate bytes across all cached score vectors.
    pub max_bytes: usize,
}

impl Default for RadixCacheConfig {
    fn default() -> Self {
        RadixCacheConfig {
            max_entries: 16_384,
            max_bytes: 256 << 20,
        }
    }
}

/// Hit/miss/eviction counters and current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RadixStats {
    /// `get` calls that found a cached value.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached.
    pub bytes: usize,
}

impl RadixStats {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Node {
    children: HashMap<TokenId, usize>,
    parent: usize,
    /// Token on the edge from `parent` to this node.
    edge: TokenId,
    value: Option<Logits>,
    /// Approximate bytes charged for `value`.
    bytes: usize,
    /// LRU links, valid only while `value.is_some()`.
    lru_prev: usize,
    lru_next: usize,
}

impl Node {
    fn new(parent: usize, edge: TokenId) -> Self {
        Node {
            children: HashMap::new(),
            parent,
            edge,
            value: None,
            bytes: 0,
            lru_prev: NIL,
            lru_next: NIL,
        }
    }
}

/// The cache. Single-threaded by itself; the
/// [`Scheduler`](crate::Scheduler) wraps it in a mutex.
#[derive(Debug)]
pub struct RadixCache {
    config: RadixCacheConfig,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most-recently-used entry node.
    lru_head: usize,
    /// Least-recently-used entry node.
    lru_tail: usize,
    entries: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl RadixCache {
    /// An empty cache with the given budgets.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn new(config: RadixCacheConfig) -> Self {
        assert!(config.max_entries > 0, "radix cache needs at least 1 entry");
        RadixCache {
            config,
            nodes: vec![Node::new(NIL, TokenId(0))],
            free: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
            entries: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> RadixStats {
        RadixStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries,
            bytes: self.bytes,
        }
    }

    /// Looks up the score vector cached for exactly `key`, marking it
    /// most recently used.
    pub fn get(&mut self, key: &[TokenId]) -> Option<Logits> {
        match self.walk(key) {
            Some(idx) if self.nodes[idx].value.is_some() => {
                self.hits += 1;
                self.touch(idx);
                self.nodes[idx].value.clone()
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Length of the longest prefix of `key` that is a cached entry
    /// (0 when none). Does not count as a lookup or touch recency.
    pub fn longest_cached_prefix(&self, key: &[TokenId]) -> usize {
        let mut idx = 0;
        let mut best = 0;
        for (depth, t) in key.iter().enumerate() {
            match self.nodes[idx].children.get(t) {
                Some(&child) => {
                    idx = child;
                    if self.nodes[idx].value.is_some() {
                        best = depth + 1;
                    }
                }
                None => break,
            }
        }
        // The empty context can itself be an entry.
        if best == 0 && self.nodes[0].value.is_some() {
            0
        } else {
            best
        }
    }

    /// Caches `value` for `key`, then evicts least-recently-used entries
    /// until the budgets hold. Overwriting an existing entry refreshes
    /// its recency.
    pub fn insert(&mut self, key: &[TokenId], value: Logits) {
        let mut idx = 0;
        for &t in key {
            idx = match self.nodes[idx].children.get(&t) {
                Some(&child) => child,
                None => {
                    let child = self.alloc(idx, t);
                    self.nodes[idx].children.insert(t, child);
                    child
                }
            };
        }
        let new_bytes = value.len() * 8 + key.len() * 4 + ENTRY_OVERHEAD_BYTES;
        if self.nodes[idx].value.is_some() {
            // Overwrite in place.
            self.bytes = self.bytes - self.nodes[idx].bytes + new_bytes;
            self.nodes[idx].value = Some(value);
            self.nodes[idx].bytes = new_bytes;
            self.touch(idx);
        } else {
            self.nodes[idx].value = Some(value);
            self.nodes[idx].bytes = new_bytes;
            self.entries += 1;
            self.bytes += new_bytes;
            self.lru_push_front(idx);
        }
        self.evict_to_budget();
    }

    /// Empties the cache (counters survive).
    pub fn clear(&mut self) {
        self.nodes = vec![Node::new(NIL, TokenId(0))];
        self.free.clear();
        self.lru_head = NIL;
        self.lru_tail = NIL;
        self.entries = 0;
        self.bytes = 0;
    }

    /// Number of live trie nodes (root included) — exposed for tests
    /// asserting structural sharing and pruning.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn walk(&self, key: &[TokenId]) -> Option<usize> {
        let mut idx = 0;
        for t in key {
            idx = *self.nodes[idx].children.get(t)?;
        }
        Some(idx)
    }

    fn alloc(&mut self, parent: usize, edge: TokenId) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Node::new(parent, edge);
                idx
            }
            None => {
                self.nodes.push(Node::new(parent, edge));
                self.nodes.len() - 1
            }
        }
    }

    fn evict_to_budget(&mut self) {
        while self.entries > self.config.max_entries
            || (self.bytes > self.config.max_bytes && self.entries > 1)
        {
            let victim = self.lru_tail;
            if victim == NIL {
                break;
            }
            self.remove_entry(victim);
            self.evictions += 1;
        }
    }

    /// Drops the entry at `idx` and prunes now-useless suffix nodes.
    fn remove_entry(&mut self, idx: usize) {
        self.lru_unlink(idx);
        self.bytes -= self.nodes[idx].bytes;
        self.entries -= 1;
        self.nodes[idx].value = None;
        self.nodes[idx].bytes = 0;
        // Prune childless valueless nodes up the spine (shared prefixes
        // with live descendants or live values stay).
        let mut cur = idx;
        while cur != 0 && self.nodes[cur].value.is_none() && self.nodes[cur].children.is_empty() {
            let parent = self.nodes[cur].parent;
            let edge = self.nodes[cur].edge;
            self.nodes[parent].children.remove(&edge);
            self.free.push(cur);
            cur = parent;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.lru_head != idx {
            self.lru_unlink(idx);
            self.lru_push_front(idx);
        }
    }

    fn lru_push_front(&mut self, idx: usize) {
        self.nodes[idx].lru_prev = NIL;
        self.nodes[idx].lru_next = self.lru_head;
        if self.lru_head != NIL {
            self.nodes[self.lru_head].lru_prev = idx;
        }
        self.lru_head = idx;
        if self.lru_tail == NIL {
            self.lru_tail = idx;
        }
    }

    fn lru_unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].lru_prev, self.nodes[idx].lru_next);
        if prev != NIL {
            self.nodes[prev].lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.nodes[next].lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
        self.nodes[idx].lru_prev = NIL;
        self.nodes[idx].lru_next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(tag: f64) -> Logits {
        Logits::from_vec(vec![tag, tag + 1.0])
    }

    fn key(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&i| TokenId(i)).collect()
    }

    fn cache(max_entries: usize) -> RadixCache {
        RadixCache::new(RadixCacheConfig {
            max_entries,
            max_bytes: usize::MAX,
        })
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let mut c = cache(16);
        c.insert(&key(&[1, 2, 3]), logits(7.0));
        assert_eq!(c.get(&key(&[1, 2, 3])), Some(logits(7.0)));
        assert_eq!(c.get(&key(&[1, 2])), None, "prefix is not an entry");
        assert_eq!(c.get(&key(&[1, 2, 3, 4])), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn empty_context_is_a_valid_key() {
        let mut c = cache(4);
        c.insert(&[], logits(1.0));
        assert_eq!(c.get(&[]), Some(logits(1.0)));
        assert_eq!(c.longest_cached_prefix(&key(&[5])), 0);
    }

    #[test]
    fn shared_prefixes_share_spine_nodes() {
        let mut c = cache(16);
        c.insert(&key(&[1, 2, 3]), logits(1.0));
        c.insert(&key(&[1, 2, 4]), logits(2.0));
        // root + 1,2 spine + leaves 3 and 4.
        assert_eq!(c.node_count(), 5);
    }

    #[test]
    fn lru_evicts_least_recent_and_prunes() {
        let mut c = cache(2);
        c.insert(&key(&[1]), logits(1.0));
        c.insert(&key(&[2]), logits(2.0));
        let _ = c.get(&key(&[1])); // 1 becomes most recent
        c.insert(&key(&[3]), logits(3.0)); // evicts 2
        assert!(c.get(&key(&[2])).is_none());
        assert!(c.get(&key(&[1])).is_some());
        assert!(c.get(&key(&[3])).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
        // Node for token 2 pruned: root + nodes for 1 and 3.
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn eviction_keeps_shared_spines_with_live_values() {
        let mut c = cache(2);
        c.insert(&key(&[1, 2]), logits(1.0));
        c.insert(&key(&[1, 2, 3]), logits(2.0));
        let _ = c.get(&key(&[1, 2, 3]));
        c.insert(&key(&[9]), logits(3.0)); // evicts [1,2], the LRU entry
        assert!(c.get(&key(&[1, 2])).is_none());
        assert_eq!(c.get(&key(&[1, 2, 3])), Some(logits(2.0)));
        // [1,2] spine survives as interior nodes for the live [1,2,3].
        assert_eq!(c.node_count(), 5);
    }

    #[test]
    fn byte_budget_evicts() {
        let per_entry = 2 * 8 + 4 + ENTRY_OVERHEAD_BYTES;
        let mut c = RadixCache::new(RadixCacheConfig {
            max_entries: 100,
            max_bytes: per_entry * 2,
        });
        c.insert(&key(&[1]), logits(1.0));
        c.insert(&key(&[2]), logits(2.0));
        c.insert(&key(&[3]), logits(3.0));
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= per_entry * 2);
        assert!(c.get(&key(&[1])).is_none(), "oldest entry went first");
    }

    #[test]
    fn overwrite_refreshes_recency_and_bytes() {
        let mut c = cache(2);
        c.insert(&key(&[1]), logits(1.0));
        c.insert(&key(&[2]), logits(2.0));
        c.insert(&key(&[1]), logits(9.0)); // overwrite → most recent
        c.insert(&key(&[3]), logits(3.0)); // evicts 2
        assert_eq!(c.get(&key(&[1])), Some(logits(9.0)));
        assert!(c.get(&key(&[2])).is_none());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn longest_cached_prefix_walks_entries_only() {
        let mut c = cache(8);
        c.insert(&key(&[1, 2]), logits(1.0));
        c.insert(&key(&[1, 2, 3, 4]), logits(2.0));
        assert_eq!(c.longest_cached_prefix(&key(&[1, 2, 3, 4, 5])), 4);
        assert_eq!(c.longest_cached_prefix(&key(&[1, 2, 3])), 2);
        assert_eq!(c.longest_cached_prefix(&key(&[7])), 0);
    }

    #[test]
    fn hit_rate_reports() {
        let mut c = cache(8);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(&key(&[1]), logits(1.0));
        let _ = c.get(&key(&[1]));
        let _ = c.get(&key(&[2]));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = cache(8);
        c.insert(&key(&[1]), logits(1.0));
        let _ = c.get(&key(&[1]));
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(&key(&[1])).is_none());
        assert_eq!(c.node_count(), 1);
    }
}
