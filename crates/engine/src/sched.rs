//! The microbatching score scheduler.
//!
//! Many concurrent query executions push score requests at a model that
//! answers one context at a time. The scheduler sits between them
//! (Appendix A.2's server side of the client–server split) and applies
//! three classic inference-serving moves:
//!
//! 1. **Prefix cache** — a shared [`RadixCache`] answers contexts any
//!    execution has scored before, across query boundaries.
//! 2. **Single-flight** — identical contexts requested while a compute is
//!    queued or in flight join that compute instead of re-issuing it.
//! 3. **Microbatching** — pending distinct contexts are coalesced into one
//!    [`score_batch`](LanguageModel::score_batch) dispatch, bounded by a
//!    [`BatchPolicy`] (dispatch when `max_batch` contexts are pending, or
//!    when the oldest has waited `max_wait`).
//!
//! Because `score` is pure and deterministic per context, none of this
//! changes any result: every consumer receives exactly the logits a
//! direct `score` call would have produced, bit for bit.

use crate::radix::{RadixCache, RadixCacheConfig};
use lmql_lm::{LanguageModel, Logits, UsageMeter};
use lmql_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use lmql_tokenizer::{TokenId, Vocabulary};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// When the dispatcher fires a microbatch.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many distinct contexts are pending.
    pub max_batch: usize,
    /// Dispatch an undersized batch once its oldest request has waited
    /// this long.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Rendezvous for one in-flight context: requesters block on `ready`
/// until the dispatcher fills `result`.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Logits>>,
    ready: Condvar,
}

impl Slot {
    fn wait(&self) -> Logits {
        let mut r = self.result.lock().expect("slot poisoned");
        loop {
            match r.as_ref() {
                Some(logits) => return logits.clone(),
                None => r = self.ready.wait(r).expect("slot poisoned"),
            }
        }
    }

    fn fill(&self, logits: Logits) {
        *self.result.lock().expect("slot poisoned") = Some(logits);
        self.ready.notify_all();
    }
}

#[derive(Debug)]
struct Pending {
    context: Vec<TokenId>,
    slot: Arc<Slot>,
    enqueued: Instant,
}

#[derive(Debug, Default)]
struct State {
    queue: Vec<Pending>,
    /// Contexts queued or dispatched but not yet answered; late
    /// requesters for the same context join the existing slot.
    inflight: HashMap<Vec<TokenId>, Arc<Slot>>,
    shutdown: bool,
}

/// Observability hooks for a [`Scheduler`]: an optional usage meter, a
/// trace recorder (disabled by default, free when disabled) and an
/// optional metrics [`Registry`] to expose scheduler metrics under
/// `engine.*` names.
#[derive(Debug, Clone, Default)]
pub struct SchedulerObs {
    /// §6 usage counters (cache hits/misses, batch statistics).
    pub meter: Option<UsageMeter>,
    /// Structured trace recorder: cache hit/miss/single-flight-merge
    /// instants and batch-dispatch spans.
    pub tracer: Tracer,
    /// Metrics registry; when set, scheduler metrics are registered into
    /// it (see [`SchedMetrics::registered`] names). When unset the
    /// handles still exist but are reachable only via this scheduler.
    pub registry: Option<Registry>,
}

/// The scheduler's metric handles. Always allocated (they are a handful
/// of atomics); registered into a [`Registry`] only when one is given.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Distribution of microbatch sizes (contexts per dispatch).
    pub batch_size: Histogram,
    /// Distribution of queue wait per request, in microseconds.
    pub batch_wait_us: Histogram,
    /// Microbatches dispatched to the model.
    pub dispatches: Counter,
    /// Requests that joined an already queued/in-flight identical
    /// context instead of enqueueing their own (single-flight merges).
    pub singleflight_merges: Counter,
    /// Prefix-cache hits.
    pub cache_hits: Counter,
    /// Prefix-cache misses.
    pub cache_misses: Counter,
    /// Prefix-cache evictions.
    pub cache_evictions: Counter,
    /// Current prefix-cache entries.
    pub cache_entries: Gauge,
    /// Current approximate prefix-cache bytes.
    pub cache_bytes: Gauge,
}

impl SchedMetrics {
    fn standalone() -> Self {
        SchedMetrics {
            batch_size: Histogram::default(),
            batch_wait_us: Histogram::default(),
            dispatches: Counter::default(),
            singleflight_merges: Counter::default(),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            cache_evictions: Counter::default(),
            cache_entries: Gauge::default(),
            cache_bytes: Gauge::default(),
        }
    }

    /// Handles registered into `registry` under `engine.*` names.
    pub fn registered(registry: &Registry) -> Self {
        SchedMetrics {
            batch_size: registry.histogram("engine.batch.size"),
            batch_wait_us: registry.histogram("engine.batch.wait_us"),
            dispatches: registry.counter("engine.batch.dispatches"),
            singleflight_merges: registry.counter("engine.singleflight.merges"),
            cache_hits: registry.counter("engine.cache.hits"),
            cache_misses: registry.counter("engine.cache.misses"),
            cache_evictions: registry.counter("engine.cache.evictions"),
            cache_entries: registry.gauge("engine.cache.entries"),
            cache_bytes: registry.gauge("engine.cache.bytes"),
        }
    }
}

struct Shared {
    model: Box<dyn LanguageModel>,
    policy: BatchPolicy,
    meter: Option<UsageMeter>,
    tracer: Tracer,
    metrics: SchedMetrics,
    cache: Mutex<RadixCache>,
    state: Mutex<State>,
    work: Condvar,
}

/// The scheduler: owns the model, a dispatcher thread, and the shared
/// prefix cache. Shut down (draining all queued work) on drop or via
/// [`shutdown`](Scheduler::shutdown).
pub struct Scheduler {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.shared.policy)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A scheduler over `model` with the given batching policy and cache
    /// budgets.
    pub fn new(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
    ) -> Self {
        Self::build(model, policy, cache, SchedulerObs::default())
    }

    /// Like [`new`](Self::new), additionally recording prefix-cache hits
    /// and misses on `meter`.
    pub fn with_meter(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        meter: UsageMeter,
    ) -> Self {
        Self::build(
            model,
            policy,
            cache,
            SchedulerObs {
                meter: Some(meter),
                ..SchedulerObs::default()
            },
        )
    }

    /// Like [`new`](Self::new), with full observability hooks: an
    /// optional usage meter, a trace recorder, and an optional metrics
    /// registry (scheduler metrics registered under `engine.*`).
    pub fn with_obs(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        obs: SchedulerObs,
    ) -> Self {
        Self::build(model, policy, cache, obs)
    }

    fn build(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        obs: SchedulerObs,
    ) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        let metrics = match &obs.registry {
            Some(registry) => SchedMetrics::registered(registry),
            None => SchedMetrics::standalone(),
        };
        let shared = Arc::new(Shared {
            model,
            policy,
            meter: obs.meter,
            tracer: obs.tracer,
            metrics,
            cache: Mutex::new(RadixCache::new(cache)),
            state: Mutex::new(State::default()),
            work: Condvar::new(),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lmql-engine-dispatch".to_owned())
                .spawn(move || dispatch_loop(&shared))
                .expect("failed to spawn dispatcher thread")
        };
        Scheduler {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        self.shared.model.vocab()
    }

    /// Prefix-cache counters and occupancy.
    pub fn cache_stats(&self) -> crate::radix::RadixStats {
        self.shared.cache.lock().expect("cache poisoned").stats()
    }

    /// The scheduler's metric handles (batch sizes, queue waits,
    /// single-flight merges, cache counters).
    pub fn metrics(&self) -> &SchedMetrics {
        &self.shared.metrics
    }

    /// The scheduler's trace recorder (disabled unless one was installed
    /// via [`with_obs`](Self::with_obs)).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Scores one context through the cache/single-flight/batch pipeline.
    /// Blocks until the result is available.
    pub fn score(&self, context: &[TokenId]) -> Logits {
        match self.submit(context) {
            Ok(hit) => hit,
            Err(slot) => slot.wait(),
        }
    }

    /// Scores many contexts, enqueueing all of them *before* waiting on
    /// any — this is what lets one decoder step's candidate extensions
    /// coalesce into a single model dispatch (and interleave with other
    /// executions' requests).
    pub fn score_many(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        let submitted: Vec<Result<Logits, Arc<Slot>>> =
            contexts.iter().map(|ctx| self.submit(ctx)).collect();
        submitted
            .into_iter()
            .map(|s| match s {
                Ok(hit) => hit,
                Err(slot) => slot.wait(),
            })
            .collect()
    }

    /// Cache lookup, then enqueue-or-join. `Ok` is a cache hit; `Err` is
    /// the slot to wait on.
    fn submit(&self, context: &[TokenId]) -> Result<Logits, Arc<Slot>> {
        if let Some(hit) = self
            .shared
            .cache
            .lock()
            .expect("cache poisoned")
            .get(context)
        {
            self.note_cache_hit(context);
            return Ok(hit);
        }
        let mut st = self.shared.state.lock().expect("scheduler poisoned");
        if st.shutdown {
            // The dispatcher is draining or gone: score inline rather
            // than queueing work nobody will pick up.
            drop(st);
            self.note_cache_miss();
            let logits = self.shared.model.score(context);
            self.shared
                .cache
                .lock()
                .expect("cache poisoned")
                .insert(context, logits.clone());
            return Ok(logits);
        }
        if let Some(slot) = st.inflight.get(context) {
            self.note_cache_miss();
            self.shared.metrics.singleflight_merges.inc();
            self.shared.tracer.instant_with("cache", "merge", || {
                vec![("context_tokens".to_owned(), (context.len() as u64).into())]
            });
            return Err(Arc::clone(slot));
        }
        // Second-chance lookup under the state lock: the dispatcher
        // inserts results into the cache *before* clearing the inflight
        // entry, so a context absent from both maps here is either cached
        // by now or genuinely never requested. Without this re-check, a
        // requester racing the dispatcher (stale cache miss above, then an
        // inflight miss after cleanup) would re-score a finished context.
        if let Some(hit) = self
            .shared
            .cache
            .lock()
            .expect("cache poisoned")
            .get(context)
        {
            self.note_cache_hit(context);
            return Ok(hit);
        }
        self.note_cache_miss();
        let slot = Arc::new(Slot::default());
        st.inflight.insert(context.to_vec(), Arc::clone(&slot));
        st.queue.push(Pending {
            context: context.to_vec(),
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
        });
        self.shared.work.notify_one();
        Err(slot)
    }

    fn note_cache_hit(&self, context: &[TokenId]) {
        if let Some(m) = &self.shared.meter {
            m.record_cache_hit();
        }
        self.shared.metrics.cache_hits.inc();
        self.shared.tracer.instant_with("cache", "hit", || {
            vec![("context_tokens".to_owned(), (context.len() as u64).into())]
        });
    }

    fn note_cache_miss(&self) {
        if let Some(m) = &self.shared.meter {
            m.record_cache_miss();
        }
        self.shared.metrics.cache_misses.inc();
        self.shared.tracer.instant("cache", "miss");
    }

    /// Stops the dispatcher after draining all queued work. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("scheduler poisoned");
            st.shutdown = true;
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.worker.lock().expect("scheduler poisoned").take() {
            handle.join().expect("dispatcher thread panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: &Shared) {
    // Eviction totals live in the cache; the dispatcher (its only writer
    // besides the rare shutdown-drain path) mirrors them into the
    // monotonic counter by delta.
    let mut evictions_seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("scheduler poisoned");
            loop {
                if st.queue.is_empty() {
                    if st.shutdown {
                        return;
                    }
                    st = shared.work.wait(st).expect("scheduler poisoned");
                    continue;
                }
                // Fire on a full batch, on shutdown (drain), or once the
                // oldest request has waited out the policy.
                if st.shutdown || st.queue.len() >= shared.policy.max_batch {
                    break;
                }
                let waited = st.queue[0].enqueued.elapsed();
                if waited >= shared.policy.max_wait {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, shared.policy.max_wait - waited)
                    .expect("scheduler poisoned");
                st = guard;
            }
            let take = st.queue.len().min(shared.policy.max_batch);
            st.queue.drain(..take).collect::<Vec<_>>()
        };

        shared.metrics.batch_size.record(batch.len() as u64);
        shared.metrics.dispatches.inc();
        for p in &batch {
            let waited = p.enqueued.elapsed();
            shared
                .metrics
                .batch_wait_us
                .record(waited.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        let mut dispatch_span = shared.tracer.span("batch", "dispatch");
        dispatch_span.arg("contexts", batch.len() as u64);
        let contexts: Vec<&[TokenId]> = batch.iter().map(|p| p.context.as_slice()).collect();
        let results = shared.model.score_batch(&contexts);
        drop(dispatch_span);
        debug_assert_eq!(results.len(), batch.len());

        {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            for (p, logits) in batch.iter().zip(&results) {
                cache.insert(&p.context, logits.clone());
            }
            let stats = cache.stats();
            shared
                .metrics
                .cache_evictions
                .add(stats.evictions.saturating_sub(evictions_seen));
            evictions_seen = stats.evictions;
            shared.metrics.cache_entries.set(stats.entries as u64);
            shared.metrics.cache_bytes.set(stats.bytes as u64);
        }
        let mut st = shared.state.lock().expect("scheduler poisoned");
        for (p, logits) in batch.into_iter().zip(results) {
            st.inflight.remove(&p.context);
            p.slot.fill(logits);
        }
    }
}

/// A [`LanguageModel`] handle that routes every score through a shared
/// [`Scheduler`]. Hand clones of this to any number of concurrent query
/// runtimes: they transparently share the prefix cache and coalesce into
/// microbatches, with results bit-identical to calling the underlying
/// model directly.
#[derive(Debug, Clone)]
pub struct BatchedLm {
    sched: Arc<Scheduler>,
}

impl BatchedLm {
    /// A handle to `sched`.
    pub fn new(sched: Arc<Scheduler>) -> Self {
        BatchedLm { sched }
    }

    /// The scheduler behind this handle.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }
}

impl LanguageModel for BatchedLm {
    fn vocab(&self) -> &Vocabulary {
        self.sched.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        self.sched.score(context)
    }

    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.sched.score_many(contexts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::MeteredLm;
    use lmql_tokenizer::Bpe;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic model that counts score calls and can stall to
    /// force request overlap.
    #[derive(Debug)]
    struct CountingLm {
        bpe: Arc<Bpe>,
        calls: Arc<AtomicU64>,
        delay: Duration,
    }

    impl LanguageModel for CountingLm {
        fn vocab(&self) -> &Vocabulary {
            self.bpe.vocab()
        }
        fn score(&self, context: &[TokenId]) -> Logits {
            self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.delay);
            // Context-dependent but deterministic.
            let tag = context.len() as f64 + context.first().map_or(0.0, |t| t.0 as f64 / 7.0);
            Logits::constant(self.bpe.vocab().len(), tag)
        }
    }

    fn counting(delay: Duration) -> (CountingLm, Arc<AtomicU64>) {
        let calls = Arc::new(AtomicU64::new(0));
        let lm = CountingLm {
            bpe: Arc::new(Bpe::char_level("")),
            calls: Arc::clone(&calls),
            delay,
        };
        (lm, calls)
    }

    fn policy(max_batch: usize, max_wait_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn scheduler_matches_direct_scoring() {
        let (lm, _) = counting(Duration::ZERO);
        let (reference, _) = counting(Duration::ZERO);
        let sched = Scheduler::new(Box::new(lm), BatchPolicy::default(), Default::default());
        for ctx in [&[][..], &[TokenId(1)][..], &[TokenId(2), TokenId(3)][..]] {
            assert_eq!(sched.score(ctx), reference.score(ctx));
        }
    }

    #[test]
    fn repeat_contexts_hit_the_cache() {
        let (lm, calls) = counting(Duration::ZERO);
        let meter = UsageMeter::new();
        let sched = Scheduler::with_meter(
            Box::new(lm),
            BatchPolicy::default(),
            Default::default(),
            meter.clone(),
        );
        let ctx = [TokenId(5), TokenId(6)];
        let a = sched.score(&ctx);
        let b = sched.score(&ctx);
        assert_eq!(a, b);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let u = meter.snapshot();
        assert_eq!(u.cache_hits, 1);
        assert_eq!(u.cache_misses, 1);
        assert_eq!(sched.cache_stats().hits, 1);
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        // A slow model guarantees the second request arrives while the
        // first is queued or in flight.
        let (lm, calls) = counting(Duration::from_millis(40));
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            policy(1, 0),
            Default::default(),
        ));
        let ctx = vec![TokenId(9)];
        let results: Vec<Logits> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sched = Arc::clone(&sched);
                    let ctx = ctx.clone();
                    s.spawn(move || sched.score(&ctx))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "identical concurrent contexts share one model call"
        );
    }

    #[test]
    fn score_many_coalesces_into_one_dispatch() {
        let (lm, _) = counting(Duration::ZERO);
        let meter = UsageMeter::new();
        let inner = MeteredLm::new(lm, meter.clone());
        // max_batch == number of contexts: the dispatcher fires exactly
        // when all of them are queued, timing-independently.
        let sched = Scheduler::new(Box::new(inner), policy(3, 5_000), Default::default());
        let c1 = [TokenId(1)];
        let c2 = [TokenId(2)];
        let c3 = [TokenId(3)];
        let out = sched.score_many(&[&c1, &c2, &c3]);
        assert_eq!(out.len(), 3);
        let u = meter.snapshot();
        assert_eq!(u.batch_dispatches, 1, "one microbatch for all three");
        assert_eq!(u.batched_queries, 3);
        assert_eq!(u.dispatches(), 1);
    }

    #[test]
    fn score_many_with_duplicates_and_hits() {
        let (lm, calls) = counting(Duration::ZERO);
        // Undersized batches here, so a short wait window: both the
        // warm-up and the dedup'd batch dispatch on timeout.
        let sched = Scheduler::new(Box::new(lm), policy(2, 20), Default::default());
        let c1 = [TokenId(1)];
        let c2 = [TokenId(2)];
        let warm = sched.score(&c1); // now cached
        let out = sched.score_many(&[&c1, &c2, &c2]);
        assert_eq!(out[0], warm);
        assert_eq!(out[1], out[2]);
        // c1 once (warm-up) + c2 once (duplicate single-flighted).
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (lm, _) = counting(Duration::from_millis(10));
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            policy(8, 5_000),
            Default::default(),
        ));
        // Queue work from another thread, then shut down while it is
        // still pending: the result must still arrive.
        let result = std::thread::scope(|s| {
            let worker = {
                let sched = Arc::clone(&sched);
                s.spawn(move || sched.score(&[TokenId(4)]))
            };
            std::thread::sleep(Duration::from_millis(2));
            sched.shutdown();
            worker.join().unwrap()
        });
        assert_eq!(result.len(), sched.vocab().len());
    }

    #[test]
    fn batched_lm_is_a_language_model() {
        let (lm, _) = counting(Duration::ZERO);
        let (reference, _) = counting(Duration::ZERO);
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            BatchPolicy::default(),
            Default::default(),
        ));
        let handle = BatchedLm::new(sched);
        let ctx = [TokenId(2)];
        assert_eq!(handle.score(&ctx), reference.score(&ctx));
        let batch: Vec<&[TokenId]> = vec![&ctx, &ctx];
        let out = handle.score_batch(&batch);
        assert_eq!(out[0], out[1]);
    }
}
