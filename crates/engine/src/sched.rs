//! The microbatching score scheduler.
//!
//! Many concurrent query executions push score requests at a model that
//! answers one context at a time. The scheduler sits between them
//! (Appendix A.2's server side of the client–server split) and applies
//! three classic inference-serving moves:
//!
//! 1. **Prefix cache** — a shared [`RadixCache`] answers contexts any
//!    execution has scored before, across query boundaries.
//! 2. **Single-flight** — identical contexts requested while a compute is
//!    queued or in flight join that compute instead of re-issuing it.
//! 3. **Microbatching** — pending distinct contexts are coalesced into one
//!    [`score_batch`](LanguageModel::score_batch) dispatch, bounded by a
//!    [`BatchPolicy`] (dispatch when `max_batch` contexts are pending, or
//!    when the oldest has waited `max_wait`).
//!
//! Because `score` is pure and deterministic per context, none of this
//! changes any result: every consumer receives exactly the logits a
//! direct `score` call would have produced, bit for bit.
//!
//! **Fault tolerance.** The model behind the scheduler may be fallible (a
//! remote backend, a chaos wrapper). Dispatch uses the per-item
//! [`try_score_batch`](LanguageModel::try_score_batch): one context's
//! fault never fails its batch partners or the single-flight waiters
//! merged onto them. Faulted items fall back to direct per-item scoring,
//! retried with backoff under the scheduler's [`RetryPolicy`]; items
//! whose per-request deadline expires are answered with
//! [`LmError::DeadlineExceeded`]. Every slot is always filled — with
//! logits or with an error — so no waiter is ever left hanging, and the
//! dispatcher thread itself never dies to a model fault.

use crate::radix::{RadixCache, RadixCacheConfig};
use lmql_lm::{
    call_with_retry, context_token, CancelToken, FaultKind, LanguageModel, LmError, LmResult,
    Logits, RetryMetrics, RetryPolicy, UsageMeter,
};
use lmql_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use lmql_tokenizer::{TokenId, Vocabulary};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// When the dispatcher fires a microbatch, and how it picks the batch
/// when more work is queued than fits (continuous batching).
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many distinct contexts are pending.
    pub max_batch: usize,
    /// Dispatch an undersized batch once its oldest request has waited
    /// this long.
    pub max_wait: Duration,
    /// Starvation deadline: a queued item that has waited this long is
    /// admitted into the next dispatch ahead of everything else, so a
    /// continuously refilled queue can never delay an old item
    /// indefinitely. Under this deadline, an oversubscribed batch is
    /// filled stream-fairly (round-robin across submit calls) instead of
    /// FIFO — one wide beam step takes its fair share of the batch, not
    /// all of it.
    pub max_queue_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
            max_queue_wait: Duration::from_millis(20),
        }
    }
}

/// Rendezvous for one in-flight context: requesters block on `ready`
/// until the dispatcher fills `result` — with logits, or with the error
/// that ended the request (so waiters never hang on a faulted batch).
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<LmResult<Logits>>>,
    ready: Condvar,
    /// Set when a second requester single-flights onto this slot. A
    /// shared slot is dispatched even if its original requester
    /// cancelled — some other waiter still wants the logits.
    shared: std::sync::atomic::AtomicBool,
}

impl Slot {
    fn wait(&self) -> LmResult<Logits> {
        let mut r = self.result.lock().expect("slot poisoned");
        loop {
            match r.as_ref() {
                Some(result) => return result.clone(),
                None => r = self.ready.wait(r).expect("slot poisoned"),
            }
        }
    }

    /// Like [`wait`](Self::wait), but gives up with
    /// [`LmError::Cancelled`] once `cancel` fires — the slot itself stays
    /// live for any single-flight partners and is retired by the
    /// dispatcher either way.
    fn wait_cancellable(&self, cancel: &CancelToken) -> LmResult<Logits> {
        let mut r = self.result.lock().expect("slot poisoned");
        loop {
            match r.as_ref() {
                Some(result) => return result.clone(),
                None => {
                    if cancel.is_cancelled() {
                        return Err(LmError::Cancelled);
                    }
                    let (guard, _) = self
                        .ready
                        .wait_timeout(r, Duration::from_millis(5))
                        .expect("slot poisoned");
                    r = guard;
                }
            }
        }
    }

    fn fill(&self, result: LmResult<Logits>) {
        *self.result.lock().expect("slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn mark_shared(&self) {
        self.shared
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn is_shared(&self) -> bool {
        self.shared.load(std::sync::atomic::Ordering::Acquire)
    }
}

#[derive(Debug)]
struct Pending {
    /// Shared with the inflight map's key: one allocation per submitted
    /// context instead of two, and removal at settle time borrows it
    /// back as a slice.
    context: Arc<[TokenId]>,
    slot: Arc<Slot>,
    enqueued: Instant,
    /// When the request's retry budget expires (from the policy's
    /// deadline); `None` means unbounded.
    deadline: Option<Instant>,
    /// The requester's cancellation token; a cancelled item is skipped
    /// at dispatch (answered with [`LmError::Cancelled`]) unless its
    /// slot picked up single-flight partners.
    cancel: Option<CancelToken>,
    /// Fairness unit for continuous batching: every scoring call
    /// (`try_score`, one `try_score_many`, …) gets its own stream id, so
    /// an oversubscribed batch is dealt round-robin across concurrent
    /// calls rather than FIFO across contexts.
    stream: u64,
}

#[derive(Debug, Default)]
struct State {
    queue: Vec<Pending>,
    /// Contexts queued or dispatched but not yet answered; late
    /// requesters for the same context join the existing slot. Keys are
    /// shared with the queued [`Pending::context`] (and looked up by
    /// `&[TokenId]` via the std `Borrow<[T]>` impl for `Arc<[T]>`).
    inflight: HashMap<Arc<[TokenId]>, Arc<Slot>>,
    shutdown: bool,
}

/// Observability hooks for a [`Scheduler`]: an optional usage meter, a
/// trace recorder (disabled by default, free when disabled) and an
/// optional metrics [`Registry`] to expose scheduler metrics under
/// `engine.*` names.
#[derive(Debug, Clone, Default)]
pub struct SchedulerObs {
    /// §6 usage counters (cache hits/misses, batch statistics).
    pub meter: Option<UsageMeter>,
    /// Structured trace recorder: cache hit/miss/single-flight-merge
    /// instants and batch-dispatch spans.
    pub tracer: Tracer,
    /// Metrics registry; when set, scheduler metrics are registered into
    /// it (see [`SchedMetrics::registered`] names). When unset the
    /// handles still exist but are reachable only via this scheduler.
    pub registry: Option<Registry>,
}

/// The scheduler's metric handles. Always allocated (they are a handful
/// of atomics); registered into a [`Registry`] only when one is given.
#[derive(Debug, Clone)]
pub struct SchedMetrics {
    /// Distribution of microbatch sizes (contexts per dispatch).
    pub batch_size: Histogram,
    /// Distribution of queue wait per request, in microseconds.
    pub batch_wait_us: Histogram,
    /// Microbatches dispatched to the model.
    pub dispatches: Counter,
    /// Requests that joined an already queued/in-flight identical
    /// context instead of enqueueing their own (single-flight merges).
    pub singleflight_merges: Counter,
    /// Prefix-cache hits.
    pub cache_hits: Counter,
    /// Prefix-cache misses.
    pub cache_misses: Counter,
    /// Prefix-cache evictions.
    pub cache_evictions: Counter,
    /// Current prefix-cache entries.
    pub cache_entries: Gauge,
    /// Current approximate prefix-cache bytes.
    pub cache_bytes: Gauge,
    /// Requests abandoned by their consumer (a dropped stream handle, a
    /// disconnected client) and released at dispatch without reaching
    /// the model.
    pub cancelled: Counter,
    /// Queued items admitted by the starvation deadline
    /// ([`BatchPolicy::max_queue_wait`]) while the queue was
    /// oversubscribed — each one is a request that plain FIFO/fair fill
    /// might have delayed past its deadline.
    pub starvation_rescues: Counter,
    /// Retry/fault/deadline counters for dispatch-time recovery,
    /// registered under `lm.*` names (`lm.retries`,
    /// `lm.deadline_exceeded`, `lm.faults`, `lm.breaker_rejections`).
    pub retry: RetryMetrics,
}

impl SchedMetrics {
    fn standalone() -> Self {
        SchedMetrics {
            batch_size: Histogram::default(),
            batch_wait_us: Histogram::default(),
            dispatches: Counter::default(),
            singleflight_merges: Counter::default(),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            cache_evictions: Counter::default(),
            cache_entries: Gauge::default(),
            cache_bytes: Gauge::default(),
            cancelled: Counter::default(),
            starvation_rescues: Counter::default(),
            retry: RetryMetrics::default(),
        }
    }

    /// Handles registered into `registry` under `engine.*` names (retry
    /// counters under `lm.*`, next to the usage meter's model counters).
    pub fn registered(registry: &Registry) -> Self {
        SchedMetrics {
            batch_size: registry.histogram("engine.batch.size"),
            batch_wait_us: registry.histogram("engine.batch.wait_us"),
            dispatches: registry.counter("engine.batch.dispatches"),
            singleflight_merges: registry.counter("engine.singleflight.merges"),
            cache_hits: registry.counter("engine.cache.hits"),
            cache_misses: registry.counter("engine.cache.misses"),
            cache_evictions: registry.counter("engine.cache.evictions"),
            cache_entries: registry.gauge("engine.cache.entries"),
            cache_bytes: registry.gauge("engine.cache.bytes"),
            cancelled: registry.counter("engine.cancelled"),
            starvation_rescues: registry.counter("engine.starvation.rescues"),
            retry: RetryMetrics {
                retries: registry.counter("lm.retries"),
                deadline_exceeded: registry.counter("lm.deadline_exceeded"),
                faults: registry.counter("lm.faults"),
                breaker_rejections: registry.counter("lm.breaker_rejections"),
            },
        }
    }
}

struct Shared {
    model: Box<dyn LanguageModel>,
    policy: BatchPolicy,
    retry: RetryPolicy,
    meter: Option<UsageMeter>,
    tracer: Tracer,
    metrics: SchedMetrics,
    cache: Mutex<RadixCache>,
    state: Mutex<State>,
    work: Condvar,
    /// Stream-id allocator for continuous-batching fairness; every
    /// scoring call draws one id for all the contexts it submits.
    next_stream: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn stream_id(&self) -> u64 {
        self.next_stream
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
    /// A model reply shorter than the vocabulary is a truncated
    /// (transient, retryable) response, never valid data.
    fn validated(&self, logits: Logits) -> LmResult<Logits> {
        let want = self.model.vocab().len();
        if logits.len() == want {
            Ok(logits)
        } else {
            Err(LmError::transient(
                FaultKind::Truncated,
                format!("reply has {} logits, vocabulary has {want}", logits.len()),
            ))
        }
    }

    /// Direct per-item scoring with retry/backoff — the fallback when a
    /// batch (or one item of it) faults, and the inline path during
    /// shutdown drain. Honours the item's absolute deadline on top of
    /// the policy's per-request budget.
    fn score_direct(&self, context: &[TokenId], deadline: Option<Instant>) -> LmResult<Logits> {
        let mut policy = self.retry;
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.metrics.retry.deadline_exceeded.inc();
                return Err(LmError::DeadlineExceeded {
                    deadline: self.retry.deadline.unwrap_or_default(),
                });
            }
            policy.deadline = Some(match policy.deadline {
                Some(budget) => budget.min(remaining),
                None => remaining,
            });
        }
        call_with_retry(
            &policy,
            &self.metrics.retry,
            None,
            context_token(context),
            || {
                self.model
                    .try_score(context)
                    .and_then(|l| self.validated(l))
            },
        )
    }
}

/// The scheduler: owns the model, a dispatcher thread, and the shared
/// prefix cache. Shut down (draining all queued work) on drop or via
/// [`shutdown`](Scheduler::shutdown).
pub struct Scheduler {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.shared.policy)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A scheduler over `model` with the given batching policy and cache
    /// budgets.
    pub fn new(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
    ) -> Self {
        Self::build(
            model,
            policy,
            cache,
            RetryPolicy::default(),
            SchedulerObs::default(),
        )
    }

    /// Like [`new`](Self::new), additionally recording prefix-cache hits
    /// and misses on `meter`.
    pub fn with_meter(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        meter: UsageMeter,
    ) -> Self {
        Self::build(
            model,
            policy,
            cache,
            RetryPolicy::default(),
            SchedulerObs {
                meter: Some(meter),
                ..SchedulerObs::default()
            },
        )
    }

    /// Like [`new`](Self::new), with full observability hooks: an
    /// optional usage meter, a trace recorder, and an optional metrics
    /// registry (scheduler metrics registered under `engine.*`).
    pub fn with_obs(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        obs: SchedulerObs,
    ) -> Self {
        Self::with_retry(model, policy, cache, RetryPolicy::default(), obs)
    }

    /// The full constructor: like [`with_obs`](Self::with_obs), with an
    /// explicit [`RetryPolicy`] governing dispatch-time fault recovery
    /// (per-item retries with backoff, per-request deadlines). The other
    /// constructors use [`RetryPolicy::default`], which is free for
    /// infallible models — retries only ever run after a fault.
    pub fn with_retry(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        retry: RetryPolicy,
        obs: SchedulerObs,
    ) -> Self {
        Self::build(model, policy, cache, retry, obs)
    }

    fn build(
        model: Box<dyn LanguageModel>,
        policy: BatchPolicy,
        cache: RadixCacheConfig,
        retry: RetryPolicy,
        obs: SchedulerObs,
    ) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        let metrics = match &obs.registry {
            Some(registry) => SchedMetrics::registered(registry),
            None => SchedMetrics::standalone(),
        };
        let shared = Arc::new(Shared {
            model,
            policy,
            retry,
            meter: obs.meter,
            tracer: obs.tracer,
            metrics,
            cache: Mutex::new(RadixCache::new(cache)),
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            next_stream: std::sync::atomic::AtomicU64::new(1),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lmql-engine-dispatch".to_owned())
                .spawn(move || dispatch_loop(&shared))
                .expect("failed to spawn dispatcher thread")
        };
        Scheduler {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        self.shared.model.vocab()
    }

    /// Prefix-cache counters and occupancy.
    pub fn cache_stats(&self) -> crate::radix::RadixStats {
        self.shared.cache.lock().expect("cache poisoned").stats()
    }

    /// The scheduler's metric handles (batch sizes, queue waits,
    /// single-flight merges, cache counters).
    pub fn metrics(&self) -> &SchedMetrics {
        &self.shared.metrics
    }

    /// The scheduler's trace recorder (disabled unless one was installed
    /// via [`with_obs`](Self::with_obs)).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Scores one context through the cache/single-flight/batch pipeline.
    /// Blocks until the result is available.
    ///
    /// # Panics
    ///
    /// Panics if the model faults past the scheduler's retry budget; use
    /// [`try_score`](Self::try_score) to handle the error instead.
    pub fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context)
            .unwrap_or_else(|e| panic!("scheduler: model call failed: {e}"))
    }

    /// Fallible scoring: transient model faults are retried per the
    /// scheduler's [`RetryPolicy`]; what remains (exhausted budgets,
    /// fatal errors, expired deadlines) surfaces as an [`LmError`].
    pub fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        match self.submit(context, None, self.shared.stream_id()) {
            Ok(result) => result,
            Err(slot) => slot.wait(),
        }
    }

    /// Cancellable fallible scoring: returns [`LmError::Cancelled`] as
    /// soon as `cancel` fires, without waiting for the dispatcher. The
    /// queued work is released at dispatch time (never reaching the
    /// model) unless a single-flight partner still wants it.
    pub fn try_score_cancelled_by(
        &self,
        context: &[TokenId],
        cancel: &CancelToken,
    ) -> LmResult<Logits> {
        if cancel.is_cancelled() {
            return Err(LmError::Cancelled);
        }
        match self.submit(context, Some(cancel), self.shared.stream_id()) {
            Ok(result) => result,
            Err(slot) => slot.wait_cancellable(cancel),
        }
    }

    /// Scores many contexts, enqueueing all of them *before* waiting on
    /// any — this is what lets one decoder step's candidate extensions
    /// coalesce into a single model dispatch (and interleave with other
    /// executions' requests).
    ///
    /// # Panics
    ///
    /// Panics if any context's model call faults past the retry budget;
    /// use [`try_score_many`](Self::try_score_many) to handle errors.
    pub fn score_many(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.try_score_many(contexts)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("scheduler: model call failed: {e}")))
            .collect()
    }

    /// Fallible many-context scoring with per-item results: one faulted
    /// context never fails the others.
    pub fn try_score_many(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        // One stream id for the whole call: under contention this call's
        // contexts collectively take one fair share of each batch.
        let stream = self.shared.stream_id();
        let submitted: Vec<Result<LmResult<Logits>, Arc<Slot>>> = contexts
            .iter()
            .map(|ctx| self.submit(ctx, None, stream))
            .collect();
        submitted
            .into_iter()
            .map(|s| match s {
                Ok(result) => result,
                Err(slot) => slot.wait(),
            })
            .collect()
    }

    /// Cancellable [`try_score_many`](Self::try_score_many): items still
    /// enqueue before any wait, but once `cancel` fires every remaining
    /// wait resolves to [`LmError::Cancelled`].
    pub fn try_score_many_cancelled_by(
        &self,
        contexts: &[&[TokenId]],
        cancel: &CancelToken,
    ) -> Vec<LmResult<Logits>> {
        if cancel.is_cancelled() {
            return contexts.iter().map(|_| Err(LmError::Cancelled)).collect();
        }
        let stream = self.shared.stream_id();
        let submitted: Vec<Result<LmResult<Logits>, Arc<Slot>>> = contexts
            .iter()
            .map(|ctx| self.submit(ctx, Some(cancel), stream))
            .collect();
        submitted
            .into_iter()
            .map(|s| match s {
                Ok(result) => result,
                Err(slot) => slot.wait_cancellable(cancel),
            })
            .collect()
    }

    /// Cache lookup, then enqueue-or-join. `Ok` is an immediate result (a
    /// cache hit, or an inline score during shutdown drain); `Err` is the
    /// slot to wait on.
    fn submit(
        &self,
        context: &[TokenId],
        cancel: Option<&CancelToken>,
        stream: u64,
    ) -> Result<LmResult<Logits>, Arc<Slot>> {
        if let Some(hit) = self
            .shared
            .cache
            .lock()
            .expect("cache poisoned")
            .get(context)
        {
            self.note_cache_hit(context);
            return Ok(Ok(hit));
        }
        let mut st = self.shared.state.lock().expect("scheduler poisoned");
        if st.shutdown {
            // The dispatcher is draining or gone: score inline rather
            // than queueing work nobody will pick up.
            drop(st);
            self.note_cache_miss();
            let result = self.shared.score_direct(context, None);
            if let Ok(logits) = &result {
                self.shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(context, logits.clone());
            }
            return Ok(result);
        }
        if let Some(slot) = st.inflight.get(context) {
            self.note_cache_miss();
            self.shared.metrics.singleflight_merges.inc();
            self.shared.tracer.instant_with("cache", "merge", || {
                vec![("context_tokens".to_owned(), (context.len() as u64).into())]
            });
            // A merged slot must be dispatched even if its original
            // requester cancels — this waiter still wants the logits.
            slot.mark_shared();
            return Err(Arc::clone(slot));
        }
        // Second-chance lookup under the state lock: the dispatcher
        // inserts results into the cache *before* clearing the inflight
        // entry, so a context absent from both maps here is either cached
        // by now or genuinely never requested. Without this re-check, a
        // requester racing the dispatcher (stale cache miss above, then an
        // inflight miss after cleanup) would re-score a finished context.
        if let Some(hit) = self
            .shared
            .cache
            .lock()
            .expect("cache poisoned")
            .get(context)
        {
            self.note_cache_hit(context);
            return Ok(Ok(hit));
        }
        self.note_cache_miss();
        let slot = Arc::new(Slot::default());
        let now = Instant::now();
        // One shared allocation backs both the inflight key and the
        // queued payload.
        let context: Arc<[TokenId]> = Arc::from(context);
        st.inflight.insert(Arc::clone(&context), Arc::clone(&slot));
        st.queue.push(Pending {
            context,
            slot: Arc::clone(&slot),
            enqueued: now,
            deadline: self.shared.retry.deadline.map(|d| now + d),
            cancel: cancel.cloned(),
            stream,
        });
        self.shared.work.notify_one();
        Err(slot)
    }

    fn note_cache_hit(&self, context: &[TokenId]) {
        if let Some(m) = &self.shared.meter {
            m.record_cache_hit();
        }
        self.shared.metrics.cache_hits.inc();
        self.shared.tracer.instant_with("cache", "hit", || {
            vec![("context_tokens".to_owned(), (context.len() as u64).into())]
        });
    }

    fn note_cache_miss(&self) {
        if let Some(m) = &self.shared.meter {
            m.record_cache_miss();
        }
        self.shared.metrics.cache_misses.inc();
        self.shared.tracer.instant("cache", "miss");
    }

    /// Stops the dispatcher after draining all queued work. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("scheduler poisoned");
            st.shutdown = true;
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.worker.lock().expect("scheduler poisoned").take() {
            handle.join().expect("dispatcher thread panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Continuous-batching admission: removes up to `max_batch` items from
/// `queue` (preserving the order of what remains) and returns them plus
/// the number admitted by the starvation deadline.
///
/// When everything fits, the whole queue is taken — identical to the old
/// microbatch drain. When the queue is oversubscribed, items are split
/// into two priority classes and each class is dealt **stream-fairly**:
///
/// 1. **Overdue first** — items that have already waited
///    `max_queue_wait` outrank everything fresh. This is the per-item
///    starvation deadline: a queue continuously refilled by wide
///    requests can no longer delay an old item indefinitely, because
///    fresh arrivals can never displace an overdue one.
/// 2. **Stream-fair within a class** — capacity is dealt round-robin
///    across distinct streams (one scoring call = one stream), FIFO
///    within each stream, streams visited in order of their oldest
///    pending item. A width-N beam step takes at most its fair share of
///    a contended batch — even when the whole queue is overdue — and a
///    one-context argmax request rides in the same dispatch instead of
///    queueing behind the whole beam.
///
/// Selection never changes any result — `score` is pure per context —
/// only who waits. The admitted batch keeps original queue order, so the
/// wait histogram and dispatch spans read the same way as before.
fn admit_batch(
    queue: &mut Vec<Pending>,
    max_batch: usize,
    max_queue_wait: Duration,
    now: Instant,
) -> (Vec<Pending>, u64) {
    if queue.len() <= max_batch {
        return (std::mem::take(queue), 0);
    }
    let mut picked = vec![false; queue.len()];
    let mut left = max_batch;
    let mut rescued = 0u64;
    for overdue_class in [true, false] {
        if left == 0 {
            break;
        }
        // Per-stream FIFO lists of this class's indices, in order of
        // each stream's first (oldest) pending item — push order is age
        // order, so first-seen is oldest.
        let mut streams: Vec<(u64, std::collections::VecDeque<usize>)> = Vec::new();
        for (i, p) in queue.iter().enumerate() {
            if picked[i] {
                continue;
            }
            let overdue = now.duration_since(p.enqueued) >= max_queue_wait;
            if overdue != overdue_class {
                continue;
            }
            match streams.iter_mut().find(|(s, _)| *s == p.stream) {
                Some((_, idxs)) => idxs.push_back(i),
                None => streams.push((p.stream, std::collections::VecDeque::from([i]))),
            }
        }
        'fill: loop {
            let mut progressed = false;
            for (_, idxs) in &mut streams {
                if let Some(i) = idxs.pop_front() {
                    picked[i] = true;
                    progressed = true;
                    left -= 1;
                    if overdue_class {
                        rescued += 1;
                    }
                    if left == 0 {
                        break 'fill;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }
    let taken = max_batch - left;
    let mut batch = Vec::with_capacity(taken);
    let mut keep = Vec::with_capacity(queue.len() - taken);
    for (i, p) in std::mem::take(queue).into_iter().enumerate() {
        if picked[i] {
            batch.push(p);
        } else {
            keep.push(p);
        }
    }
    *queue = keep;
    (batch, rescued)
}

fn dispatch_loop(shared: &Shared) {
    // Eviction totals live in the cache; the dispatcher (its only writer
    // besides the rare shutdown-drain path) mirrors them into the
    // monotonic counter by delta.
    let mut evictions_seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("scheduler poisoned");
            loop {
                if st.queue.is_empty() {
                    if st.shutdown {
                        return;
                    }
                    st = shared.work.wait(st).expect("scheduler poisoned");
                    continue;
                }
                // Fire on a full batch, on shutdown (drain), or once the
                // oldest request has waited out the policy.
                if st.shutdown || st.queue.len() >= shared.policy.max_batch {
                    break;
                }
                let waited = st.queue[0].enqueued.elapsed();
                if waited >= shared.policy.max_wait {
                    break;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, shared.policy.max_wait - waited)
                    .expect("scheduler poisoned");
                st = guard;
            }
            let (batch, rescued) = admit_batch(
                &mut st.queue,
                shared.policy.max_batch,
                shared.policy.max_queue_wait,
                Instant::now(),
            );
            if rescued > 0 {
                shared.metrics.starvation_rescues.add(rescued);
            }
            batch
        };

        // Requests abandoned by their consumer are released here — their
        // slot leaves the inflight map without ever reaching the model —
        // unless a single-flight partner joined the slot, in which case
        // the context is dispatched for the partner's sake.
        let (batch, abandoned): (Vec<Pending>, Vec<Pending>) = batch.into_iter().partition(|p| {
            p.slot.is_shared() || p.cancel.as_ref().is_none_or(|c| !c.is_cancelled())
        });
        if !abandoned.is_empty() {
            let mut st = shared.state.lock().expect("scheduler poisoned");
            for p in abandoned {
                shared.metrics.cancelled.inc();
                shared.tracer.instant_with("sched", "cancelled", || {
                    vec![("context_tokens".to_owned(), (p.context.len() as u64).into())]
                });
                st.inflight.remove(&p.context);
                p.slot.fill(Err(LmError::Cancelled));
            }
        }

        // Requests whose deadline already passed are answered (with the
        // deadline error) instead of dispatched: late logits nobody can
        // use would only delay the healthy remainder of the batch.
        let now = Instant::now();
        let (batch, expired): (Vec<Pending>, Vec<Pending>) = batch
            .into_iter()
            .partition(|p| p.deadline.is_none_or(|d| d > now));
        if !expired.is_empty() {
            let mut st = shared.state.lock().expect("scheduler poisoned");
            for p in expired {
                shared.metrics.retry.deadline_exceeded.inc();
                st.inflight.remove(&p.context);
                p.slot.fill(Err(LmError::DeadlineExceeded {
                    deadline: shared.retry.deadline.unwrap_or_default(),
                }));
            }
        }
        if batch.is_empty() {
            continue;
        }

        shared.metrics.batch_size.record(batch.len() as u64);
        shared.metrics.dispatches.inc();
        for p in &batch {
            let waited = p.enqueued.elapsed();
            shared
                .metrics
                .batch_wait_us
                .record(waited.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        let mut dispatch_span = shared.tracer.span("batch", "dispatch");
        dispatch_span.arg("contexts", batch.len() as u64);
        let contexts: Vec<&[TokenId]> = batch.iter().map(|p| &*p.context).collect();
        let results = shared.model.try_score_batch(&contexts);
        drop(dispatch_span);
        debug_assert_eq!(results.len(), batch.len());

        // Per-item recovery: a faulted item falls back to direct scoring
        // with retry/backoff, *without* failing its batch partners — the
        // healthy items' logits (and their merged single-flight waiters)
        // are already settled. Whatever still fails becomes that item's
        // error; every slot is filled either way.
        let results: Vec<LmResult<Logits>> = results
            .into_iter()
            .zip(&batch)
            .map(|(r, p)| match r.and_then(|l| shared.validated(l)) {
                Ok(logits) => Ok(logits),
                Err(e) if e.is_transient() => {
                    shared.metrics.retry.faults.inc();
                    shared
                        .tracer
                        .instant_with("fault", "batch_item_fallback", || {
                            vec![("context_tokens".to_owned(), (p.context.len() as u64).into())]
                        });
                    shared.score_direct(&p.context, p.deadline)
                }
                Err(e) => Err(e),
            })
            .collect();

        {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            for (p, result) in batch.iter().zip(&results) {
                if let Ok(logits) = result {
                    cache.insert(&p.context, logits.clone());
                }
            }
            let stats = cache.stats();
            shared
                .metrics
                .cache_evictions
                .add(stats.evictions.saturating_sub(evictions_seen));
            evictions_seen = stats.evictions;
            shared.metrics.cache_entries.set(stats.entries as u64);
            shared.metrics.cache_bytes.set(stats.bytes as u64);
        }
        let mut st = shared.state.lock().expect("scheduler poisoned");
        for (p, result) in batch.into_iter().zip(results) {
            st.inflight.remove(&p.context);
            p.slot.fill(result);
        }
    }
}

/// A [`LanguageModel`] handle that routes every score through a shared
/// [`Scheduler`]. Hand clones of this to any number of concurrent query
/// runtimes: they transparently share the prefix cache and coalesce into
/// microbatches, with results bit-identical to calling the underlying
/// model directly.
#[derive(Debug, Clone)]
pub struct BatchedLm {
    sched: Arc<Scheduler>,
    cancel: Option<CancelToken>,
}

impl BatchedLm {
    /// A handle to `sched`.
    pub fn new(sched: Arc<Scheduler>) -> Self {
        BatchedLm {
            sched,
            cancel: None,
        }
    }

    /// A cancellable handle: once `cancel` fires, every fallible score
    /// through this handle resolves promptly to [`LmError::Cancelled`]
    /// and its queued work is released at dispatch — the scheduler slot
    /// is freed for other queries instead of burning a model call.
    pub fn with_cancel(sched: Arc<Scheduler>, cancel: CancelToken) -> Self {
        BatchedLm {
            sched,
            cancel: Some(cancel),
        }
    }

    /// The scheduler behind this handle.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }
}

impl LanguageModel for BatchedLm {
    fn vocab(&self) -> &Vocabulary {
        self.sched.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        self.sched.score(context)
    }

    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.sched.score_many(contexts)
    }

    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        match &self.cancel {
            Some(token) => self.sched.try_score_cancelled_by(context, token),
            None => self.sched.try_score(context),
        }
    }

    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        match &self.cancel {
            Some(token) => self.sched.try_score_many_cancelled_by(contexts, token),
            None => self.sched.try_score_many(contexts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::MeteredLm;
    use lmql_tokenizer::Bpe;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic model that counts score calls and can stall to
    /// force request overlap.
    #[derive(Debug)]
    struct CountingLm {
        bpe: Arc<Bpe>,
        calls: Arc<AtomicU64>,
        delay: Duration,
    }

    impl LanguageModel for CountingLm {
        fn vocab(&self) -> &Vocabulary {
            self.bpe.vocab()
        }
        fn score(&self, context: &[TokenId]) -> Logits {
            self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.delay);
            // Context-dependent but deterministic.
            let tag = context.len() as f64 + context.first().map_or(0.0, |t| t.0 as f64 / 7.0);
            Logits::constant(self.bpe.vocab().len(), tag)
        }
    }

    fn counting(delay: Duration) -> (CountingLm, Arc<AtomicU64>) {
        let calls = Arc::new(AtomicU64::new(0));
        let lm = CountingLm {
            bpe: Arc::new(Bpe::char_level("")),
            calls: Arc::clone(&calls),
            delay,
        };
        (lm, calls)
    }

    fn policy(max_batch: usize, max_wait_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            ..BatchPolicy::default()
        }
    }

    #[test]
    fn scheduler_matches_direct_scoring() {
        let (lm, _) = counting(Duration::ZERO);
        let (reference, _) = counting(Duration::ZERO);
        let sched = Scheduler::new(Box::new(lm), BatchPolicy::default(), Default::default());
        for ctx in [&[][..], &[TokenId(1)][..], &[TokenId(2), TokenId(3)][..]] {
            assert_eq!(sched.score(ctx), reference.score(ctx));
        }
    }

    #[test]
    fn repeat_contexts_hit_the_cache() {
        let (lm, calls) = counting(Duration::ZERO);
        let meter = UsageMeter::new();
        let sched = Scheduler::with_meter(
            Box::new(lm),
            BatchPolicy::default(),
            Default::default(),
            meter.clone(),
        );
        let ctx = [TokenId(5), TokenId(6)];
        let a = sched.score(&ctx);
        let b = sched.score(&ctx);
        assert_eq!(a, b);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let u = meter.snapshot();
        assert_eq!(u.cache_hits, 1);
        assert_eq!(u.cache_misses, 1);
        assert_eq!(sched.cache_stats().hits, 1);
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        // A slow model guarantees the second request arrives while the
        // first is queued or in flight.
        let (lm, calls) = counting(Duration::from_millis(40));
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            policy(1, 0),
            Default::default(),
        ));
        let ctx = vec![TokenId(9)];
        let results: Vec<Logits> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sched = Arc::clone(&sched);
                    let ctx = ctx.clone();
                    s.spawn(move || sched.score(&ctx))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "identical concurrent contexts share one model call"
        );
    }

    #[test]
    fn score_many_coalesces_into_one_dispatch() {
        let (lm, _) = counting(Duration::ZERO);
        let meter = UsageMeter::new();
        let inner = MeteredLm::new(lm, meter.clone());
        // max_batch == number of contexts: the dispatcher fires exactly
        // when all of them are queued, timing-independently.
        let sched = Scheduler::new(Box::new(inner), policy(3, 5_000), Default::default());
        let c1 = [TokenId(1)];
        let c2 = [TokenId(2)];
        let c3 = [TokenId(3)];
        let out = sched.score_many(&[&c1, &c2, &c3]);
        assert_eq!(out.len(), 3);
        let u = meter.snapshot();
        assert_eq!(u.batch_dispatches, 1, "one microbatch for all three");
        assert_eq!(u.batched_queries, 3);
        assert_eq!(u.dispatches(), 1);
    }

    #[test]
    fn score_many_with_duplicates_and_hits() {
        let (lm, calls) = counting(Duration::ZERO);
        // Undersized batches here, so a short wait window: both the
        // warm-up and the dedup'd batch dispatch on timeout.
        let sched = Scheduler::new(Box::new(lm), policy(2, 20), Default::default());
        let c1 = [TokenId(1)];
        let c2 = [TokenId(2)];
        let warm = sched.score(&c1); // now cached
        let out = sched.score_many(&[&c1, &c2, &c2]);
        assert_eq!(out[0], warm);
        assert_eq!(out[1], out[2]);
        // c1 once (warm-up) + c2 once (duplicate single-flighted).
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (lm, _) = counting(Duration::from_millis(10));
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            policy(8, 5_000),
            Default::default(),
        ));
        // Queue work from another thread, then shut down while it is
        // still pending: the result must still arrive.
        let result = std::thread::scope(|s| {
            let worker = {
                let sched = Arc::clone(&sched);
                s.spawn(move || sched.score(&[TokenId(4)]))
            };
            std::thread::sleep(Duration::from_millis(2));
            sched.shutdown();
            worker.join().unwrap()
        });
        assert_eq!(result.len(), sched.vocab().len());
    }

    /// First token of a context selects its fault behaviour. `FLAKY`
    /// contexts fault in batch dispatch but succeed on the direct
    /// (per-item fallback) path; `DOOMED` contexts fault transiently on
    /// every path; `FATAL` contexts fail fatally everywhere.
    const FLAKY: TokenId = TokenId(100);
    const DOOMED: TokenId = TokenId(101);
    const FATAL: TokenId = TokenId(102);

    #[derive(Debug)]
    struct FaultyLm {
        bpe: Arc<Bpe>,
        batch_calls: Arc<AtomicU64>,
        direct_calls: Arc<AtomicU64>,
    }

    impl FaultyLm {
        fn new() -> Self {
            FaultyLm {
                bpe: Arc::new(Bpe::char_level("")),
                batch_calls: Arc::new(AtomicU64::new(0)),
                direct_calls: Arc::new(AtomicU64::new(0)),
            }
        }

        fn logits_for(&self, context: &[TokenId]) -> Logits {
            let tag = context.len() as f64 + context.first().map_or(0.0, |t| t.0 as f64 / 7.0);
            Logits::constant(self.bpe.vocab().len(), tag)
        }
    }

    impl LanguageModel for FaultyLm {
        fn vocab(&self) -> &Vocabulary {
            self.bpe.vocab()
        }
        fn score(&self, context: &[TokenId]) -> Logits {
            self.try_score(context).expect("faulty model call failed")
        }
        fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
            self.direct_calls.fetch_add(1, Ordering::SeqCst);
            match context.first() {
                Some(&DOOMED) => Err(LmError::transient(FaultKind::Injected, "doomed")),
                Some(&FATAL) => Err(LmError::fatal("unservable context")),
                _ => Ok(self.logits_for(context)),
            }
        }
        fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
            self.batch_calls.fetch_add(1, Ordering::SeqCst);
            contexts
                .iter()
                .map(|c| match c.first() {
                    Some(&FLAKY) | Some(&DOOMED) => {
                        Err(LmError::transient(FaultKind::Injected, "batch fault"))
                    }
                    Some(&FATAL) => Err(LmError::fatal("unservable context")),
                    _ => Ok(self.logits_for(c)),
                })
                .collect()
        }
    }

    /// A retry policy that retries fast and never sleeps long.
    fn fast_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            jitter: 0.0,
            seed: 0,
            deadline: None,
        }
    }

    /// `max_batch` sized to the test's request count so dispatch fires
    /// the moment everything is queued, timing-independently.
    fn faulty_sched(
        max_retries: u32,
        max_batch: usize,
    ) -> (Scheduler, Arc<AtomicU64>, Arc<AtomicU64>) {
        let lm = FaultyLm::new();
        let batch_calls = Arc::clone(&lm.batch_calls);
        let direct_calls = Arc::clone(&lm.direct_calls);
        let sched = Scheduler::with_retry(
            Box::new(lm),
            policy(max_batch, 10),
            Default::default(),
            fast_retry(max_retries),
            SchedulerObs::default(),
        );
        (sched, batch_calls, direct_calls)
    }

    /// Regression: a faulted batch item used to fail (or hang) every
    /// single-flight waiter merged into the same dispatch. With per-item
    /// results, healthy partners complete with exactly the logits a
    /// direct call would have produced, and the faulted item recovers
    /// through the direct-scoring fallback.
    #[test]
    fn faulted_batch_item_does_not_poison_partners() {
        let (sched, batch_calls, _) = faulty_sched(2, 3);
        let reference = FaultyLm::new();
        let healthy = [TokenId(1), TokenId(2)];
        let flaky = [FLAKY, TokenId(3)];
        let contexts: Vec<&[TokenId]> = vec![&healthy, &flaky, &[TokenId(7)]];
        let out = sched.try_score_many(&contexts);
        assert_eq!(batch_calls.load(Ordering::SeqCst), 1, "one dispatch");
        for (r, ctx) in out.iter().zip(&contexts) {
            let logits = r.as_ref().expect("every item must recover");
            assert_eq!(*logits, reference.logits_for(ctx));
        }
        assert!(
            sched.metrics().retry.faults.get() >= 1,
            "the flaky item's batch fault is counted"
        );
    }

    /// An item whose fallback also exhausts its retry budget fails alone:
    /// its partners still succeed, and its waiter receives the error
    /// rather than hanging.
    #[test]
    fn exhausted_item_fails_alone_with_per_item_errors() {
        let (sched, _, _) = faulty_sched(1, 2);
        let healthy = [TokenId(4)];
        let doomed = [DOOMED, TokenId(5)];
        let out = sched.try_score_many(&[&healthy, &doomed]);
        assert!(out[0].is_ok(), "healthy partner unaffected: {:?}", out[0]);
        let err = out[1].as_ref().unwrap_err();
        assert!(err.is_transient(), "budget-exhausted transient surfaces");
    }

    /// Fatal faults are not retried; every single-flight waiter merged
    /// onto the context receives the error promptly (no hang, no
    /// dispatcher death).
    #[test]
    fn fatal_fault_fills_all_merged_waiters() {
        let (sched, _, direct_calls) = faulty_sched(5, 1);
        let sched = Arc::new(sched);
        let ctx = vec![FATAL, TokenId(1)];
        let errors: Vec<LmResult<Logits>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let sched = Arc::clone(&sched);
                    let ctx = ctx.clone();
                    s.spawn(move || sched.try_score(&ctx))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &errors {
            assert!(
                matches!(r, Err(LmError::Fatal { .. })),
                "fatal surfaces to every waiter: {r:?}"
            );
        }
        // The scheduler stays healthy after the fault.
        assert!(sched.try_score(&[TokenId(8)]).is_ok());
        assert!(
            direct_calls.load(Ordering::SeqCst) <= 2,
            "fatal errors are never retried"
        );
    }

    /// A request that out-waits its deadline in the queue is answered
    /// with `DeadlineExceeded` without ever reaching the model.
    #[test]
    fn queued_request_past_deadline_is_not_dispatched() {
        let (lm, calls) = counting(Duration::ZERO);
        let retry = RetryPolicy {
            deadline: Some(Duration::from_millis(5)),
            ..fast_retry(0)
        };
        // An undersized batch waits out max_wait (40ms) before firing —
        // far past the 5ms deadline.
        let sched = Scheduler::with_retry(
            Box::new(lm),
            policy(8, 40),
            Default::default(),
            retry,
            SchedulerObs::default(),
        );
        let err = sched.try_score(&[TokenId(3)]).unwrap_err();
        assert!(matches!(err, LmError::DeadlineExceeded { .. }), "{err}");
        assert_eq!(calls.load(Ordering::SeqCst), 0, "model never called");
        assert_eq!(sched.metrics().retry.deadline_exceeded.get(), 1);
    }

    fn pending(stream: u64, tag: u32, enqueued: Instant) -> Pending {
        Pending {
            context: vec![TokenId(tag)].into(),
            slot: Arc::new(Slot::default()),
            enqueued,
            deadline: None,
            cancel: None,
            stream,
        }
    }

    fn tags(batch: &[Pending]) -> Vec<u32> {
        batch.iter().map(|p| p.context[0].0).collect()
    }

    #[test]
    fn admission_takes_everything_that_fits() {
        let now = Instant::now();
        let mut queue = vec![pending(1, 1, now), pending(1, 2, now), pending(2, 3, now)];
        let (batch, rescued) = admit_batch(&mut queue, 4, Duration::from_millis(20), now);
        assert_eq!(tags(&batch), [1, 2, 3]);
        assert_eq!(rescued, 0);
        assert!(queue.is_empty());
    }

    /// The continuous-batching pin: a wide call (stream 1, four
    /// contexts) contending with a short call (stream 2, one context)
    /// for a two-slot batch. FIFO would fill both slots from the wide
    /// call; stream-fair admission deals one slot to each.
    #[test]
    fn oversubscribed_batch_is_stream_fair() {
        let now = Instant::now();
        let mut queue = vec![
            pending(1, 1, now),
            pending(1, 2, now),
            pending(1, 3, now),
            pending(1, 4, now),
            pending(2, 10, now),
        ];
        let (batch, rescued) = admit_batch(&mut queue, 2, Duration::from_millis(20), now);
        assert_eq!(tags(&batch), [1, 10], "one slot per stream, FIFO within");
        assert_eq!(rescued, 0);
        assert_eq!(tags(&queue), [2, 3, 4], "remainder keeps its order");
    }

    /// The starvation-deadline pin: items past `max_queue_wait` are
    /// admitted ahead of stream fairness. Eight fresh single-item
    /// streams would win every round-robin slot forever; the two old
    /// items from the ninth stream jump the line instead.
    #[test]
    fn overdue_items_jump_stream_fairness() {
        let base = Instant::now();
        let now = base + Duration::from_millis(50);
        let mut queue: Vec<Pending> = (1..=8)
            .map(|s| pending(s, s as u32, base + Duration::from_millis(40)))
            .collect();
        queue.push(pending(9, 20, base));
        queue.push(pending(9, 21, base));
        let (batch, rescued) = admit_batch(&mut queue, 2, Duration::from_millis(45), now);
        assert_eq!(tags(&batch), [20, 21], "overdue items admitted first");
        assert_eq!(rescued, 2);
        assert_eq!(queue.len(), 8);
    }

    /// A model that records the composition of every batch dispatch.
    #[derive(Debug)]
    struct RecordingLm {
        bpe: Arc<Bpe>,
        batches: Arc<Mutex<Vec<Vec<Vec<TokenId>>>>>,
        delay: Duration,
    }

    impl LanguageModel for RecordingLm {
        fn vocab(&self) -> &Vocabulary {
            self.bpe.vocab()
        }
        fn score(&self, context: &[TokenId]) -> Logits {
            std::thread::sleep(self.delay);
            Logits::constant(self.bpe.vocab().len(), context.len() as f64)
        }
        fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
            self.batches
                .lock()
                .unwrap()
                .push(contexts.iter().map(|c| c.to_vec()).collect());
            std::thread::sleep(self.delay);
            contexts
                .iter()
                .map(|c| Ok(Logits::constant(self.bpe.vocab().len(), c.len() as f64)))
                .collect()
        }
    }

    /// End-to-end starvation regression: a wide `score_many` (eight
    /// contexts, one stream) contends with a late one-context request
    /// for a four-slot batch. Under the old FIFO drain the short request
    /// dispatched only after *all* wide contexts (third batch); under
    /// continuous batching it rides in one of the first two dispatches.
    #[test]
    fn wide_call_does_not_starve_short_call() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let lm = RecordingLm {
            bpe: Arc::new(Bpe::char_level("")),
            batches: Arc::clone(&batches),
            delay: Duration::from_millis(80),
        };
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            policy(4, 20),
            Default::default(),
        ));
        let victim_ctx = vec![TokenId(99)];
        std::thread::scope(|s| {
            let hog = {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let ctxs: Vec<Vec<TokenId>> =
                        (0..8).map(|i| vec![TokenId(i), TokenId(1)]).collect();
                    let refs: Vec<&[TokenId]> = ctxs.iter().map(|c| c.as_slice()).collect();
                    sched.score_many(&refs)
                })
            };
            // Enqueue the victim while the wide call's first batch is
            // still holding the model (80ms per dispatch).
            std::thread::sleep(Duration::from_millis(15));
            let victim = {
                let sched = Arc::clone(&sched);
                let ctx = victim_ctx.clone();
                s.spawn(move || sched.score(&ctx))
            };
            hog.join().unwrap();
            victim.join().unwrap();
        });
        let recorded = batches.lock().unwrap();
        let victim_batch = recorded
            .iter()
            .position(|b| b.iter().any(|c| c == &victim_ctx))
            .expect("victim context was dispatched");
        assert!(
            victim_batch <= 1,
            "short request must not queue behind the whole wide call \
             (dispatched in batch #{victim_batch} of {})",
            recorded.len()
        );
    }

    #[test]
    fn batched_lm_is_a_language_model() {
        let (lm, _) = counting(Duration::ZERO);
        let (reference, _) = counting(Duration::ZERO);
        let sched = Arc::new(Scheduler::new(
            Box::new(lm),
            BatchPolicy::default(),
            Default::default(),
        ));
        let handle = BatchedLm::new(sched);
        let ctx = [TokenId(2)];
        assert_eq!(handle.score(&ctx), reference.score(&ctx));
        let batch: Vec<&[TokenId]> = vec![&ctx, &ctx];
        let out = handle.score_batch(&batch);
        assert_eq!(out[0], out[1]);
    }
}
