//! Concurrent inference engine (scheduler + prefix cache).

pub mod radix;
pub mod router;
pub mod sched;

mod run;

pub use radix::{RadixCache, RadixCacheConfig, RadixStats};
pub use router::{
    is_busy, prompt_prefix, Permit, ReplicaStats, Router, RouterConfig, RouterObs, RouterStats,
    RouterStream,
};
pub use run::{Engine, EngineConfig, EngineObs, EngineStats, QueryStream};
pub use sched::{BatchPolicy, BatchedLm, SchedMetrics, Scheduler, SchedulerObs};
