//! Concurrent inference engine (scheduler + prefix cache).

pub mod radix;
pub mod sched;

mod run;

pub use radix::{RadixCache, RadixCacheConfig, RadixStats};
pub use run::{Engine, EngineConfig, EngineObs, EngineStats, QueryStream};
pub use sched::{BatchPolicy, BatchedLm, SchedMetrics, Scheduler, SchedulerObs};
