//! Engine-level observability integration: registry metrics and traces
//! recorded across the scheduler and the worker thread pool, plus
//! regression pins for the shared `RadixCache` counters on scripted
//! workloads.

use lmql_engine::{
    BatchPolicy, Engine, EngineConfig, EngineObs, RadixCache, RadixCacheConfig, Scheduler,
    SchedulerObs,
};
use lmql_lm::{Episode, LanguageModel, Logits, ScriptedLm};
use lmql_obs::{chrome, Registry, Tracer};
use lmql_tokenizer::{Bpe, TokenId};
use std::sync::Arc;
use std::time::Duration;

fn scripted_engine(episodes: Vec<Episode>, threads: usize, obs: EngineObs) -> Engine {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
    Engine::new_with_obs(
        lm,
        bpe,
        EngineConfig {
            threads,
            ..EngineConfig::default()
        },
        obs,
    )
}

const QUERY: &str = "argmax\n    \"Q:[A]\"\nfrom \"m\"\nwhere stops_at(A, \".\")\n";

#[test]
fn radix_cache_counts_are_pinned_on_scripted_workload() {
    // Tiny budget: 4 entries. Workload touches 6 distinct contexts with
    // re-use, forcing LRU evictions at known points.
    let mut cache = RadixCache::new(RadixCacheConfig {
        max_entries: 4,
        max_bytes: usize::MAX,
    });
    let logits = |tag: f64| Logits::from_vec(vec![tag, 0.0]);
    let ctx = |toks: &[u32]| toks.iter().map(|&t| TokenId(t)).collect::<Vec<_>>();

    // Fill: 4 misses, no evictions.
    for i in 0..4u32 {
        assert!(cache.get(&ctx(&[i])).is_none());
        cache.insert(&ctx(&[i]), logits(f64::from(i)));
    }
    // Re-touch [0]: hit, makes [1] the LRU entry.
    assert!(cache.get(&ctx(&[0])).is_some());
    // Two new contexts evict [1] then [2].
    cache.insert(&ctx(&[4]), logits(4.0));
    cache.insert(&ctx(&[5]), logits(5.0));
    assert!(cache.get(&ctx(&[1])).is_none(), "[1] was evicted");
    assert!(cache.get(&ctx(&[2])).is_none(), "[2] was evicted");
    assert!(cache.get(&ctx(&[0])).is_some(), "[0] survived (re-touched)");
    assert!(cache.get(&ctx(&[3])).is_some());

    let stats = cache.stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 6);
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.entries, 4);
}

#[test]
fn repeat_query_hits_are_pinned_single_threaded() {
    // threads=1 makes the schedule sequential and the counters exact:
    // the second identical query finds every context in the shared cache.
    let registry = Registry::new();
    let eng = scripted_engine(
        vec![Episode::plain("Q:", " ok.")],
        1,
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    );
    let r = eng.run_queries(&[QUERY]);
    assert!(r[0].is_ok());
    let first = eng.stats();
    assert!(first.cache.misses > 0);
    assert_eq!(first.cache.hits, 0, "cold cache: no hits on first run");

    let r = eng.run_queries(&[QUERY]);
    assert!(r[0].is_ok());
    let second = eng.stats();
    assert_eq!(
        second.cache.misses, first.cache.misses,
        "second identical query adds no misses"
    );
    // A scheduler-level miss probes the radix cache twice (optimistic
    // lookup + second-chance re-check under the state lock), so radix
    // misses are exactly twice the hit count once the repeat run has
    // re-requested every context.
    assert_eq!(
        second.cache.hits * 2,
        second.cache.misses,
        "every context of the repeat run is a hit"
    );
    assert_eq!(second.cache.evictions, 0);

    // The registry's engine.* counters count one hit/miss per request:
    // first run all misses, repeat run all hits.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("engine.cache.hits").unwrap(),
        second.cache.hits
    );
    assert_eq!(
        snap.counter("engine.cache.hits").unwrap(),
        snap.counter("engine.cache.misses").unwrap(),
    );
    assert_eq!(snap.counter("engine.cache.evictions").unwrap(), 0);
    let text = snap.render_text();
    assert!(text.contains("counter engine.cache.hits"));
    assert!(text.contains("histogram engine.batch.size"));
}

#[test]
fn thread_pool_counters_stay_consistent_under_concurrency() {
    // 8 concurrent queries on 4 workers hammer the same counters from
    // multiple threads; the meter (lm.*) and scheduler metrics (engine.*)
    // record at the same sites, so their totals must agree whatever the
    // interleaving.
    let registry = Registry::new();
    let eng = scripted_engine(
        vec![Episode::plain("Q:", " ok.")],
        4,
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    );
    let queries = vec![QUERY; 8];
    let results = eng.run_queries(&queries);
    assert!(results.iter().all(|r| r.is_ok()));

    let usage = eng.stats().usage;
    let snap = registry.snapshot();
    assert_eq!(snap.counter("lm.cache_hits").unwrap(), usage.cache_hits);
    assert_eq!(snap.counter("lm.cache_misses").unwrap(), usage.cache_misses);
    assert_eq!(
        snap.counter("lm.model_queries").unwrap(),
        usage.model_queries
    );
    assert_eq!(snap.counter("engine.cache.hits").unwrap(), usage.cache_hits);
    assert_eq!(
        snap.counter("engine.cache.misses").unwrap(),
        usage.cache_misses
    );
    // Every model query went through a microbatch dispatch.
    let batched = snap.histogram("engine.batch.size").unwrap().sum;
    assert_eq!(batched, usage.model_queries);
    assert_eq!(
        snap.counter("engine.batch.dispatches").unwrap(),
        snap.histogram("engine.batch.size").unwrap().count
    );
}

#[test]
fn engine_trace_covers_decode_dispatch_and_cache() {
    let tracer = Tracer::manual();
    let eng = scripted_engine(
        vec![Episode::plain("Q:", " ok.")],
        1,
        EngineObs {
            tracer: tracer.clone(),
            registry: None,
        },
    );
    // Two identical queries: the repeat produces cache-hit events.
    let results = eng.run_queries(&[QUERY, QUERY]);
    assert!(results.iter().all(|r| r.is_ok()));

    let events = eng.tracer().events();
    let has = |name: &str| events.iter().any(|e| e.name == name);
    assert!(has("hole:A"), "hole-decoding span");
    assert!(has("compute_mask"), "mask-computation span");
    assert!(has("dispatch"), "batch-dispatch span (dispatcher thread)");
    assert!(has("hit"), "cache-hit instant (repeat query)");
    assert!(has("miss"), "cache-miss instant (first query)");
    assert!(has("run:argmax"), "query-level span");

    // The Chrome export round-trips and keeps every event.
    let json = chrome::to_chrome_json(&events);
    let parsed = chrome::parse_chrome_json(&json).expect("valid trace JSON");
    assert_eq!(parsed, events);
}

#[test]
fn scheduler_metrics_record_waits_and_merges() {
    // Direct scheduler exercise: a slow model plus identical concurrent
    // requests forces single-flight merges.
    #[derive(Debug)]
    struct SlowLm {
        bpe: Arc<Bpe>,
    }
    impl LanguageModel for SlowLm {
        fn vocab(&self) -> &lmql_tokenizer::Vocabulary {
            self.bpe.vocab()
        }
        fn score(&self, _context: &[TokenId]) -> Logits {
            std::thread::sleep(Duration::from_millis(30));
            Logits::constant(self.bpe.vocab().len(), 1.0)
        }
    }
    let bpe = Arc::new(Bpe::char_level(""));
    let sched = Arc::new(Scheduler::with_obs(
        Box::new(SlowLm { bpe }),
        BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..BatchPolicy::default()
        },
        RadixCacheConfig::default(),
        SchedulerObs::default(),
    ));
    let ctx = vec![TokenId(3)];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let ctx = ctx.clone();
                s.spawn(move || sched.score(&ctx))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let m = sched.metrics();
    assert_eq!(m.dispatches.get(), 1, "one model call for four requesters");
    assert_eq!(
        m.singleflight_merges.get(),
        3,
        "three requests joined the in-flight slot"
    );
    assert_eq!(m.batch_size.snapshot().sum, 1);
    assert!(m.batch_wait_us.snapshot().count >= 1);
}
