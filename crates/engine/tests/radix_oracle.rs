//! Model-based testing of [`RadixCache`] against a naive LRU oracle.
//!
//! The oracle is the obvious implementation: a flat list of (key, value)
//! pairs kept in recency order. The radix cache must agree with it on
//! every lookup result, every hit/miss decision, every eviction choice,
//! and the set of surviving entries — across thousands of randomised
//! operations at several capacities.

use lmql_engine::{RadixCache, RadixCacheConfig};
use lmql_lm::Logits;
use lmql_tokenizer::TokenId;
use rand::prelude::*;

/// The naive reference: most recently used last.
struct Oracle {
    capacity: usize,
    entries: Vec<(Vec<TokenId>, Logits)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Oracle {
    fn new(capacity: usize) -> Self {
        Oracle {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &[TokenId]) -> Option<Logits> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i);
                let value = entry.1.clone();
                self.entries.push(entry);
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: &[TokenId], value: Logits) {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key.to_vec(), value));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
    }

    fn longest_cached_prefix(&self, key: &[TokenId]) -> usize {
        (0..=key.len())
            .rev()
            .find(|&n| self.entries.iter().any(|(k, _)| k == &key[..n]))
            .unwrap_or(0)
    }
}

fn random_key(rng: &mut StdRng) -> Vec<TokenId> {
    // A tiny alphabet and short keys force constant prefix sharing,
    // overwrites, and re-lookups.
    let len = rng.gen_range(0..=6);
    (0..len).map(|_| TokenId(rng.gen_range(0u32..4))).collect()
}

fn run_against_oracle(capacity: usize, seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = RadixCache::new(RadixCacheConfig {
        max_entries: capacity,
        max_bytes: usize::MAX, // byte budget exercised separately
    });
    let mut oracle = Oracle::new(capacity);

    for op in 0..ops {
        let key = random_key(&mut rng);
        match rng.gen_range(0..10) {
            0..=5 => {
                let value = Logits::from_vec(vec![op as f64]);
                cache.insert(&key, value.clone());
                oracle.insert(&key, value);
            }
            6..=8 => {
                assert_eq!(
                    cache.get(&key),
                    oracle.get(&key),
                    "lookup diverged at op {op} (capacity {capacity}, seed {seed})"
                );
            }
            _ => {
                assert_eq!(
                    cache.longest_cached_prefix(&key),
                    oracle.longest_cached_prefix(&key),
                    "prefix walk diverged at op {op} (capacity {capacity}, seed {seed})"
                );
            }
        }

        let stats = cache.stats();
        assert_eq!(stats.entries, oracle.entries.len());
        assert_eq!(stats.hits, oracle.hits);
        assert_eq!(stats.misses, oracle.misses);
        assert_eq!(stats.evictions, oracle.evictions);
    }

    // Final state: exactly the oracle's surviving entries, value for value.
    for (key, value) in &oracle.entries {
        assert_eq!(
            cache.get(key).as_ref(),
            Some(value),
            "surviving entry mismatch (capacity {capacity}, seed {seed})"
        );
    }
}

#[test]
fn radix_cache_matches_lru_oracle() {
    for capacity in [1, 2, 3, 8, 64] {
        for seed in 0..4 {
            run_against_oracle(capacity, seed, 2_000);
        }
    }
}

#[test]
fn unbounded_cache_matches_hashmap() {
    // With no eviction pressure the cache is just a map keyed by token
    // sequence; check against std's HashMap directly.
    use std::collections::HashMap;
    let mut rng = StdRng::seed_from_u64(42);
    let mut cache = RadixCache::new(RadixCacheConfig::default());
    let mut map: HashMap<Vec<TokenId>, Logits> = HashMap::new();
    for op in 0..3_000 {
        let key = random_key(&mut rng);
        if rng.gen_bool(0.5) {
            let value = Logits::from_vec(vec![op as f64, -(op as f64)]);
            cache.insert(&key, value.clone());
            map.insert(key, value);
        } else {
            assert_eq!(cache.get(&key), map.get(&key).cloned());
        }
    }
    assert_eq!(cache.stats().entries, map.len());
    assert_eq!(cache.stats().evictions, 0);
}
