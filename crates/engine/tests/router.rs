//! Router integration: replica fail-over and the multi-replica soak.
//!
//! The acceptance bar for the replica pool is *transparency*: whatever
//! the router does — prefix-affinity placement, load shedding, killing
//! a replica mid-stream and retrying elsewhere — query results must be
//! byte-identical to a single-node engine run. Queries are
//! deterministic in (source, seed), never in placement, so any
//! divergence is a router bug by construction.

use lmql_engine::{Engine, EngineConfig, Router, RouterConfig, RouterObs};
use lmql_lm::{ChaosLm, Episode, FaultPlan, LanguageModel, ScriptedLm};
use lmql_obs::Registry;
use lmql_tokenizer::Bpe;
use std::sync::Arc;

const QUERIES: [&str; 3] = [
    "argmax\n    \"A:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
    "argmax\n    \"B:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
    "argmax\n    \"C:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
];

fn episodes() -> Vec<Episode> {
    vec![
        Episode::plain("A:", " first answer."),
        Episode::plain("B:", " second answer."),
        Episode::plain("C:", " third, longer answer."),
    ]
}

fn bpe() -> Arc<Bpe> {
    Arc::new(Bpe::char_level(""))
}

fn clean_model(bpe: &Arc<Bpe>) -> Arc<dyn LanguageModel> {
    Arc::new(ScriptedLm::new(Arc::clone(bpe), episodes()))
}

fn config(replicas: usize) -> RouterConfig {
    RouterConfig {
        replicas,
        engine: EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// The byte-exact outcome of one query: every run's trace plus the
/// exact bits of its log-probability.
fn outcome(result: &lmql::Result<lmql::QueryResult>) -> Vec<(String, u64)> {
    result
        .as_ref()
        .expect("query must succeed")
        .runs
        .iter()
        .map(|run| (run.trace.clone(), run.log_prob.to_bits()))
        .collect()
}

/// A replica dies mid-stream (seeded fatal injection a few decode steps
/// in); the router must retry the query on a healthy replica, return a
/// result byte-identical to a single-node run, and count the fail-over.
#[test]
fn replica_death_mid_stream_fails_over_byte_identically() {
    let bpe = bpe();
    let query = QUERIES[0];

    // Routing is pure in (prompt prefix, replica count), so a clean
    // probe router tells us which replica the query will land on —
    // that's the one that gets the doomed backend.
    let probe = Router::new(clean_model(&bpe), Arc::clone(&bpe), config(3));
    let doomed = probe.route_for(query);

    let chaos: Arc<dyn LanguageModel> = Arc::new(ChaosLm::new(
        ScriptedLm::new(Arc::clone(&bpe), episodes()),
        FaultPlan {
            seed: 17,
            // Let the first decode steps stream, then kill the replica:
            // a fatal injection is non-retryable, so the replica's
            // engine fails the query and the router must move it.
            fatal_on_calls: vec![2],
            ..FaultPlan::default()
        },
    ));
    let clean = clean_model(&bpe);
    let registry = Registry::new();
    let router = Router::with_backends(
        |i| {
            if i == doomed {
                Arc::clone(&chaos)
            } else {
                Arc::clone(&clean)
            }
        },
        Arc::clone(&bpe),
        config(3),
        RouterObs {
            registry: Some(registry.clone()),
            ..RouterObs::default()
        },
    );
    assert_eq!(router.route_for(query), doomed, "probe must agree");

    let stream = router.stream_query(query);
    // Drain events (the doomed attempt's partial events followed by the
    // healthy retry's full replay), then take the final result.
    let events = stream.events().count();
    assert!(events > 0, "the retried attempt must still stream events");
    let routed = stream.wait();

    let single = Engine::new(clean_model(&bpe), Arc::clone(&bpe), EngineConfig::default());
    let reference = single.run_queries(&[query]).pop().unwrap();
    assert_eq!(
        outcome(&routed),
        outcome(&reference),
        "fail-over result must be byte-identical to single-node"
    );

    let failovers = registry
        .snapshot()
        .counter("engine.replica.failover")
        .unwrap_or(0);
    assert!(failovers >= 1, "fail-over must be counted, got {failovers}");
    let stats = router.stats();
    assert!(
        stats.replicas.iter().filter(|r| r.queries > 0).count() >= 2,
        "both the doomed and a healthy replica must have seen the query"
    );
}

/// Hundreds of concurrently streamed queries across ≥ 4 replicas come
/// back byte-identical to a single-node engine — the scale-out soak.
#[test]
fn multi_replica_soak_matches_single_node() {
    let bpe = bpe();
    let router = Router::new(clean_model(&bpe), Arc::clone(&bpe), config(4));

    // Single-node reference outcomes, one per distinct source.
    let single = Engine::new(clean_model(&bpe), Arc::clone(&bpe), EngineConfig::default());
    let reference: Vec<Vec<(String, u64)>> =
        single.run_queries(&QUERIES).iter().map(outcome).collect();

    // 240 concurrent streams, round-robin over the three sources.
    let sources: Vec<&str> = (0..240).map(|i| QUERIES[i % QUERIES.len()]).collect();
    let streams = router.stream_queries(&sources);
    for (i, stream) in streams.into_iter().enumerate() {
        let result = stream.wait();
        assert_eq!(
            outcome(&result),
            reference[i % QUERIES.len()],
            "soak query {i} diverged from single-node"
        );
    }

    let stats = router.stats();
    assert_eq!(stats.routed, 240);
    assert_eq!(stats.failovers, 0, "healthy pool never fails over");
    let busy = stats.replicas.iter().filter(|r| r.queries > 0).count();
    assert!(busy >= 2, "three distinct prefixes should use >1 replica");
    assert_eq!(
        stats.replicas.iter().map(|r| r.queries).sum::<u64>(),
        240,
        "every query accounted to exactly one replica"
    );
}

/// Shared-prefix queries all land on one replica (that is what keeps
/// the radix caches hot under sharding), and the pool-wide hit rate on
/// a shared-prefix workload stays high.
#[test]
fn shared_prefix_queries_share_a_replica() {
    let bpe = bpe();
    let router = Router::new(clean_model(&bpe), Arc::clone(&bpe), config(4));
    let sources: Vec<String> = (0..24)
        .map(|i| {
            let hole = ["X", "Y", "Z"][i % 3];
            format!("argmax\n    \"A:[{hole}]\"\nfrom \"m\"\nwhere stops_at({hole}, \".\")\n")
        })
        .collect();
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    for r in router.run_queries(&refs) {
        r.expect("query must succeed");
    }
    let stats = router.stats();
    assert_eq!(
        stats.replicas.iter().filter(|r| r.queries > 0).count(),
        1,
        "one shared prompt prefix must map to exactly one replica"
    );
    assert!(
        stats.cache_hit_rate() > 0.5,
        "shared-prefix workload on one replica must hit its radix cache, got {}",
        stats.cache_hit_rate()
    );
}
