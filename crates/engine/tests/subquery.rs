//! Engine-level `subquery(...)` trees: depth/budget admission, usage
//! roll-up, cancellation down the tree (under injected latency), and the
//! dispatch-round win from program-level hole parallelism.
//!
//! Everything here must be deterministic: admission decisions are pure
//! functions of the configured [`SubqueryLimits`], cancellation tests
//! gate on observed [`QueryEvent::SubqueryStart`] events rather than
//! sleeps, and the dispatch-round pin compares two fully scripted runs.

use lmql::{QueryEvent, SubqueryLimits};
use lmql_engine::{BatchPolicy, Engine, EngineConfig, EngineObs};
use lmql_lm::{ChaosLm, Episode, FaultPlan, ScriptedLm};
use lmql_obs::{Registry, Tracer};
use lmql_tokenizer::Bpe;
use std::sync::Arc;
use std::time::Duration;

/// Renders `s` as an LMQL string literal (for nesting query sources
/// inside `subquery("...")` calls).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

const CHILD_SRC: &str = "argmax\n    \"S:[B]\"\nfrom \"m\"\nwhere stops_at(B, \".\")\n";

/// A parent that decodes one hole, spawns [`CHILD_SRC`], and splices the
/// child's `B` binding back into its own prompt.
fn parent_src() -> String {
    format!(
        "argmax\n    \"Q:[A]\"\n    sub = subquery({}, \"B\")\n    \"sub={{sub}}\"\nfrom \"m\"\nwhere stops_at(A, \"\\n\")\n",
        quote(CHILD_SRC)
    )
}

fn scripted(episodes: Vec<Episode>) -> (Arc<ScriptedLm>, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes));
    (lm, bpe)
}

fn engine_with(episodes: Vec<Episode>, limits: SubqueryLimits, registry: &Registry) -> Engine {
    let (lm, bpe) = scripted(episodes);
    Engine::new_with_obs(
        lm,
        bpe,
        EngineConfig {
            threads: 1,
            subquery: limits,
            ..EngineConfig::default()
        },
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    )
}

fn basic_episodes() -> Vec<Episode> {
    vec![Episode::plain("Q:", " hi\n"), Episode::plain("S:", " ok.")]
}

#[test]
fn depth_limit_rejects_spawn_and_counts_it() {
    let registry = Registry::new();
    let engine = engine_with(
        basic_episodes(),
        SubqueryLimits {
            max_depth: 0,
            max_tokens: None,
        },
        &registry,
    );
    let err = engine
        .run_queries(&[&parent_src()])
        .pop()
        .unwrap()
        .unwrap_err();
    assert!(err.to_string().contains("depth limit"), "{err}");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.subquery.depth_rejected"), Some(1));
    assert_eq!(snap.counter("engine.subquery.spawned"), None);
}

#[test]
fn budget_exhaustion_mid_child_fails_the_spawn_deterministically() {
    // The child wants ~14 tokens (char-level); a 3-token tree budget
    // runs dry mid-decode, so the child stops cooperatively at a token
    // boundary and the parent sees a budget error — not a hang, not a
    // generic failure.
    let registry = Registry::new();
    let engine = engine_with(
        vec![
            Episode::plain("Q:", " hi\n"),
            Episode::plain("S:", " all thirteen."),
        ],
        SubqueryLimits {
            max_depth: 4,
            max_tokens: Some(3),
        },
        &registry,
    );
    let err = engine
        .run_queries(&[&parent_src()])
        .pop()
        .unwrap()
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.subquery.spawned"), Some(1));
    assert_eq!(snap.counter("engine.subquery.budget_exhausted"), Some(1));
    assert_eq!(snap.counter("engine.subquery.cancelled"), None);
}

#[test]
fn usage_rolls_up_exactly_to_the_sum_of_isolated_runs() {
    // Composed: parent spawns the child. Inlined: the same parent with
    // the child's answer assigned directly (identical trace, no spawn).
    // Isolated child: CHILD_SRC alone. The tree's meter must equal
    // inlined + isolated, token for token.
    let inlined_src = "argmax\n    \"Q:[A]\"\n    sub = \" ok.\"\n    \"sub={sub}\"\nfrom \"m\"\nwhere stops_at(A, \"\\n\")\n";

    let registry = Registry::new();
    let composed_engine = engine_with(basic_episodes(), SubqueryLimits::default(), &registry);
    let composed = composed_engine
        .run_queries(&[&parent_src()])
        .pop()
        .unwrap()
        .unwrap();
    assert_eq!(composed.best().trace, "Q: hi\nsub= ok.");
    let composed_usage = composed_engine.meter().snapshot();

    let inlined_engine = engine_with(
        basic_episodes(),
        SubqueryLimits::default(),
        &Registry::new(),
    );
    let inlined = inlined_engine
        .run_queries(&[inlined_src])
        .pop()
        .unwrap()
        .unwrap();
    assert_eq!(inlined.best().trace, composed.best().trace);
    let inlined_usage = inlined_engine.meter().snapshot();

    let child_engine = engine_with(
        basic_episodes(),
        SubqueryLimits::default(),
        &Registry::new(),
    );
    child_engine
        .run_queries(&[CHILD_SRC])
        .pop()
        .unwrap()
        .unwrap();
    let child_usage = child_engine.meter().snapshot();

    assert_eq!(
        composed_usage.decoder_calls,
        inlined_usage.decoder_calls + child_usage.decoder_calls,
        "decoder calls roll up"
    );
    assert_eq!(
        composed_usage.billable_tokens,
        inlined_usage.billable_tokens + child_usage.billable_tokens,
        "billable tokens roll up"
    );
    assert_eq!(
        registry.snapshot().counter("engine.subquery.spawned"),
        Some(1)
    );
}

#[test]
fn parent_cancellation_kills_the_whole_tree_under_latency_injection() {
    // A three-level tree — root spawns a child, the child spawns a
    // grandchild whose script is long enough (plus a 2ms injected stall
    // per model call) that it cannot finish before we cancel. The
    // cancel is issued only after the grandchild's SubqueryStart is
    // observed, so both descendants are provably in flight.
    let long_tail = format!("{}!", " x".repeat(150));
    let grand_src = "argmax\n    \"G:[C]\"\nfrom \"m\"\nwhere stops_at(C, \"!\")\n";
    let child_src = format!(
        "argmax\n    \"S:[B]\"\n    sub2 = subquery({})\n    \"x{{sub2}}\"\nfrom \"m\"\nwhere stops_at(B, \".\")\n",
        quote(grand_src)
    );
    let root_src = format!(
        "argmax\n    \"Q:[A]\"\n    sub = subquery({})\n    \"y{{sub}}\"\nfrom \"m\"\nwhere stops_at(A, \"\\n\")\n",
        quote(&child_src)
    );

    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        vec![
            Episode::plain("Q:", " hi\n"),
            Episode::plain("S:", " ok."),
            Episode::plain("G:", &long_tail),
        ],
    ));
    let chaos = Arc::new(ChaosLm::new(
        lm,
        FaultPlan {
            seed: 5,
            latency_rate: 1.0,
            latency: Duration::from_millis(2),
            ..FaultPlan::default()
        },
    ));
    let stats = chaos.stats().clone();
    let registry = Registry::new();
    let engine = Engine::new_with_obs(
        chaos,
        bpe,
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    );

    let stream = engine.stream_query(&root_src);
    let mut starts = 0;
    while let Some(event) = stream.next_event() {
        if matches!(event, QueryEvent::SubqueryStart { .. }) {
            starts += 1;
            if starts == 2 {
                break;
            }
        }
    }
    assert_eq!(starts, 2, "child and grandchild both started");
    stream.cancel();
    let err = stream.wait().unwrap_err();
    assert!(
        err.to_string().to_lowercase().contains("cancel"),
        "tree dies by cancellation, got: {err}"
    );
    assert!(
        stats.latency_spikes.get() > 0,
        "the latency plan must actually fire"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.subquery.spawned"), Some(2));
    let cancelled = snap.counter("engine.subquery.cancelled").unwrap_or(0);
    assert!(cancelled >= 1, "descendants counted as cancelled");
    assert_eq!(snap.counter("engine.subquery.budget_exhausted"), None);
}

#[test]
fn parallel_holes_halve_scheduler_dispatch_rounds() {
    // Four independent holes with equal-length scripts. Sequentially,
    // every token-level score call is its own microbatch (nothing else
    // is pending); with the hole group decoding concurrently the
    // scheduler coalesces the four lanes, so dispatch rounds must drop
    // by at least 2x (the pinned floor — the ideal is ~4x).
    let episodes = vec![
        Episode::plain("L0:", " aaaa\n"),
        Episode::plain("L1:", " bbbb\n"),
        Episode::plain("L2:", " cccc\n"),
        Episode::plain("L3:", " dddd\n"),
    ];
    let src = "argmax\n    \"L0:[H0]L1:[H1]L2:[H2]L3:[H3]\"\nfrom \"m\"\nwhere stops_at(H0, \"\\n\") and stops_at(H1, \"\\n\") and stops_at(H2, \"\\n\") and stops_at(H3, \"\\n\")\n";
    let config = EngineConfig {
        threads: 1,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(25),
            ..BatchPolicy::default()
        },
        ..EngineConfig::default()
    };
    let run = |parallel: bool| -> (String, u64, u64) {
        let (lm, bpe) = scripted(episodes.clone());
        let registry = Registry::new();
        let engine = Engine::new_with_obs(
            lm,
            bpe,
            config.clone(),
            EngineObs {
                tracer: Tracer::disabled(),
                registry: Some(registry.clone()),
            },
        );
        let result = engine
            .run_queries_with(&[src], |_, rt| {
                rt.options_mut().parallel_holes = parallel;
            })
            .pop()
            .unwrap()
            .unwrap();
        let snap = registry.snapshot();
        (
            result.best().trace.clone(),
            snap.counter("engine.batch.dispatches").unwrap_or(0),
            snap.counter("holes.parallel").unwrap_or(0),
        )
    };

    let (par_trace, par_dispatches, par_group) = run(true);
    let (seq_trace, seq_dispatches, seq_group) = run(false);
    assert_eq!(par_trace, seq_trace, "byte-identical results");
    assert_eq!(par_group, 4, "all four holes decoded through the group");
    assert_eq!(seq_group, 0);
    assert!(par_dispatches > 0 && seq_dispatches > 0);
    assert!(
        par_dispatches * 2 <= seq_dispatches,
        "parallel must at least halve dispatch rounds: {par_dispatches} vs {seq_dispatches}"
    );
}
