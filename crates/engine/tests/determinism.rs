//! Bit-identity of the batched engine path.
//!
//! The contract (and the reason the engine can exist at all): routing
//! scores through the prefix cache, single-flight map and microbatcher
//! changes *when* and *how often* the model runs, never what any query
//! observes. Every decoder — argmax, `sample(n)`, `beam(n)`, and
//! `distribute` scoring — must produce results bit-identical (f64 bit
//! patterns included) to a plain sequential [`Runtime`] over the bare
//! model, on both the scripted and the n-gram mock models.

use lmql::{QueryResult, Runtime};
use lmql_engine::{Engine, EngineConfig};
use lmql_lm::{Branch, Episode, LanguageModel, NGramLm, ScriptedLm};
use lmql_tokenizer::{Bpe, BpeTrainer};
use std::sync::Arc;

/// Asserts two query results are bit-identical: traces, variables,
/// log-probabilities (as raw bits), hole records and distributions.
fn assert_bit_identical(a: &QueryResult, b: &QueryResult, what: &str) {
    assert_eq!(a.runs.len(), b.runs.len(), "{what}: run count");
    for (i, (ra, rb)) in a.runs.iter().zip(&b.runs).enumerate() {
        assert_eq!(ra.trace, rb.trace, "{what}: trace of run {i}");
        assert_eq!(
            ra.log_prob.to_bits(),
            rb.log_prob.to_bits(),
            "{what}: log_prob bits of run {i}"
        );
        assert_eq!(
            format!("{:?}", sorted_vars(ra)),
            format!("{:?}", sorted_vars(rb)),
            "{what}: variables of run {i}"
        );
        assert_eq!(
            ra.hole_records.len(),
            rb.hole_records.len(),
            "{what}: hole records of run {i}"
        );
    }
    match (&a.distribution, &b.distribution) {
        (None, None) => {}
        (Some(da), Some(db)) => {
            assert_eq!(da.len(), db.len(), "{what}: distribution size");
            for ((va, pa), (vb, pb)) in da.iter().zip(db) {
                assert_eq!(va, vb, "{what}: distribution value");
                assert_eq!(
                    pa.to_bits(),
                    pb.to_bits(),
                    "{what}: probability bits of {va}"
                );
            }
        }
        _ => panic!("{what}: distribution presence differs"),
    }
}

fn sorted_vars(run: &lmql::QueryRun) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = run
        .variables
        .iter()
        .map(|(k, val)| (k.clone(), format!("{val:?}")))
        .collect();
    v.sort();
    v
}

/// Runs `queries` both ways — sequentially on a plain runtime and
/// concurrently through the engine — and demands bit-identical results.
fn check_queries(model: Arc<dyn LanguageModel>, bpe: Arc<Bpe>, queries: &[&str], what: &str) {
    let sequential: Vec<QueryResult> = queries
        .iter()
        .map(|q| {
            Runtime::new(Arc::clone(&model), Arc::clone(&bpe))
                .run(q)
                .unwrap_or_else(|e| panic!("{what}: sequential run failed: {e}"))
        })
        .collect();

    let engine = Engine::new(
        model,
        bpe,
        EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        },
    );
    let batched = engine.run_queries(queries);
    for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
        let bat = bat
            .as_ref()
            .unwrap_or_else(|e| panic!("{what}: engine run {i} failed: {e}"));
        assert_bit_identical(seq, bat, &format!("{what} (query {i})"));
    }
}

fn scripted() -> (Arc<dyn LanguageModel>, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [
            Episode::plain("Q: hi\nA:", " hello there, friend."),
            Episode {
                trigger: "best:".to_owned(),
                script: " alpha".to_owned(),
                digressions: vec![],
                branches: vec![Branch {
                    at: 0,
                    text: " beta".to_owned(),
                    weight: 11.4,
                }],
            },
        ],
    ));
    (lm, bpe)
}

fn ngram() -> (Arc<dyn LanguageModel>, Arc<Bpe>) {
    let corpus =
        "the cat sat on the mat.\n\nthe cat ran off.\n\nthe dog sat down.\n\nthe dog ran home.";
    let bpe = Arc::new(BpeTrainer::new().merges(40).train(corpus));
    let lm = Arc::new(NGramLm::train(Arc::clone(&bpe), corpus, 3));
    (lm, bpe)
}

#[test]
fn scripted_beam_is_bit_identical() {
    let (lm, bpe) = scripted();
    let q = "beam(n=3)\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere stops_at(ANSWER, \",\")\n";
    check_queries(lm, bpe, &[q, q, q, q], "scripted beam(n=3)");
}

#[test]
fn scripted_sample_is_bit_identical() {
    let (lm, bpe) = scripted();
    let q = "sample(n=4, temperature=1.3)\n    \"Q: hi\\nA:[ANSWER]\"\nfrom \"m\"\nwhere len(ANSWER) < 12\n";
    check_queries(lm, bpe, &[q, q, q, q], "scripted sample(n=4)");
}

#[test]
fn scripted_distribute_is_bit_identical() {
    let (lm, bpe) = scripted();
    let q = "argmax\n    \"best:[CHOICE]\"\nfrom \"m\"\ndistribute CHOICE in [\" alpha\", \" beta\", \" gamma\"]\n";
    check_queries(lm, bpe, &[q, q], "scripted distribute");
}

#[test]
fn ngram_beam_is_bit_identical() {
    let (lm, bpe) = ngram();
    let q = "beam(n=3, max_length=8)\n    \"the cat[NEXT]\"\nfrom \"m\"\n";
    check_queries(lm, bpe, &[q, q, q], "ngram beam(n=3)");
}

#[test]
fn ngram_sample_is_bit_identical() {
    let (lm, bpe) = ngram();
    let q = "sample(n=3, temperature=0.9, max_length=10)\n    \"the dog[NEXT]\"\nfrom \"m\"\n";
    check_queries(lm, bpe, &[q, q, q], "ngram sample(n=3)");
}

#[test]
fn mixed_decoder_workload_is_bit_identical() {
    let (lm, bpe) = ngram();
    let beam = "beam(n=2, max_length=6)\n    \"the cat[A]\"\nfrom \"m\"\n";
    let sample = "sample(n=2, max_length=6)\n    \"the dog[B]\"\nfrom \"m\"\n";
    let greedy = "argmax(max_length=6)\n    \"the[C]\"\nfrom \"m\"\n";
    check_queries(
        lm,
        bpe,
        &[beam, sample, greedy, beam, sample],
        "mixed workload",
    );
}

/// The acceptance criterion's shape, as a deterministic test: four
/// concurrent sample queries sharing a prompt must reach the model at
/// least 2× less often than running them back to back, because the
/// engine's cache and single-flight pay for each distinct context once.
#[test]
fn shared_prompt_sample_workload_halves_dispatches() {
    let (lm, bpe) = ngram();
    let q = "sample(n=2, temperature=0.8, max_length=8)\n    \"the cat sat[TAIL]\"\nfrom \"m\"\n";
    let queries = [q, q, q, q];

    let mut sequential_dispatches = 0;
    for q in &queries {
        let rt = Runtime::new(Arc::clone(&lm), Arc::clone(&bpe));
        rt.run(q).unwrap();
        sequential_dispatches += rt.meter().snapshot().dispatches();
    }

    let engine = Engine::new(
        lm,
        bpe,
        EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        },
    );
    for r in engine.run_queries(&queries) {
        r.unwrap();
    }
    let engine_dispatches = engine.stats().usage.dispatches();
    assert!(
        engine_dispatches * 2 <= sequential_dispatches,
        "expected ≥2× fewer dispatches: engine {engine_dispatches} vs sequential {sequential_dispatches}"
    );
}
