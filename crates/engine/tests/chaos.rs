//! Chaos integration: the engine under a seeded fault plan.
//!
//! A [`ChaosLm`] injects transient errors, truncated replies and latency
//! spikes into a fixed fraction of model calls. The scheduler's per-item
//! recovery (fallback direct scoring with retries) must absorb every
//! fault: `run_queries` returns results *identical* to a fault-free run,
//! nothing hangs, and the dispatcher survives. Fatal injections, by
//! contrast, must fail exactly the affected query — and only it.

use lmql_engine::{Engine, EngineConfig};
use lmql_lm::{ChaosLm, Episode, FaultPlan, RetryPolicy, ScriptedLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;
use std::time::Duration;

const QUERIES: [&str; 3] = [
    "argmax\n    \"A:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
    "argmax\n    \"B:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
    "argmax\n    \"C:[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n",
];

fn episodes() -> Vec<Episode> {
    vec![
        Episode::plain("A:", " first answer."),
        Episode::plain("B:", " second answer."),
        Episode::plain("C:", " third, longer answer."),
    ]
}

fn scripted() -> (Arc<ScriptedLm>, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), episodes()));
    (lm, bpe)
}

/// A retry budget generous enough to out-last any fault streak the plan
/// can produce, with sub-millisecond backoffs so the test stays fast.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 10,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
        jitter: 0.5,
        seed: 11,
        deadline: None,
    }
}

/// Runs the query set and flattens every run's trace and exact
/// log-probability bits into one comparable vector.
fn outcomes(engine: &Engine) -> Vec<(String, u64)> {
    engine
        .run_queries(&QUERIES)
        .into_iter()
        .map(|r| r.expect("query must succeed"))
        .flat_map(|result| {
            result
                .runs
                .iter()
                .map(|run| (run.trace.clone(), run.log_prob.to_bits()))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn chaos_run_is_identical_to_fault_free_run() {
    // Reference: no faults.
    let (lm, bpe) = scripted();
    let reference_engine = Engine::new(
        lm,
        bpe,
        EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        },
    );
    let reference = outcomes(&reference_engine);

    // Chaos: ~20% of score calls fault (errors, truncations, latency),
    // deterministically from the seed.
    let (lm, bpe) = scripted();
    let chaos = Arc::new(ChaosLm::new(lm, FaultPlan::transient(7, 0.2)));
    let stats = chaos.stats().clone();
    let chaos_engine = Engine::new(
        chaos,
        bpe,
        EngineConfig {
            threads: 4,
            retry: chaos_retry(),
            ..EngineConfig::default()
        },
    );
    let under_chaos = outcomes(&chaos_engine);

    assert!(
        stats.total_faults() > 0,
        "the fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(
        under_chaos, reference,
        "recovered results must be identical — traces and log-prob bits"
    );
}

#[test]
fn repeated_chaos_runs_are_deterministic() {
    let run = || {
        let (lm, bpe) = scripted();
        let chaos = Arc::new(ChaosLm::new(lm, FaultPlan::transient(42, 0.2)));
        let engine = Engine::new(
            chaos,
            bpe,
            EngineConfig {
                threads: 2,
                retry: chaos_retry(),
                ..EngineConfig::default()
            },
        );
        outcomes(&engine)
    };
    assert_eq!(run(), run(), "same seed, same results, every time");
}

#[test]
fn fatal_injection_fails_only_the_affected_query() {
    // One worker thread: queries run in order, so model-call ordinal 1
    // belongs to the first query. Injecting a fatal fault there must
    // fail that query with `Error::Model` — and leave the others (and
    // the engine itself) intact.
    let (lm, bpe) = scripted();
    let chaos = Arc::new(ChaosLm::new(
        lm,
        FaultPlan {
            fatal_on_calls: vec![1],
            ..FaultPlan::default()
        },
    ));
    let engine = Engine::new(
        chaos,
        bpe,
        EngineConfig {
            threads: 1,
            retry: chaos_retry(),
            ..EngineConfig::default()
        },
    );
    let results = engine.run_queries(&QUERIES);
    match &results[0] {
        Err(lmql::Error::Model { message }) => {
            assert!(message.contains("fatal"), "got: {message}")
        }
        other => panic!("expected Error::Model for the faulted query, got {other:?}"),
    }
    assert!(results[1].is_ok(), "partner query unaffected");
    assert!(results[2].is_ok(), "partner query unaffected");
    // The engine still serves new work after a fatal fault.
    let again = engine.run_queries(&QUERIES[1..2]);
    assert!(again[0].is_ok());
}
