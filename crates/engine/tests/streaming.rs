//! Engine streaming acceptance: [`Engine::stream_query`] delivers the
//! same bytes the pooled runner produces, and abandoning a stream frees
//! its scheduler work — the cancelled query's queued score request is
//! released at dispatch (the `engine.cancelled` counter) instead of
//! reaching the model, while unrelated queries keep decoding.

use lmql::{QueryEvent, Reassembler, Runtime};
use lmql_engine::{Engine, EngineConfig, EngineObs, QueryStream};
use lmql_lm::{corpus, LanguageModel, Logits};
use lmql_obs::{Registry, Tracer};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const QA: &str = "argmax\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const QB: &str =
    "argmax\n    \"The name of the largest ocean is[X]\"\nfrom \"m\"\nwhere stops_at(X, \".\")\n";
const SAMPLE: &str = "sample(n=2, temperature=1.2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";
const BEAM: &str = "beam(n=2)\n    \"A list of things not to forget when travelling:\\n-[THING]\"\nfrom \"m\"\nwhere stops_at(THING, \"\\n\")\n";

fn ngram_engine() -> Engine {
    Engine::new(
        corpus::standard_ngram(),
        corpus::standard_bpe(),
        EngineConfig::default(),
    )
}

#[test]
fn streamed_results_match_pooled_results() {
    let eng = ngram_engine();
    for query in [QA, SAMPLE, BEAM] {
        let pooled = eng.run_queries(&[query]);
        let pooled = pooled[0].as_ref().expect("pooled run");

        let stream = eng.stream_query(query);
        let events: Vec<QueryEvent> = stream.events().collect();
        let streamed = stream.wait().expect("streamed run");

        assert_eq!(streamed.runs.len(), pooled.runs.len());
        for (a, b) in streamed.runs.iter().zip(&pooled.runs) {
            assert_eq!(a.trace, b.trace, "trace diverged on {query:?}");
            assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        }

        // The event stream alone reassembles to the same bytes.
        let rebuilt = Reassembler::from_events(&events).expect("reassembly");
        assert_eq!(rebuilt.runs.len(), pooled.runs.len());
        for (got, want) in rebuilt.runs.iter().zip(&pooled.runs) {
            assert_eq!(got.trace, want.trace);
            assert_eq!(got.log_prob.to_bits(), want.log_prob.to_bits());
        }
        assert!(matches!(events.last(), Some(QueryEvent::Done { .. })));
    }
}

/// A model whose `score` blocks until the test opens the gate — lets the
/// test pin a query inside the dispatcher while another query's work
/// sits queued behind it.
struct GatedLm {
    inner: Arc<dyn LanguageModel>,
    open: Mutex<bool>,
    opened: Condvar,
    entered: AtomicUsize,
}

impl GatedLm {
    fn new(inner: Arc<dyn LanguageModel>) -> Arc<Self> {
        Arc::new(GatedLm {
            inner,
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    /// Blocks until at least one `score` call has entered the model.
    fn wait_entered(&self) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.entered.load(Ordering::Acquire) == 0 {
            assert!(Instant::now() < deadline, "model was never entered");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl LanguageModel for GatedLm {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        self.entered.fetch_add(1, Ordering::AcqRel);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
        drop(open);
        self.inner.score(context)
    }
}

fn gated_engine() -> (Engine, Arc<GatedLm>, Registry) {
    let gate = GatedLm::new(corpus::standard_ngram());
    let registry = Registry::new();
    let eng = Engine::new_with_obs(
        Arc::clone(&gate) as Arc<dyn LanguageModel>,
        corpus::standard_bpe(),
        EngineConfig::default(),
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    );
    (eng, gate, registry)
}

fn poll_counter(registry: &Registry, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = registry.snapshot().counter(name).unwrap_or(0);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn dropped_stream_releases_its_scheduler_slot() {
    let (eng, gate, registry) = gated_engine();

    // Query A enters the model and blocks there, occupying the
    // dispatcher.
    let stream_a = eng.stream_query(QA);
    gate.wait_entered();

    // Query B's first score request now sits queued behind A (observed
    // via the per-request engine.cache.misses counter).
    let stream_b = eng.stream_query(QB);
    assert!(
        poll_counter(&registry, "engine.cache.misses", 2) >= 2,
        "query B never submitted its score request"
    );

    // Dropping the handle abandons B: its queued work must be released
    // at dispatch — never scoring — and A must be undisturbed.
    drop(stream_b);
    gate.release();

    let result_a = stream_a.wait().expect("query A completes");
    let direct = Runtime::new(corpus::standard_ngram(), corpus::standard_bpe())
        .run(QA)
        .expect("direct run");
    assert_eq!(result_a.best().trace, direct.best().trace);
    assert_eq!(
        result_a.best().log_prob.to_bits(),
        direct.best().log_prob.to_bits()
    );

    assert_eq!(
        poll_counter(&registry, "engine.cancelled", 1),
        1,
        "abandoned queued request was not released at dispatch"
    );
    assert_eq!(
        poll_counter(&registry, "stream.cancelled", 1),
        1,
        "cancelled stream worker did not record its cancellation"
    );
}

#[test]
fn explicit_cancel_yields_cancelled_error() {
    let (eng, gate, _registry) = gated_engine();

    let stream = eng.stream_query(QA);
    gate.wait_entered();
    stream.cancel();
    assert!(stream.is_cancelled());

    // The waiter gives up with Cancelled even while the model is still
    // blocked — cancellation never waits on the backend.
    let result = stream.wait();
    assert!(
        matches!(result, Err(lmql::Error::Cancelled)),
        "expected Err(Cancelled), got {result:?}"
    );
    gate.release();
}

#[test]
fn concurrent_streams_interleave_without_crosstalk() {
    let eng = ngram_engine();
    let streams: Vec<QueryStream> = eng.stream_queries(&[QA, QB]);
    let mut results = Vec::new();
    for stream in streams {
        let events: Vec<QueryEvent> = stream.events().collect();
        let rebuilt = Reassembler::from_events(&events).expect("reassembly");
        results.push((rebuilt, stream.wait().expect("stream run")));
    }
    for (rebuilt, direct) in &results {
        assert_eq!(rebuilt.runs[0].trace, direct.best().trace);
    }
    assert!(results[0].1.best().trace.contains("travelling"));
    assert!(results[1].1.best().trace.contains("ocean"));
}

#[test]
fn dropped_stream_cancels_its_subquery_tree() {
    // Regression: dropping a QueryStream must cancel not just the root
    // query but every subquery it spawned. The child's script is long
    // enough (600 chars at 5ms injected stall per call ≈ 3s) that it
    // cannot finish inside the poll window — the cancellation counter
    // firing proves the Drop reached down the tree.
    // The child source, pre-escaped for embedding in an LMQL string
    // literal.
    let child_src = r#"argmax\n    \"S:[B]\"\nfrom \"m\"\nwhere stops_at(B, \"!\")\n"#;
    let root_src = format!(
        "argmax\n    \"Q:[A]\"\n    sub = subquery(\"{child_src}\")\n    \"y{{sub}}\"\nfrom \"m\"\nwhere stops_at(A, \"\\n\")\n"
    );
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(lmql_lm::ScriptedLm::new(
        Arc::clone(&bpe),
        vec![
            lmql_lm::Episode::plain("Q:", " hi\n"),
            lmql_lm::Episode::plain("S:", format!("{}!", " x".repeat(300))),
        ],
    ));
    let chaos = Arc::new(lmql_lm::ChaosLm::new(
        lm,
        lmql_lm::FaultPlan {
            seed: 9,
            latency_rate: 1.0,
            latency: Duration::from_millis(5),
            ..lmql_lm::FaultPlan::default()
        },
    ));
    let registry = Registry::new();
    let eng = Engine::new_with_obs(
        chaos,
        bpe,
        EngineConfig::default(),
        EngineObs {
            tracer: Tracer::disabled(),
            registry: Some(registry.clone()),
        },
    );

    let stream = eng.stream_query(&root_src);
    while let Some(event) = stream.next_event() {
        if matches!(event, QueryEvent::SubqueryStart { .. }) {
            break;
        }
    }
    drop(stream);

    assert!(
        poll_counter(&registry, "engine.subquery.cancelled", 1) >= 1,
        "dropping the stream must cancel the in-flight subquery"
    );
    assert_eq!(
        poll_counter(&registry, "stream.cancelled", 1),
        1,
        "the root stream worker records its cancellation"
    );
}

/// Sanity for `lmql_tokenizer::Bpe` linkage in this test crate (the
/// engine's public surface hands out the tokenizer it was built with).
#[test]
fn engine_exposes_consistent_vocab() {
    let bpe: Arc<Bpe> = corpus::standard_bpe();
    let eng = Engine::new(
        corpus::standard_ngram(),
        Arc::clone(&bpe),
        EngineConfig::default(),
    );
    assert_eq!(eng.scheduler().vocab().len(), bpe.vocab().len());
}
