//! Long-context QA with Standard Decoding: stuff the whole context —
//! corpus, haystack or chat history — into the prompt and generate
//! chunk-wise until a stopping phrase, re-billing the full prompt on
//! every call. The baseline side of the retrieval-augmented workloads
//! (DESIGN.md §16): it has no retrieval tool, so its only option is to
//! pay for all of the context on every decoder call.

use crate::parsing::{earliest_stop, StopSpec};
use crate::Generator;

/// A prompt-everything completion task for the baseline.
#[derive(Debug, Clone)]
pub struct LongContextTask<'a> {
    /// The full prompt, context and question included.
    pub prompt: &'a str,
    /// Stopping phrase ending the answer (dropped from the output).
    pub stop: &'a str,
    /// Tokens per `generate()` call.
    pub chunk_size: usize,
    /// Upper bound on `generate()` calls.
    pub max_chunks: usize,
}

/// Generates chunk-wise until `task.stop` (or EOS / the chunk budget)
/// and returns the accumulated output truncated at the stop phrase.
pub fn complete(generator: &Generator, task: &LongContextTask<'_>) -> String {
    let mut acc = String::new();
    for _ in 0..task.max_chunks {
        let chunk = generator.generate(&format!("{}{acc}", task.prompt), task.chunk_size);
        if chunk.is_empty() {
            break; // EOS
        }
        acc.push_str(&chunk);
        if let Some(cut) = earliest_stop(&acc, &[StopSpec::exclusive(task.stop)]) {
            acc.truncate(cut);
            return acc;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Episode, ScriptedLm, UsageMeter};
    use std::sync::Arc;

    #[test]
    fn stops_at_phrase_and_bills_prompt_per_chunk() {
        let bpe = Arc::new(lmql_tokenizer::Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain("Answer:", " forty two END plus noise")],
        ));
        let meter = UsageMeter::new();
        let generator = Generator::new(lm, bpe, meter.clone());
        let out = complete(
            &generator,
            &LongContextTask {
                prompt: "Some very long context here.\nAnswer:",
                stop: " END",
                chunk_size: 6,
                max_chunks: 8,
            },
        );
        assert_eq!(out, " forty two");
        // Each chunk call re-bills the whole prompt.
        let usage = meter.snapshot();
        assert!(usage.decoder_calls >= 2, "{usage:?}");
        assert!(
            usage.billable_tokens > 2 * "Some very long context here.\nAnswer:".len() as u64,
            "{usage:?}"
        );
    }
}
