//! Chain-of-thought with Standard Decoding: chunk-wise generation of the
//! reasoning, manual truncation, then per-option answer scoring.
//! The `generate()` API cannot enforce the Fig. 10 token-level
//! constraints (no-newline, no-"Pick", word limits), so digressions pass
//! through and every chunk re-bills the prompt.

use crate::parsing::{earliest_stop, StopSpec};
use crate::Generator;

/// A chain-of-thought task instance for the baseline.
#[derive(Debug, Clone)]
pub struct CotTask<'a> {
    /// Few-shot prefix (examples, trailing blank line included).
    pub few_shot: &'a str,
    /// The question line (no trailing newline).
    pub question_line: &'a str,
    /// Answer options to score.
    pub options: &'a [String],
    /// Text between the reasoning and the scored answer
    /// (e.g. `"\nSo the odd one is "`).
    pub answer_prefix: &'a str,
    /// Tokens generated per `generate()` call.
    pub chunk_size: usize,
    /// Upper bound on reasoning chunks, to bound runaway generations.
    pub max_chunks: usize,
}

/// The baseline's output for one instance.
#[derive(Debug, Clone)]
pub struct CotOutput {
    /// The (truncated) reasoning text.
    pub reasoning: String,
    /// The highest-scoring option.
    pub answer: String,
    /// All options with normalised probabilities.
    pub distribution: Vec<(String, f64)>,
}

/// Runs the baseline program on one instance.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn run(generator: &Generator, task: &CotTask<'_>) -> CotOutput {
    assert!(!task.options.is_empty(), "need at least one option");
    let prompt = format!("{}{}\n", task.few_shot, task.question_line);

    // Generate the reasoning chunk-wise; stop at the first newline
    // (dropped) or sentence end (kept) — hand-rolled stand-ins for
    // stops_at(REASONING, ".") and the no-newline constraint.
    let stops = [StopSpec::exclusive("\n"), StopSpec::inclusive(".")];
    let mut reasoning = String::new();
    for _ in 0..task.max_chunks {
        let chunk = generator.generate(&format!("{prompt}{reasoning}"), task.chunk_size);
        if chunk.is_empty() {
            break;
        }
        reasoning.push_str(&chunk);
        if let Some(cut) = earliest_stop(&reasoning, &stops) {
            reasoning.truncate(cut);
            break;
        }
    }

    // Score each option as a continuation (one decoder call per option,
    // same as LMQL's distribute clause).
    let ctx = format!("{prompt}{reasoning}{}", task.answer_prefix);
    let log_probs: Vec<f64> = task
        .options
        .iter()
        .map(|o| generator.score(&ctx, o))
        .collect();
    let max = log_probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_probs.iter().map(|lp| (lp - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    let distribution: Vec<(String, f64)> = task
        .options
        .iter()
        .cloned()
        .zip(exps.iter().map(|e| e / z))
        .collect();
    let answer = distribution
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("probabilities are never NaN"))
        .map(|(o, _)| o.clone())
        .expect("options are non-empty");

    CotOutput {
        reasoning,
        answer,
        distribution,
    }
}
