//! ReAct with Standard Decoding: generate chunk-wise until a full line
//! appears, interpret Tho/Act lines by hand, inject Obs lines after
//! lookups, re-prompt — discarding whatever the model generated past the
//! line boundary. Every line costs at least one `generate()` call that
//! re-bills the whole growing prompt.

use crate::parsing::{earliest_stop, StopSpec};
use crate::Generator;
use lmql_datasets::wiki::MiniWiki;

/// A ReAct task instance for the baseline.
#[derive(Debug, Clone)]
pub struct ReactTask<'a> {
    /// Few-shot prefix.
    pub few_shot: &'a str,
    /// The question line (starts with `Q:`).
    pub question: &'a str,
    /// Tokens per `generate()` call.
    pub chunk_size: usize,
    /// Upper bound on interpreted lines.
    pub max_lines: usize,
}

/// The baseline's transcript and extracted answer.
#[derive(Debug, Clone)]
pub struct ReactOutput {
    /// The accumulated Tho/Act/Obs transcript.
    pub transcript: String,
    /// The argument of the `Finish` action, if one was produced.
    pub answer: Option<String>,
}

/// Runs the baseline ReAct interpreter on one instance.
pub fn run(generator: &Generator, wiki: &MiniWiki, task: &ReactTask<'_>) -> ReactOutput {
    let prompt = format!("{}{}\n", task.few_shot, task.question);
    let mut transcript = String::new();
    let mut answer = None;

    'lines: for _ in 0..task.max_lines {
        // Accumulate chunks until a full line is available; text past the
        // newline is generated-and-discarded waste.
        let mut acc = String::new();
        let line = loop {
            let chunk = generator.generate(&format!("{prompt}{transcript}{acc}"), task.chunk_size);
            if chunk.is_empty() && acc.is_empty() {
                break 'lines; // model ended the episode
            }
            acc.push_str(&chunk);
            if let Some(cut) = earliest_stop(&acc, &[StopSpec::exclusive("\n")]) {
                break acc[..cut].to_owned();
            }
            if chunk.is_empty() {
                break acc.clone(); // EOS without newline
            }
        };

        if let Some(rest) = line.strip_prefix("Act:") {
            transcript.push_str(&line);
            transcript.push('\n');
            let rest = rest.trim_start();
            if let Some(subject) = rest
                .strip_prefix("Search '")
                .and_then(|s| s.strip_suffix('\''))
            {
                let obs = wiki.search(subject);
                transcript.push_str(&format!("Obs: {obs}\n"));
            } else if let Some(arg) = rest
                .strip_prefix("Finish '")
                .and_then(|s| s.strip_suffix('\''))
            {
                answer = Some(arg.to_owned());
                break;
            }
        } else {
            // Thought (or anything else): keep verbatim.
            transcript.push_str(&line);
            transcript.push('\n');
        }
    }

    ReactOutput { transcript, answer }
}
