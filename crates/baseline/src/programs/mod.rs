//! Hand-written baseline programs, mirroring the paper's Python `generate()`
//! implementations of each case study. Their line counts feed Table 4.

pub mod arith;
pub mod cot;
pub mod longctx;
pub mod react;

/// Source text of the baseline programs, for the Table 4 LOC comparison.
pub const COT_SOURCE: &str = include_str!("cot.rs");
/// Source text of the ReAct baseline.
pub const REACT_SOURCE: &str = include_str!("react.rs");
/// Source text of the arithmetic baseline.
pub const ARITH_SOURCE: &str = include_str!("arith.rs");
