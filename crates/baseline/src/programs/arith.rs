//! Arithmetic reasoning with Standard Decoding: scan chunk-wise output
//! for `<<` calculation hooks, evaluate them externally, splice results
//! back, re-prompt; extract the final integer after "So the answer is".
//! Each hook forces a fresh `generate()` call billing the entire
//! prompt-plus-completion again.

use crate::Generator;
use lmql_datasets::calculator;

/// An arithmetic task instance for the baseline.
#[derive(Debug, Clone)]
pub struct ArithTask<'a> {
    /// Few-shot prefix.
    pub few_shot: &'a str,
    /// The question text (without `Q:`).
    pub question: &'a str,
    /// Tokens per `generate()` call.
    pub chunk_size: usize,
    /// Upper bound on `generate()` rounds.
    pub max_rounds: usize,
}

/// The baseline's completion and extracted answer.
#[derive(Debug, Clone)]
pub struct ArithOutput {
    /// The completion with calculator results spliced in.
    pub completion: String,
    /// The final integer answer, if found.
    pub answer: Option<String>,
}

/// Runs the baseline arithmetic interpreter on one instance.
pub fn run(generator: &Generator, task: &ArithTask<'_>) -> ArithOutput {
    let prompt = format!(
        "{}Q: {}\nA: Let's think step by step.\n",
        task.few_shot, task.question
    );
    let mut completion = String::new();
    let mut acc = String::new();

    for _ in 0..task.max_rounds {
        let chunk = generator.generate(&format!("{prompt}{completion}{acc}"), task.chunk_size);
        let ended = chunk.is_empty();
        acc.push_str(&chunk);

        // Hand-rolled scanning for the calculation hook.
        if let Some(open) = acc.find("<<") {
            if let Some(eq_rel) = acc[open..].find('=') {
                let eq = open + eq_rel;
                let expr = &acc[open + 2..eq];
                let spliced = match calculator::run(expr) {
                    Ok(v) => format!("{} {v} >>", &acc[..eq + 1]),
                    Err(_) => format!("{} ? >>", &acc[..eq + 1]),
                };
                completion.push_str(&spliced);
                acc.clear(); // discard whatever the model guessed after `=`
                continue;
            }
            // `<<` seen but `=` not yet generated: keep accumulating.
            if !ended {
                continue;
            }
        }

        // Final-answer scanning.
        if let Some(pos) = acc.find("So the answer is") {
            let tail = &acc[pos + "So the answer is".len()..];
            let digits: String = tail
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit() || *c == '-')
                .collect();
            if !digits.is_empty() {
                completion.push_str(&acc[..pos + "So the answer is".len()]);
                completion.push(' ');
                completion.push_str(&digits);
                return ArithOutput {
                    completion,
                    answer: Some(digits),
                };
            }
            if !ended {
                continue; // answer digits not fully generated yet
            }
        }

        if ended {
            completion.push_str(&acc);
            break;
        }
    }

    ArithOutput {
        completion,
        answer: None,
    }
}
