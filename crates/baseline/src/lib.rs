//! The paper's *Standard Decoding* baseline: a high-level `generate()`
//! API in the style of HuggingFace Transformers, plus hand-written task
//! programs built on top of it.
//!
//! Per §6 ("Baseline"), this interface deliberately has **no token-level
//! control**: no masks, no declarative constraints. Programs generate
//! output chunk-wise, parse it manually, truncate at stopping phrases and
//! re-prompt — paying for the prompt again on every call. The hand-rolled
//! programs in [`programs`] mirror the paper's Python baselines for
//! chain-of-thought, ReAct and arithmetic reasoning.

pub mod programs;

mod generate;
mod parsing;

pub use generate::Generator;
pub use parsing::{earliest_stop, StopSpec};
