//! Hand-rolled output parsing — the manual work the paper's baseline has
//! to do in place of declarative `stops_at` constraints.

/// A stopping phrase and whether the phrase itself is kept in the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopSpec<'a> {
    /// The phrase to stop at.
    pub phrase: &'a str,
    /// Keep the phrase in the truncated output (`stops_at` keeps it;
    /// newline-style stops usually drop it).
    pub inclusive: bool,
}

impl<'a> StopSpec<'a> {
    /// An inclusive stop (phrase kept).
    pub fn inclusive(phrase: &'a str) -> Self {
        StopSpec {
            phrase,
            inclusive: true,
        }
    }

    /// An exclusive stop (phrase dropped).
    pub fn exclusive(phrase: &'a str) -> Self {
        StopSpec {
            phrase,
            inclusive: false,
        }
    }
}

/// Finds the earliest occurrence of any stop phrase. Returns the byte
/// index where the output should be truncated, or `None` if no phrase
/// occurs.
pub fn earliest_stop(text: &str, stops: &[StopSpec<'_>]) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (occurrence, cut)
    for s in stops {
        if let Some(pos) = text.find(s.phrase) {
            let cut = if s.inclusive {
                pos + s.phrase.len()
            } else {
                pos
            };
            if best.is_none_or(|(b, _)| pos < b) {
                best = Some((pos, cut));
            }
        }
    }
    best.map(|(_, cut)| cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_wins() {
        let stops = [StopSpec::exclusive("\n"), StopSpec::inclusive(".")];
        assert_eq!(earliest_stop("ab.cd\nef", &stops), Some(3));
        assert_eq!(earliest_stop("ab\ncd.ef", &stops), Some(2));
        assert_eq!(earliest_stop("no stops here", &stops), None);
    }

    #[test]
    fn inclusive_keeps_phrase() {
        let text = "reasoning done. extra";
        let cut = earliest_stop(text, &[StopSpec::inclusive(".")]).unwrap();
        assert_eq!(&text[..cut], "reasoning done.");
    }

    #[test]
    fn exclusive_drops_phrase() {
        let text = "line one\nline two";
        let cut = earliest_stop(text, &[StopSpec::exclusive("\n")]).unwrap();
        assert_eq!(&text[..cut], "line one");
    }
}
