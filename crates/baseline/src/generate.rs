//! The chunk-wise `generate()` API.

use lmql_lm::{LanguageModel, UsageMeter};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

/// A high-level text-in/text-out generation handle (the baseline's
/// equivalent of `transformers`' `generate()`).
///
/// Every [`Generator::generate`] call starts a fresh decoding loop: one
/// decoder call billing prompt tokens + generated tokens (§6 metrics) —
/// the accounting that makes chunk-wise decoding expensive.
pub struct Generator {
    lm: Arc<dyn LanguageModel>,
    bpe: Arc<Bpe>,
    meter: UsageMeter,
    temperature: f64,
}

impl std::fmt::Debug for Generator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generator")
            .field("temperature", &self.temperature)
            .finish_non_exhaustive()
    }
}

impl Generator {
    /// A generator over a model/tokenizer pair, metering on `meter`.
    ///
    /// # Panics
    ///
    /// Panics if the model and tokenizer vocabularies differ in size.
    pub fn new(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>, meter: UsageMeter) -> Self {
        assert_eq!(
            lm.vocab().len(),
            bpe.vocab().len(),
            "model and tokenizer vocabulary mismatch"
        );
        Generator {
            lm,
            bpe,
            meter,
            temperature: 1.0,
        }
    }

    /// Sets the softmax temperature (greedy pick is still used; the
    /// temperature only shapes scores for [`Generator::score`]).
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// The tokenizer in use.
    pub fn bpe(&self) -> &Arc<Bpe> {
        &self.bpe
    }

    /// The meter this generator bills to.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Greedily generates up to `max_new_tokens` continuation tokens for
    /// `prompt`, stopping early only at EOS. No constraints, no masks —
    /// the caller parses and truncates by hand.
    pub fn generate(&self, prompt: &str, max_new_tokens: usize) -> String {
        let mut ctx = self.bpe.encode(prompt);
        let prompt_tokens = ctx.len();
        let eos = self.bpe.vocab().eos();
        let mut out = String::new();
        let mut generated = 0usize;
        while generated < max_new_tokens {
            self.meter.record_model_query();
            let dist = self.lm.score(&ctx).softmax(self.temperature);
            let t = dist.argmax();
            if t == eos {
                break;
            }
            out.push_str(self.bpe.vocab().token_str(t));
            ctx.push(t);
            generated += 1;
        }
        self.meter
            .record_decoder_call((prompt_tokens + generated) as u64);
        out
    }

    /// Log-probability of `continuation` following `prompt` (used to
    /// score answer options). Starts its own decoding loop: one decoder
    /// call billing prompt + continuation.
    pub fn score(&self, prompt: &str, continuation: &str) -> f64 {
        let base = self.bpe.encode(prompt);
        let full = self.bpe.encode(&format!("{prompt}{continuation}"));
        let common = base.iter().zip(&full).take_while(|(a, b)| a == b).count();
        let mut ctx = full[..common].to_vec();
        let mut lp = 0.0;
        for &t in &full[common..] {
            self.meter.record_model_query();
            let dist = self.lm.score(&ctx).softmax(self.temperature);
            lp += dist.log_prob(t);
            ctx.push(t);
        }
        self.meter.record_decoder_call(full.len() as u64);
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::{Episode, ScriptedLm};

    fn gen(script: &str) -> (Generator, UsageMeter) {
        let bpe = Arc::new(lmql_tokenizer::Bpe::char_level(""));
        let lm = Arc::new(ScriptedLm::new(
            Arc::clone(&bpe),
            [Episode::plain("P:", script)],
        ));
        let meter = UsageMeter::new();
        (Generator::new(lm, bpe, meter.clone()), meter)
    }

    #[test]
    fn generates_chunks_and_bills_prompt_each_time() {
        let (g, meter) = gen(" abcdef");
        let first = g.generate("P:", 3);
        assert_eq!(first, " ab");
        let second = g.generate(&format!("P:{first}"), 3);
        assert_eq!(second, "cde");
        let u = meter.snapshot();
        assert_eq!(u.decoder_calls, 2);
        // prompt(2) + 3 generated, then prompt(5) + 3 generated
        assert_eq!(u.billable_tokens, (2 + 3) + (5 + 3));
        assert_eq!(u.model_queries, 6);
    }

    #[test]
    fn stops_at_eos() {
        let (g, _) = gen(" hi");
        let out = g.generate("P:", 50);
        assert_eq!(out, " hi");
    }

    #[test]
    fn score_prefers_script_continuation() {
        let (g, meter) = gen(" yes");
        let good = g.score("P:", " yes");
        let bad = g.score("P:", " nah");
        assert!(good > bad);
        assert_eq!(meter.snapshot().decoder_calls, 2);
    }
}
