//! Integration tests: the baseline programs against scripted models built
//! from dataset instances.

use lmql_baseline::programs::{arith, cot, react};
use lmql_baseline::Generator;
use lmql_datasets::wiki::MiniWiki;
use lmql_datasets::{gsm8k, hotpot, odd_one_out, GPT_J_PROFILE};
use lmql_lm::{Digression, Episode, ScriptedLm, UsageMeter};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn scripted(trigger: String, script: String, dig: Option<Digression>) -> (Generator, UsageMeter) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode {
            trigger,
            script,
            digressions: dig.into_iter().collect(),
            branches: vec![],
        }],
    ));
    let meter = UsageMeter::new();
    (Generator::new(lm, bpe, meter.clone()), meter)
}

#[test]
fn cot_baseline_follows_clean_script() {
    let inst = odd_one_out::generate(10, 11, &GPT_J_PROFILE)
        .into_iter()
        .find(|i| i.digression.is_none())
        .expect("some instance is clean");
    let question_line = format!("Pick the odd word out: {}", inst.options_line);
    let trigger = format!("{question_line}\n");
    let (generator, meter) = scripted(trigger, inst.script().to_string(), None);
    let out = cot::run(
        &generator,
        &cot::CotTask {
            few_shot: odd_one_out::FEW_SHOT,
            question_line: &question_line,
            options: &inst.options,
            answer_prefix: "\nSo the odd one is ",
            chunk_size: 30,
            max_chunks: 8,
        },
    );
    assert_eq!(out.reasoning, inst.reasoning);
    assert_eq!(out.answer, inst.model_answer);
    assert!(meter.snapshot().decoder_calls >= 2);
}

#[test]
fn cot_baseline_derails_on_digression() {
    let inst = odd_one_out::generate(50, 12, &GPT_J_PROFILE)
        .into_iter()
        .find(|i| {
            i.digression
                .as_ref()
                .is_some_and(|d| d.derailed_answer != i.model_answer)
        })
        .expect("some instance digresses to a different answer");
    let d = inst.digression.clone().unwrap();
    let question_line = format!("Pick the odd word out: {}", inst.options_line);
    let (generator, _) = scripted(
        format!("{question_line}\n"),
        inst.script(),
        Some(Digression {
            at: d.at,
            text: d.text.clone(),
            replace_remainder: Some(format!("\nSo the odd one is {}.", d.derailed_answer)),
        }),
    );
    let out = cot::run(
        &generator,
        &cot::CotTask {
            few_shot: odd_one_out::FEW_SHOT,
            question_line: &question_line,
            options: &inst.options,
            answer_prefix: "\nSo the odd one is ",
            chunk_size: 30,
            max_chunks: 8,
        },
    );
    // The baseline's reasoning got cut at the digression newline: it lost
    // the conclusion entirely, so its answer is no longer grounded in the
    // model's intended reasoning (the accuracy-dilution mechanism §6.1
    // describes). The scored distribution is close to uniform.
    assert_eq!(out.reasoning, inst.reasoning[..d.at]);
    assert!(inst.options.contains(&out.answer));
}

#[test]
fn react_baseline_reaches_finish() {
    let inst = &hotpot::generate(5, 3, &GPT_J_PROFILE)[0];
    let (generator, meter) = scripted(format!("{}\n", inst.question), inst.script.clone(), None);
    let wiki = MiniWiki::standard();
    let out = react::run(
        &generator,
        &wiki,
        &react::ReactTask {
            few_shot: hotpot::FEW_SHOT,
            question: &inst.question,
            chunk_size: 30,
            max_lines: 16,
        },
    );
    assert_eq!(out.answer.as_deref(), Some(inst.gold.as_str()));
    assert!(out.transcript.contains("Obs: "));
    let u = meter.snapshot();
    assert!(u.decoder_calls >= 4, "chunk-wise: many calls, got {u:?}");
}

#[test]
fn arith_baseline_computes_and_answers() {
    let inst = &gsm8k::generate(5, 4, &GPT_J_PROFILE)[0];
    let (generator, meter) = scripted(
        format!("Q: {}\nA: Let's think step by step.\n", inst.question),
        inst.script.clone(),
        None,
    );
    let out = arith::run(
        &generator,
        &arith::ArithTask {
            few_shot: gsm8k::FEW_SHOT,
            question: &inst.question,
            chunk_size: 30,
            max_rounds: 40,
        },
    );
    assert_eq!(
        out.answer.as_deref(),
        Some(inst.answer.to_string().as_str())
    );
    for (_, v) in &inst.expressions {
        assert!(
            out.completion.contains(&format!(" {v} >>")),
            "missing spliced result {v} in {:?}",
            out.completion
        );
    }
    assert!(meter.snapshot().decoder_calls >= inst.expressions.len() as u64);
}
