//! Property-based tests for the dataset crate.

// Property suites ride behind the default-off `slow-tests` feature:
// run them with `cargo test --features slow-tests`.
#![cfg(feature = "slow-tests")]

use lmql_datasets::calculator;
use lmql_datasets::date_understanding::Date;
use lmql_datasets::{
    date_understanding, gsm8k, hotpot, odd_one_out, GPT_35_PROFILE, GPT_J_PROFILE,
};
use proptest::prelude::*;

/// A random arithmetic expression tree, returned with its exact value
/// (built only from subtrees whose evaluation stays exact in i64).
fn expr_strategy() -> impl Strategy<Value = (String, i64)> {
    let leaf = (0i64..200).prop_map(|n| (n.to_string(), n));
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner, 0u8..3).prop_map(|((sa, va), (sb, vb), op)| match op {
            0 => (format!("({sa}+{sb})"), va + vb),
            1 => (format!("({sa}-{sb})"), va - vb),
            _ => (format!("({sa}*{sb})"), va * vb),
        })
    })
}

proptest! {
    /// The calculator agrees with direct evaluation on random expressions.
    #[test]
    fn calculator_matches_oracle((expr, value) in expr_strategy()) {
        prop_assert_eq!(calculator::run(&expr).unwrap(), value);
        // With the Fig. 13 trailing `=` too.
        prop_assert_eq!(calculator::run(&format!("{expr}=")).unwrap(), value);
    }

    /// Whitespace around operators and parentheses never changes a
    /// calculator result (splitting digit runs would change the tokens,
    /// so spaces only go next to non-digits).
    #[test]
    fn calculator_ignores_spacing((expr, value) in expr_strategy(), seed in 0u64..1000) {
        let mut spaced = String::new();
        for (i, c) in expr.chars().enumerate() {
            if !c.is_ascii_digit()
                && (seed.wrapping_mul(31).wrapping_add(i as u64)) % 3 == 0
            {
                spaced.push(' ');
                spaced.push(c);
                spaced.push(' ');
            } else {
                spaced.push(c);
            }
        }
        prop_assert_eq!(calculator::run(&spaced).unwrap(), value);
    }

    /// Date arithmetic is an action of the integers: adding then
    /// subtracting any day count round-trips.
    #[test]
    fn date_plus_days_roundtrips(
        year in 2000i32..2030,
        month in 1u32..=12,
        day in 1u32..=28,
        delta in -1000i32..1000,
    ) {
        let d = Date::new(year, month, day);
        prop_assert_eq!(d.plus_days(delta).plus_days(-delta), d);
    }

    /// Generators are deterministic in their seed and produce consistent
    /// instances at any size.
    #[test]
    fn generators_deterministic(n in 1usize..30, seed in 0u64..50) {
        prop_assert_eq!(
            odd_one_out::generate(n, seed, &GPT_J_PROFILE),
            odd_one_out::generate(n, seed, &GPT_J_PROFILE)
        );
        prop_assert_eq!(
            gsm8k::generate(n, seed, &GPT_35_PROFILE),
            gsm8k::generate(n, seed, &GPT_35_PROFILE)
        );
        prop_assert_eq!(
            hotpot::generate(n, seed, &GPT_J_PROFILE),
            hotpot::generate(n, seed, &GPT_J_PROFILE)
        );
        prop_assert_eq!(
            date_understanding::generate(n, seed, &GPT_J_PROFILE),
            date_understanding::generate(n, seed, &GPT_J_PROFILE)
        );
    }

    /// Every generated GSM8K expression evaluates to its recorded value,
    /// and the final expression's value is the instance answer.
    #[test]
    fn gsm8k_expressions_consistent(n in 1usize..20, seed in 0u64..50) {
        for inst in gsm8k::generate(n, seed, &GPT_J_PROFILE) {
            for (expr, v) in &inst.expressions {
                prop_assert_eq!(calculator::run(expr).unwrap(), *v);
            }
            prop_assert_eq!(inst.expressions.last().unwrap().1, inst.answer);
        }
    }

    /// Odd One Out digressions sit on char boundaries inside the
    /// reasoning and never conclude the gold answer.
    #[test]
    fn ooo_digressions_well_formed(n in 1usize..40, seed in 0u64..50) {
        for inst in odd_one_out::generate(n, seed, &GPT_J_PROFILE) {
            if let Some(d) = &inst.digression {
                prop_assert!(inst.reasoning.is_char_boundary(d.at));
                prop_assert!(d.at < inst.reasoning.len());
                prop_assert!(d.text.starts_with('\n'));
                prop_assert!(d.derailed_answer != inst.gold);
                prop_assert!(inst.options.contains(&d.derailed_answer));
            }
        }
    }
}
