//! Two-hop questions over the mini wiki — the HotpotQA stand-in driving
//! the ReAct case study (§6.2).
//!
//! Each instance carries the full intended ReAct transcript (Tho/Act/Obs
//! lines, with Obs text exactly as [`MiniWiki::search`] returns it), so a
//! `ScriptedLm` can play the model side while the runtime performs the
//! real lookups.

use crate::wiki::{MiniWiki, COMPANIES, PEOPLE};
use crate::ModelProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Few-shot demonstration of the ReAct pattern (Fig. 11 flavour).
pub const FEW_SHOT: &str = "Q: Where is the company that Jordan Lee works at headquartered?\n\
Tho: I need to search Jordan Lee and find the company they work at.\n\
Act: Search 'Jordan Lee'\n\
Obs: Jordan Lee is a biologist who works at Coral Systems.\n\
Tho: Jordan Lee works at Coral Systems. I need to search Coral Systems.\n\
Act: Search 'Coral Systems'\n\
Obs: Coral Systems is a company that makes reef sensors. Coral Systems is headquartered in Havana.\n\
Tho: Coral Systems is headquartered in Havana.\n\
Act: Finish 'Havana'\n\n";

/// One two-hop question instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The question line (starts with `Q:`).
    pub question: String,
    /// The entities to look up, in order.
    pub hops: Vec<String>,
    /// The gold answer (a city).
    pub gold: String,
    /// The intended model completion after the question line: the full
    /// Tho/Act/Obs transcript ending in a `Finish` action.
    pub script: String,
    /// A rambling-thought digression (`at` is a char offset into
    /// `script`), if the model would digress when unconstrained.
    pub digression: Option<crate::odd_one_out::Digression>,
}

impl Instance {
    /// `true` if `answer` matches the gold city.
    pub fn is_correct(&self, answer: &str) -> bool {
        answer.trim() == self.gold
    }
}

/// Generates `n` seeded instances over the standard wiki.
pub fn generate(n: usize, seed: u64, profile: &ModelProfile) -> Vec<Instance> {
    let wiki = MiniWiki::standard();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4007_0707);
    (0..n).map(|_| instance(&mut rng, &wiki, profile)).collect()
}

fn instance(rng: &mut StdRng, wiki: &MiniWiki, profile: &ModelProfile) -> Instance {
    let (person, _, company) = PEOPLE[rng.gen_range(0..PEOPLE.len())];
    let (_, _, city) = COMPANIES
        .iter()
        .find(|(c, _, _)| c == &company)
        .expect("person tables reference known companies");

    let question = format!("Q: Where is the company that {person} works at headquartered?");
    let obs1 = wiki.search(person);
    let obs2 = wiki.search(company);

    let script = format!(
        "Tho: I need to search {person} and find the company they work at.\n\
         Act: Search '{person}'\n\
         Obs: {obs1}\n\
         Tho: {person} works at {company}. I need to search {company}.\n\
         Act: Search '{company}'\n\
         Obs: {obs2}\n\
         Tho: {company} is headquartered in {city}.\n\
         Act: Finish '{city}'\n"
    );

    // The ReAct case study measures cost, not accuracy (§6.2), and its
    // savings are structural (chunk-wise decoding re-bills the long
    // prompt every call); content digressions are not needed to
    // reproduce the table, so ReAct scripts stay clean.
    let _ = profile;

    Instance {
        question,
        hops: vec![person.to_owned(), company.to_owned()],
        gold: (*city).to_owned(),
        script,
        digression: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GPT_J_PROFILE;

    #[test]
    fn scripts_end_with_finish() {
        for inst in generate(20, 1, &GPT_J_PROFILE) {
            assert!(inst.script.contains("Act: Search"));
            assert!(inst
                .script
                .ends_with(&format!("Act: Finish '{}'\n", inst.gold)));
        }
    }

    #[test]
    fn obs_lines_match_wiki_search() {
        let wiki = MiniWiki::standard();
        for inst in generate(20, 2, &GPT_J_PROFILE) {
            for hop in &inst.hops {
                let obs = wiki.search(hop);
                assert!(
                    inst.script.contains(&format!("Obs: {obs}\n")),
                    "script missing obs for {hop}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(10, 3, &GPT_J_PROFILE),
            generate(10, 3, &GPT_J_PROFILE)
        );
    }

    #[test]
    fn react_scripts_do_not_digress() {
        let instances = generate(100, 4, &GPT_J_PROFILE);
        assert!(instances.iter().all(|i| i.digression.is_none()));
    }

    #[test]
    fn gold_is_a_company_city() {
        let cities: Vec<&str> = COMPANIES.iter().map(|(_, _, c)| *c).collect();
        for inst in generate(20, 5, &GPT_J_PROFILE) {
            assert!(cities.contains(&inst.gold.as_str()));
        }
    }
}
