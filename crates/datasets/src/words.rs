//! Word pools for the Odd One Out generator.

/// A semantic category with member words and the phrase used in reasoning
/// text ("skirt is clothing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category {
    /// Category name as used in reasoning sentences.
    pub name: &'static str,
    /// Member words.
    pub words: &'static [&'static str],
}

/// All categories the generator draws from.
pub const CATEGORIES: &[Category] = &[
    Category {
        name: "clothing",
        words: &[
            "skirt", "dress", "jacket", "shirt", "trousers", "coat", "sweater",
        ],
    },
    Category {
        name: "a country",
        words: &[
            "Spain",
            "France",
            "England",
            "Singapore",
            "Brazil",
            "Japan",
            "Kenya",
        ],
    },
    Category {
        name: "a language",
        words: &["German", "Mandarin", "Swahili", "Spanish", "Finnish"],
    },
    Category {
        name: "an animal",
        words: &["penguin", "giraffe", "otter", "badger", "lynx", "heron"],
    },
    Category {
        name: "a fruit",
        words: &["apple", "mango", "papaya", "cherry", "quince", "plum"],
    },
    Category {
        name: "a color",
        words: &["crimson", "teal", "ochre", "violet", "indigo"],
    },
    Category {
        name: "an instrument",
        words: &["violin", "oboe", "trumpet", "cello", "bassoon"],
    },
    Category {
        name: "a profession",
        words: &["plumber", "teacher", "surgeon", "carpenter", "pilot"],
    },
    Category {
        name: "a vehicle",
        words: &["tram", "bicycle", "truck", "scooter", "ferry"],
    },
    Category {
        name: "an object",
        words: &["pen", "bucket", "ladder", "kettle", "hammer", "stapler"],
    },
];

/// The category a word belongs to, if any.
pub fn category_of(word: &str) -> Option<&'static Category> {
    CATEGORIES.iter().find(|c| c.words.contains(&word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_unique_across_categories() {
        let mut seen = std::collections::HashSet::new();
        for c in CATEGORIES {
            for w in c.words {
                assert!(seen.insert(*w), "duplicate word {w}");
            }
        }
    }

    #[test]
    fn category_lookup() {
        assert_eq!(category_of("pen").unwrap().name, "an object");
        assert!(category_of("zzz").is_none());
    }
}
