//! The external calculator tool used by the arithmetic case study
//! (the paper's Fig. 13 `calculator.run(EXPR)`).

use std::fmt;

/// Error produced for malformed arithmetic expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalcError(String);

impl fmt::Display for CalcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calculator error: {}", self.0)
    }
}

impl std::error::Error for CalcError {}

/// Evaluates an arithmetic expression over integers with `+ - * /`,
/// parentheses and unary minus. A single trailing `=` (as produced by the
/// `stops_at(EXPR, "=")` pattern of Fig. 13) is tolerated and ignored.
/// Division is exact integer division and errors on a non-zero remainder
/// or division by zero.
///
/// # Errors
///
/// Returns [`CalcError`] for malformed input.
///
/// # Example
///
/// ```
/// use lmql_datasets::calculator::run;
///
/// assert_eq!(run(" 8*60= ").unwrap(), 480);
/// assert_eq!(run("(2+3)*4").unwrap(), 20);
/// assert!(run("2//3").is_err());
/// ```
pub fn run(expr: &str) -> Result<i64, CalcError> {
    let cleaned = expr.trim().trim_end_matches('=').trim();
    let chars: Vec<char> = cleaned.chars().collect();
    let mut p = Parser { chars, i: 0 };
    let v = p.expr()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(CalcError(format!("trailing input at {}", p.i)));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.i).is_some_and(|c| c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.i).copied()
    }

    fn expr(&mut self) -> Result<i64, CalcError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.i += 1;
                    acc = acc
                        .checked_add(self.term()?)
                        .ok_or_else(|| CalcError("overflow".into()))?;
                }
                Some('-') => {
                    self.i += 1;
                    acc = acc
                        .checked_sub(self.term()?)
                        .ok_or_else(|| CalcError("overflow".into()))?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<i64, CalcError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.i += 1;
                    acc = acc
                        .checked_mul(self.factor()?)
                        .ok_or_else(|| CalcError("overflow".into()))?;
                }
                Some('/') => {
                    self.i += 1;
                    let d = self.factor()?;
                    if d == 0 {
                        return Err(CalcError("division by zero".into()));
                    }
                    if acc % d != 0 {
                        return Err(CalcError("non-integer division".into()));
                    }
                    acc /= d;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<i64, CalcError> {
        match self.peek() {
            Some('-') => {
                self.i += 1;
                Ok(-self.factor()?)
            }
            Some('(') => {
                self.i += 1;
                let v = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(CalcError("expected `)`".into()));
                }
                self.i += 1;
                Ok(v)
            }
            Some(c) if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(c) = self.chars.get(self.i).copied() {
                    if let Some(d) = c.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as i64))
                            .ok_or_else(|| CalcError("number too large".into()))?;
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                Ok(n)
            }
            other => Err(CalcError(format!("unexpected input {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_and_parens() {
        assert_eq!(run("2+3*4").unwrap(), 14);
        assert_eq!(run("(2+3)*4").unwrap(), 20);
        assert_eq!(run("20/4/5").unwrap(), 1);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(run("-3+5").unwrap(), 2);
        assert_eq!(run("2*-3").unwrap(), -6);
    }

    #[test]
    fn trailing_equals_tolerated() {
        assert_eq!(run("8*60=").unwrap(), 480);
        assert_eq!(run(" 4*30 = ").unwrap(), 120);
    }

    #[test]
    fn errors() {
        assert!(run("").is_err());
        assert!(run("2+").is_err());
        assert!(run("1/0").is_err());
        assert!(run("7/2").is_err());
        assert!(run("2 3").is_err());
        assert!(run("(1+2").is_err());
    }
}
