//! Synthetic workloads for the LMQL reproduction.
//!
//! The paper evaluates on BIG-bench *Odd One Out* and *Date
//! Understanding*, HotpotQA and GSM8K, with live Wikipedia lookups and a
//! calculator tool. None of those datasets/services are available offline,
//! so this crate generates seeded synthetic equivalents with gold labels:
//!
//! - [`odd_one_out`] — pick the word that doesn't belong (word pools by
//!   category),
//! - [`date_understanding`] — date arithmetic multiple choice,
//! - [`wiki`] — a mini in-memory encyclopedia with keyword search,
//! - [`hotpot`] — two-hop questions over the mini wiki (ReAct workload),
//! - [`gsm8k`] — arithmetic word problems with per-step expressions,
//! - [`calculator`] — the external arithmetic evaluator tool,
//! - [`tools`] — calculator and wiki lookup as first-class LMQL
//!   [`Tool`](lmql::Tool)s (DESIGN.md §16).
//!
//! Instances also carry the *intended model behaviour* (ideal reasoning
//! text, a possibly-wrong model answer, optional digressions) so the
//! benchmark harness can build `ScriptedLm` episodes; see DESIGN.md §2 for
//! the substitution rationale.

pub mod calculator;
pub mod date_understanding;
pub mod gsm8k;
pub mod hotpot;
pub mod odd_one_out;
pub mod tools;
pub mod wiki;

mod words;

pub use words::{category_of, Category, CATEGORIES};

/// Behavioural profile of a simulated evaluation model (the stand-ins for
/// the paper's GPT-J-6B / OPT-30B / GPT-3.5 rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Display name used in result tables.
    pub name: &'static str,
    /// Probability that the model's intended answer is the gold answer.
    pub p_correct: f64,
    /// Probability that the model digresses mid-reasoning when
    /// unconstrained.
    pub p_digress: f64,
}

/// Profile approximating the paper's GPT-J-6B accuracy levels.
pub const GPT_J_PROFILE: ModelProfile = ModelProfile {
    name: "gpt-j-6b-sim",
    p_correct: 0.36,
    p_digress: 0.22,
};

/// Profile approximating the paper's OPT-30B accuracy levels.
pub const OPT_30B_PROFILE: ModelProfile = ModelProfile {
    name: "opt-30b-sim",
    p_correct: 0.40,
    p_digress: 0.18,
};

/// Profile approximating the paper's GPT-3.5 control run (§6.1).
pub const GPT_35_PROFILE: ModelProfile = ModelProfile {
    name: "gpt-3.5-sim",
    p_correct: 0.86,
    p_digress: 0.10,
};
