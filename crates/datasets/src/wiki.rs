//! A mini in-memory encyclopedia with keyword search — the stand-in for
//! the paper's Wikipedia lookups in the ReAct case study (§6.2).

/// One encyclopedia article.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Article {
    /// The article title.
    pub title: String,
    /// The first-paragraph text returned by searches.
    pub text: String,
}

/// The in-memory encyclopedia.
#[derive(Debug, Clone, Default)]
pub struct MiniWiki {
    articles: Vec<Article>,
}

/// The entity tables the builder wires together: people work at
/// companies, companies are headquartered in cities.
pub const PEOPLE: &[(&str, &str, &str)] = &[
    // (name, profession, company)
    ("Alice Moreau", "physicist", "Helios Dynamics"),
    ("Bogdan Petrov", "geologist", "Terra Survey"),
    ("Carla Jimenez", "engineer", "Quantum Forge"),
    ("Deepak Rao", "chemist", "Northwind Labs"),
    ("Elena Okafor", "astronomer", "Stellar Insight"),
    ("Felix Braun", "cartographer", "Terra Survey"),
    ("Grace Lindqvist", "roboticist", "Quantum Forge"),
    ("Hiro Tanaka", "meteorologist", "Northwind Labs"),
];

/// `(company, product, city)` rows.
pub const COMPANIES: &[(&str, &str, &str)] = &[
    ("Helios Dynamics", "solar panels", "Lisbon"),
    ("Terra Survey", "geological maps", "Calgary"),
    ("Quantum Forge", "precision actuators", "Eindhoven"),
    ("Northwind Labs", "weather balloons", "Tromso"),
    ("Stellar Insight", "space telescopes", "Pasadena"),
];

impl MiniWiki {
    /// Builds the standard encyclopedia from the entity tables.
    pub fn standard() -> Self {
        let mut articles = Vec::new();
        for (name, profession, company) in PEOPLE {
            articles.push(Article {
                title: (*name).to_owned(),
                text: format!("{name} is a {profession} who works at {company}."),
            });
        }
        for (company, product, city) in COMPANIES {
            articles.push(Article {
                title: (*company).to_owned(),
                text: format!(
                    "{company} is a company that makes {product}. \
                     {company} is headquartered in {city}."
                ),
            });
        }
        MiniWiki { articles }
    }

    /// All articles.
    pub fn articles(&self) -> &[Article] {
        &self.articles
    }

    /// Keyword search: returns the text of the article whose title shares
    /// the most (case-insensitive) words with the query; exact title
    /// matches win. Returns a fixed "no results" string when nothing
    /// overlaps, mirroring a failed Wikipedia lookup.
    pub fn search(&self, query: &str) -> String {
        let q = query.trim().to_lowercase();
        if let Some(a) = self.articles.iter().find(|a| a.title.to_lowercase() == q) {
            return a.text.clone();
        }
        let q_words: Vec<&str> = q.split_whitespace().collect();
        let mut best: Option<(usize, &Article)> = None;
        for a in &self.articles {
            let title = a.title.to_lowercase();
            let overlap = title
                .split_whitespace()
                .filter(|w| q_words.contains(w))
                .count();
            if overlap > 0 && best.is_none_or(|(b, _)| overlap > b) {
                best = Some((overlap, a));
            }
        }
        match best {
            Some((_, a)) => a.text.clone(),
            None => format!("Could not find {query}. Similar: no results."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_title_search() {
        let w = MiniWiki::standard();
        let text = w.search("Terra Survey");
        assert!(text.contains("headquartered in Calgary"));
    }

    #[test]
    fn case_insensitive_partial_search() {
        let w = MiniWiki::standard();
        let text = w.search("alice moreau");
        assert!(text.contains("works at Helios Dynamics"));
        let text = w.search("Tanaka");
        assert!(text.contains("Northwind Labs"));
    }

    #[test]
    fn miss_returns_marker() {
        let w = MiniWiki::standard();
        assert!(w.search("zzz qqq").starts_with("Could not find"));
    }

    #[test]
    fn entity_tables_consistent() {
        // Every person's employer exists as a company article.
        let companies: Vec<&str> = COMPANIES.iter().map(|(c, _, _)| *c).collect();
        for (_, _, company) in PEOPLE {
            assert!(companies.contains(company), "unknown company {company}");
        }
    }
}
