//! The *Odd One Out* task (BIG-bench style): given words from one
//! category plus one outlier, pick the outlier.
//!
//! Each instance also carries the simulated model's intended behaviour:
//! the ideal chain-of-thought reasoning sentence, the answer the model
//! would conclude (correct with the profile's `p_correct`), and an
//! optional mid-reasoning digression that derails to a different answer —
//! the mechanism §6.1 of the paper identifies behind accuracy differences.

use crate::words::{category_of, CATEGORIES};
use crate::ModelProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The two few-shot demonstrations used in the paper's Fig. 10 prompt.
pub const FEW_SHOT: &str = "Pick the odd word out: skirt, dress, pen, jacket.\n\
skirt is clothing, dress is clothing, pen is an object, jacket is clothing.\n\
So the odd one is pen.\n\n\
Pick the odd word out: Spain, France, German, England, Singapore.\n\
Spain is a country, France is a country, German is a language, England is a country, Singapore is a country.\n\
So the odd one is German.\n\n";

/// A derailment the unconstrained model takes mid-reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digression {
    /// Character offset into `reasoning` where the digression starts.
    pub at: usize,
    /// The off-pattern text (starts with a phrase the `where` clause
    /// forbids, e.g. `Pick`).
    pub text: String,
    /// The answer the derailed reasoning concludes.
    pub derailed_answer: String,
}

/// One Odd One Out instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The words, outlier included, in presentation order.
    pub options: Vec<String>,
    /// Comma-separated options as shown in the prompt.
    pub options_line: String,
    /// The gold outlier.
    pub gold: String,
    /// Ideal reasoning sentence ("w1 is c, …, wk is c2." — ends with `.`).
    pub reasoning: String,
    /// The answer the simulated model concludes without digression.
    pub model_answer: String,
    /// Mid-reasoning derailment, if the model would digress.
    pub digression: Option<Digression>,
}

impl Instance {
    /// `true` if `answer` names the gold outlier.
    pub fn is_correct(&self, answer: &str) -> bool {
        answer.trim() == self.gold
    }

    /// The full intended completion after the question line: reasoning,
    /// then the conclusion sentence (paper Fig. 10 pattern).
    pub fn script(&self) -> String {
        format!(
            "{}\nSo the odd one is {}.",
            self.reasoning, self.model_answer
        )
    }

    /// The derailed completion (digression applied), if any: reasoning up
    /// to the digression, the digression text, then a conclusion with the
    /// derailed answer.
    pub fn derailed_script(&self) -> Option<String> {
        let d = self.digression.as_ref()?;
        Some(format!(
            "{}{}\nSo the odd one is {}.",
            &self.reasoning[..d.at],
            d.text,
            d.derailed_answer
        ))
    }
}

/// Generates `n` seeded instances under a model profile.
pub fn generate(n: usize, seed: u64, profile: &ModelProfile) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd0_0e0e);
    (0..n).map(|_| instance(&mut rng, profile)).collect()
}

fn instance(rng: &mut StdRng, profile: &ModelProfile) -> Instance {
    // Pick the majority category and a distinct outlier category.
    let cat_idx = rng.gen_range(0..CATEGORIES.len());
    let mut odd_idx = rng.gen_range(0..CATEGORIES.len() - 1);
    if odd_idx >= cat_idx {
        odd_idx += 1;
    }
    let cat = &CATEGORIES[cat_idx];
    let odd_cat = &CATEGORIES[odd_idx];

    let k = rng.gen_range(4..=5);
    let mut members: Vec<&str> = cat.words.to_vec();
    members.shuffle(rng);
    members.truncate(k);
    let outlier = odd_cat.words[rng.gen_range(0..odd_cat.words.len())];

    let mut options: Vec<String> = members.iter().map(|w| (*w).to_owned()).collect();
    options.insert(rng.gen_range(0..=options.len()), outlier.to_owned());
    let options_line = options.join(", ");

    // Ideal reasoning in the few-shot pattern.
    let reasoning = options
        .iter()
        .map(|w| {
            let c = category_of(w).expect("generated words have categories");
            format!("{w} is {}", c.name)
        })
        .collect::<Vec<_>>()
        .join(", ")
        + ".";

    // Simulated model behaviour.
    let model_answer = if rng.gen_bool(profile.p_correct) {
        outlier.to_owned()
    } else {
        // A wrong but plausible option.
        let wrong: Vec<&String> = options.iter().filter(|o| *o != outlier).collect();
        wrong[rng.gen_range(0..wrong.len())].clone()
    };

    let digression = if rng.gen_bool(profile.p_digress) {
        // Derailment starts mid-reasoning, right after a comma, and leads
        // to a (usually different) answer.
        let commas: Vec<usize> = reasoning
            .char_indices()
            .filter(|(_, c)| *c == ',')
            .map(|(i, _)| i + 1)
            .collect();
        let at = commas[rng.gen_range(0..commas.len())];
        // Derailments lead astray: the derailed conclusion is never the
        // gold answer (a digression that accidentally lands on the right
        // answer would not be a failure mode worth modelling).
        let wrong: Vec<&String> = options.iter().filter(|o| **o != outlier).collect();
        let derailed_answer = wrong[rng.gen_range(0..wrong.len())].clone();
        // The digression starts with a newline: `not "\n" in REASONING`
        // masks it in one step (the newline is a single token), while the
        // unconstrained baseline runs into it head-on — the paper's Fig. 4b
        // "running on" failure mode.
        Some(Digression {
            at,
            text: format!(
                "\nPick the odd word out means the one that is different, and they all \
                 seem similar to {derailed_answer},"
            ),
            derailed_answer,
        })
    } else {
        None
    };

    Instance {
        options,
        options_line,
        gold: outlier.to_owned(),
        reasoning,
        model_answer,
        digression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GPT_J_PROFILE;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(20, 7, &GPT_J_PROFILE);
        let b = generate(20, 7, &GPT_J_PROFILE);
        assert_eq!(a, b);
    }

    #[test]
    fn gold_is_an_option_and_odd() {
        for inst in generate(50, 1, &GPT_J_PROFILE) {
            assert!(inst.options.contains(&inst.gold));
            let gold_cat = category_of(&inst.gold).unwrap().name;
            let others: Vec<&str> = inst
                .options
                .iter()
                .filter(|o| **o != inst.gold)
                .map(|o| category_of(o).unwrap().name)
                .collect();
            assert!(others.iter().all(|c| *c != gold_cat));
            assert!(others.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn reasoning_mentions_every_option() {
        for inst in generate(20, 2, &GPT_J_PROFILE) {
            for o in &inst.options {
                assert!(inst.reasoning.contains(o.as_str()));
            }
            assert!(inst.reasoning.ends_with('.'));
            assert!(!inst.reasoning.contains('\n'));
        }
    }

    #[test]
    fn accuracy_rate_tracks_profile() {
        let instances = generate(500, 3, &GPT_J_PROFILE);
        let correct = instances
            .iter()
            .filter(|i| i.model_answer == i.gold)
            .count() as f64;
        let rate = correct / 500.0;
        assert!((rate - GPT_J_PROFILE.p_correct).abs() < 0.07, "rate {rate}");
    }

    #[test]
    fn digressions_start_with_forbidden_phrase() {
        let instances = generate(200, 4, &GPT_J_PROFILE);
        let digressed: Vec<&Instance> = instances
            .iter()
            .filter(|i| i.digression.is_some())
            .collect();
        assert!(!digressed.is_empty());
        for i in digressed {
            let d = i.digression.as_ref().unwrap();
            assert!(d.text.contains("Pick"));
            assert!(d.at < i.reasoning.len());
            assert!(i.derailed_script().unwrap().contains("Pick"));
        }
    }

    #[test]
    fn script_shape() {
        let inst = &generate(1, 9, &GPT_J_PROFILE)[0];
        let s = inst.script();
        assert!(s.starts_with(&inst.reasoning));
        assert!(s.contains("So the odd one is"));
    }
}
