//! The paper's augmented-generation capabilities as first-class
//! [`Tool`]s (DESIGN.md §16).
//!
//! Earlier PRs wired the calculator and the mini-wiki lookup as ad-hoc
//! `Runtime::register_external` closures at every call site. With the
//! tool API they are two ordinary registrations: [`CalculatorTool`]
//! exports `calculator.run` and [`WikiTool`] exports
//! `wikipedia_utils.search`, byte-identical in behaviour to the legacy
//! closures (pinned by the differential suite in the umbrella crate's
//! `tests/tool_api.rs`).

use crate::calculator;
use crate::wiki::MiniWiki;
use lmql::{Tool, ToolSchema, Value};

/// The paper's §4.1 calculator: evaluates integer arithmetic
/// expressions mid-query. Exports `calculator.run(expr)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalculatorTool;

impl Tool for CalculatorTool {
    fn name(&self) -> &str {
        "calculator"
    }

    fn schema(&self) -> ToolSchema {
        ToolSchema::new(
            "calculator",
            "integer arithmetic over +, -, *, /, parentheses (the paper's §4.1 calc())",
        )
        .function(
            "run",
            &["expr"],
            "evaluates `expr` and returns the integer result; tolerates a trailing `=`",
        )
    }

    fn invoke(&self, func: &str, args: &[Value]) -> Result<Value, String> {
        if func != "run" {
            return Err(format!("calculator has no function `{func}`"));
        }
        let expr = args
            .first()
            .and_then(Value::as_str)
            .ok_or("run expects a string")?;
        calculator::run(expr)
            .map(Value::Int)
            .map_err(|e| e.to_string())
    }
}

/// The paper's §4.2 wiki lookup over the offline [`MiniWiki`]. Exports
/// `wikipedia_utils.search(query)`.
#[derive(Debug, Clone, Default)]
pub struct WikiTool {
    wiki: MiniWiki,
}

impl WikiTool {
    /// A tool over `wiki`.
    pub fn new(wiki: MiniWiki) -> Self {
        WikiTool { wiki }
    }

    /// A tool over the standard bundled encyclopedia
    /// ([`MiniWiki::standard`]).
    pub fn standard() -> Self {
        WikiTool::new(MiniWiki::standard())
    }
}

impl Tool for WikiTool {
    fn name(&self) -> &str {
        "wikipedia_utils"
    }

    fn schema(&self) -> ToolSchema {
        ToolSchema::new(
            "wikipedia_utils",
            "keyword search over the bundled mini encyclopedia (the paper's §4.2 ReAct lookup)",
        )
        .function(
            "search",
            &["query"],
            "returns the best-matching article summary, or a not-found message with suggestions",
        )
    }

    fn invoke(&self, func: &str, args: &[Value]) -> Result<Value, String> {
        if func != "search" {
            return Err(format!("wikipedia_utils has no function `{func}`"));
        }
        let query = args
            .first()
            .and_then(Value::as_str)
            .ok_or("search expects a string")?;
        Ok(Value::Str(self.wiki.search(query)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calculator_tool_matches_direct_call() {
        let tool = CalculatorTool;
        let v = tool
            .invoke("run", &[Value::Str("(2 + 3) * 4 =".into())])
            .unwrap();
        assert_eq!(v, Value::Int(calculator::run("(2 + 3) * 4 =").unwrap()));
        assert!(tool.invoke("run", &[Value::Int(3)]).is_err());
        assert!(tool.invoke("nope", &[]).is_err());
    }

    #[test]
    fn wiki_tool_matches_direct_search() {
        let wiki = MiniWiki::standard();
        let tool = WikiTool::standard();
        let v = tool.invoke("search", &[Value::Str("Ada Lovelace".into())]);
        assert_eq!(v, Ok(Value::Str(wiki.search("Ada Lovelace"))));
    }

    #[test]
    fn schemas_describe_the_exports() {
        assert_eq!(CalculatorTool.schema().module, "calculator");
        assert_eq!(CalculatorTool.schema().functions[0].name, "run");
        assert_eq!(WikiTool::standard().schema().module, "wikipedia_utils");
        assert_eq!(WikiTool::standard().schema().functions[0].name, "search");
    }
}
