//! The *Date Understanding* task (BIG-bench style): date arithmetic as
//! multiple choice, with chain-of-thought reasoning.

use crate::ModelProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Few-shot demonstrations in the same pattern as the generated
/// instances.
pub const FEW_SHOT: &str = "Q: Today is March 10, 2022. What is the date tomorrow? \
Options: March 11, 2022, March 9, 2022, April 10, 2022.\n\
Today is March 10, 2022, so tomorrow is one day later, which is March 11, 2022.\n\
So the answer is March 11, 2022.\n\n\
Q: Yesterday was July 4, 2021. What is the date one week from today? \
Options: July 12, 2021, July 11, 2021, June 28, 2021.\n\
Yesterday was July 4, 2021, so today is July 5, 2021, and one week from today is July 12, 2021.\n\
So the answer is July 12, 2021.\n\n";

/// A calendar date (proleptic Gregorian, no time zones — all we need for
/// day arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Date {
    /// Year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1-based.
    pub day: u32,
}

const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

fn leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if leap(year) => 29,
        2 => 28,
        other => unreachable!("invalid month {other}"),
    }
}

impl Date {
    /// A date, validated.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range month or day.
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month}"
        );
        Date { year, month, day }
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i32) -> Date {
        let mut d = self;
        let mut n = n;
        while n > 0 {
            if d.day < days_in_month(d.year, d.month) {
                d.day += 1;
            } else {
                d.day = 1;
                if d.month == 12 {
                    d.month = 1;
                    d.year += 1;
                } else {
                    d.month += 1;
                }
            }
            n -= 1;
        }
        while n < 0 {
            if d.day > 1 {
                d.day -= 1;
            } else {
                if d.month == 1 {
                    d.month = 12;
                    d.year -= 1;
                } else {
                    d.month -= 1;
                }
                d.day = days_in_month(d.year, d.month);
            }
            n += 1;
        }
        d
    }

    /// `"March 11, 2022"` formatting used throughout the task.
    pub fn format_long(self) -> String {
        format!(
            "{} {}, {}",
            MONTH_NAMES[(self.month - 1) as usize],
            self.day,
            self.year
        )
    }
}

/// One Date Understanding instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The question (including the inline `Options:` list).
    pub question: String,
    /// Answer options, formatted dates.
    pub options: Vec<String>,
    /// The gold option.
    pub gold: String,
    /// Ideal reasoning sentence (ends with `.`, no newline).
    pub reasoning: String,
    /// Answer the simulated model concludes.
    pub model_answer: String,
    /// Mid-reasoning derailment, if any.
    pub digression: Option<crate::odd_one_out::Digression>,
}

impl Instance {
    /// `true` if `answer` matches the gold date.
    pub fn is_correct(&self, answer: &str) -> bool {
        answer.trim() == self.gold
    }

    /// The intended completion after the question line.
    pub fn script(&self) -> String {
        format!(
            "{}\nSo the answer is {}.",
            self.reasoning, self.model_answer
        )
    }

    /// The derailed completion, if the model would digress.
    pub fn derailed_script(&self) -> Option<String> {
        let d = self.digression.as_ref()?;
        Some(format!(
            "{}{}\nSo the answer is {}.",
            &self.reasoning[..d.at],
            d.text,
            d.derailed_answer
        ))
    }
}

/// The question relations the generator draws from.
const RELATIONS: &[(&str, i32, &str)] = &[
    ("What is the date tomorrow?", 1, "tomorrow is one day later"),
    (
        "What is the date yesterday?",
        -1,
        "yesterday was one day earlier",
    ),
    (
        "What is the date one week from today?",
        7,
        "one week from today is 7 days later",
    ),
    (
        "What is the date 10 days ago?",
        -10,
        "10 days ago was 10 days earlier",
    ),
    (
        "What is the date one month from today?",
        30,
        "one month from today is about 30 days later",
    ),
];

/// Generates `n` seeded instances under a model profile.
pub fn generate(n: usize, seed: u64, profile: &ModelProfile) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7e_0000);
    (0..n).map(|_| instance(&mut rng, profile)).collect()
}

fn instance(rng: &mut StdRng, profile: &ModelProfile) -> Instance {
    let base = Date::new(
        rng.gen_range(2019..=2023),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
    );
    let (question_part, delta, explain) = RELATIONS[rng.gen_range(0..RELATIONS.len())];
    let answer = base.plus_days(delta);

    // Distractors: off-by-one day, off-by-one month.
    let mut options = vec![
        answer.format_long(),
        answer
            .plus_days(if delta >= 0 { -1 } else { 1 })
            .format_long(),
        answer
            .plus_days(if rng.gen_bool(0.5) { 30 } else { -30 })
            .format_long(),
    ];
    if rng.gen_bool(0.5) {
        options.push(base.format_long());
    }
    options.dedup();
    // Shuffle deterministically.
    for i in (1..options.len()).rev() {
        options.swap(i, rng.gen_range(0..=i));
    }

    let gold = answer.format_long();
    let question = format!(
        "Q: Today is {}. {} Options: {}.",
        base.format_long(),
        question_part,
        options.join(", ")
    );
    let reasoning = format!(
        "Today is {}, so {}, which is {}.",
        base.format_long(),
        explain,
        gold
    );

    let model_answer = if rng.gen_bool(profile.p_correct) {
        gold.clone()
    } else {
        let wrong: Vec<&String> = options.iter().filter(|o| **o != gold).collect();
        wrong[rng.gen_range(0..wrong.len())].clone()
    };

    let digression = if rng.gen_bool(profile.p_digress) {
        let at = reasoning.find(", so").map(|i| i + 1).unwrap_or(0);
        // Derailments never conclude the gold answer (see `odd_one_out`).
        let wrong: Vec<&String> = options.iter().filter(|o| **o != gold).collect();
        let derailed_answer = wrong[rng.gen_range(0..wrong.len())].clone();
        // Newline-led digression; see `odd_one_out` for the rationale.
        Some(crate::odd_one_out::Digression {
            at,
            text: format!(
                "\nQ: wait, calendars are tricky, counting days around {derailed_answer} again,"
            ),
            derailed_answer,
        })
    } else {
        None
    };

    Instance {
        question,
        options,
        gold,
        reasoning,
        model_answer,
        digression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GPT_J_PROFILE;

    #[test]
    fn date_arithmetic() {
        let d = Date::new(2022, 3, 10);
        assert_eq!(d.plus_days(1).format_long(), "March 11, 2022");
        assert_eq!(d.plus_days(-10).format_long(), "February 28, 2022");
        assert_eq!(Date::new(2020, 2, 28).plus_days(1).day, 29, "leap year");
        assert_eq!(Date::new(2021, 12, 31).plus_days(1).year, 2022);
        assert_eq!(Date::new(2021, 1, 1).plus_days(-1).year, 2020);
    }

    #[test]
    fn plus_days_roundtrip() {
        let d = Date::new(2022, 6, 15);
        for n in [-400, -31, -1, 0, 1, 31, 400] {
            assert_eq!(d.plus_days(n).plus_days(-n), d, "n={n}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_gold_in_options() {
        let a = generate(30, 5, &GPT_J_PROFILE);
        let b = generate(30, 5, &GPT_J_PROFILE);
        assert_eq!(a, b);
        for inst in a {
            assert!(inst.options.contains(&inst.gold));
            assert!(inst.question.contains("Options:"));
            assert!(inst.reasoning.ends_with('.'));
        }
    }

    #[test]
    fn digression_text_contains_forbidden_phrase() {
        let instances = generate(200, 6, &GPT_J_PROFILE);
        let any = instances.iter().find(|i| i.digression.is_some()).unwrap();
        assert!(any.digression.as_ref().unwrap().text.contains("Q:"));
    }

    #[test]
    #[should_panic(expected = "day 31 out of range")]
    fn invalid_date_panics() {
        let _ = Date::new(2021, 4, 31);
    }
}
