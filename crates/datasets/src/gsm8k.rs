//! Arithmetic word problems with per-step expressions — the GSM8K
//! stand-in for the arithmetic-reasoning case study (§6.3, Fig. 13).
//!
//! Each instance's intended completion interleaves reasoning text with
//! `<< expr= result >>` calculation hooks, exactly the pattern the Fig. 13
//! query detects and evaluates with the external calculator.

use crate::ModelProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Few-shot demonstration in the `<< … >>` calculation pattern.
pub const FEW_SHOT: &str = "Q: Mia buys 3 boxes of 12 pencils. How many pencils does she have?\n\
A: Let's think step by step.\n\
She buys 3 boxes of 12 pencils each.\n\
3 boxes x 12 pencils = << 3*12= 36 >> 36\n\
So the answer is 36\n\n";

/// One arithmetic word problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The question text (without the `Q:` prefix).
    pub question: String,
    /// The intended completion after `"A: Let's think step by step.\n"`,
    /// including `<< expr= result >>` hooks and the final
    /// `So the answer is N`.
    pub script: String,
    /// The `(expression, value)` pairs in order of appearance; the
    /// expression text is exactly what appears between `<<` and `=`.
    pub expressions: Vec<(String, i64)>,
    /// The gold final answer.
    pub answer: i64,
}

impl Instance {
    /// `true` if `answer` equals the gold value.
    pub fn is_correct(&self, answer: &str) -> bool {
        answer.trim().parse::<i64>() == Ok(self.answer)
    }
}

/// Generates `n` seeded instances. The model profile is accepted for
/// interface symmetry; arithmetic scripts do not digress (the paper's
/// §6.3 measures cost, not accuracy).
pub fn generate(n: usize, seed: u64, _profile: &ModelProfile) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x65a8);
    (0..n).map(|_| instance(&mut rng)).collect()
}

fn instance(rng: &mut StdRng) -> Instance {
    match rng.gen_range(0..3) {
        0 => painter(rng),
        1 => bakery(rng),
        _ => bus(rng),
    }
}

/// The paper's own running example (Fig. 13b): paintings at two prices,
/// doubled sales.
fn painter(rng: &mut StdRng) -> Instance {
    let large: i64 = rng.gen_range(3..=9);
    let small: i64 = rng.gen_range(2..=8);
    let price_l: i64 = 10 * rng.gen_range(4..=8i64);
    let price_s: i64 = 10 * rng.gen_range(2..=4i64);
    let r1 = large * price_l;
    let r2 = small * price_s;
    let r3 = r1 + r2;
    let r4 = 2 * r3;
    let question = format!(
        "Noah is a painter. He charges ${price_l} for a large painting and ${price_s} for a \
         small painting. Last month he sold {large} large paintings and {small} small \
         paintings. If he sold twice as much this month, how much is his sales for this month?"
    );
    let script = format!(
        "He sold {large} large paintings and {small} small paintings last month.\n\
         {large} large paintings x ${price_l} = << {large}*{price_l}= {r1} >> {r1}\n\
         {small} small paintings x ${price_s} = << {small}*{price_s}= {r2} >> {r2}\n\
         Total last month = << {r1}+{r2}= {r3} >> {r3}\n\
         Twice as much this month = << {r3}*2= {r4} >> {r4}\n\
         So the answer is {r4}"
    );
    Instance {
        question,
        script,
        expressions: vec![
            (format!(" {large}*{price_l}="), r1),
            (format!(" {small}*{price_s}="), r2),
            (format!(" {r1}+{r2}="), r3),
            (format!(" {r3}*2="), r4),
        ],
        answer: r4,
    }
}

fn bakery(rng: &mut StdRng) -> Instance {
    let trays: i64 = rng.gen_range(3..=7);
    let per_tray: i64 = rng.gen_range(6..=12);
    let days: i64 = rng.gen_range(2..=5);
    let r1 = trays * per_tray;
    let r2 = r1 * days;
    let question = format!(
        "A bakery bakes {trays} trays of {per_tray} rolls every day. \
         How many rolls does it bake in {days} days?"
    );
    let script = format!(
        "Each day the bakery bakes {trays} trays of {per_tray} rolls.\n\
         {trays} trays x {per_tray} rolls = << {trays}*{per_tray}= {r1} >> {r1}\n\
         Over {days} days = << {r1}*{days}= {r2} >> {r2}\n\
         So the answer is {r2}"
    );
    Instance {
        question,
        script,
        expressions: vec![
            (format!(" {trays}*{per_tray}="), r1),
            (format!(" {r1}*{days}="), r2),
        ],
        answer: r2,
    }
}

fn bus(rng: &mut StdRng) -> Instance {
    let start: i64 = rng.gen_range(20..=40);
    let off: i64 = rng.gen_range(5..=12);
    let on: i64 = rng.gen_range(3..=10);
    let r1 = start - off;
    let r2 = r1 + on;
    let question = format!(
        "A bus starts with {start} passengers. At the first stop {off} get off and {on} \
         get on. How many passengers are on the bus now?"
    );
    let script = format!(
        "The bus starts with {start} passengers.\n\
         After {off} get off = << {start}-{off}= {r1} >> {r1}\n\
         After {on} get on = << {r1}+{on}= {r2} >> {r2}\n\
         So the answer is {r2}"
    );
    Instance {
        question,
        script,
        expressions: vec![
            (format!(" {start}-{off}="), r1),
            (format!(" {r1}+{on}="), r2),
        ],
        answer: r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator;
    use crate::GPT_J_PROFILE;

    #[test]
    fn expressions_evaluate_to_recorded_values() {
        for inst in generate(50, 1, &GPT_J_PROFILE) {
            for (expr, value) in &inst.expressions {
                assert_eq!(
                    calculator::run(expr).unwrap(),
                    *value,
                    "expr {expr:?} in {:?}",
                    inst.question
                );
            }
        }
    }

    #[test]
    fn script_contains_all_hooks_and_answer() {
        for inst in generate(30, 2, &GPT_J_PROFILE) {
            for (expr, value) in &inst.expressions {
                assert!(inst.script.contains(&format!("<<{expr} {value} >>")));
            }
            assert!(inst
                .script
                .ends_with(&format!("So the answer is {}", inst.answer)));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(10, 3, &GPT_J_PROFILE),
            generate(10, 3, &GPT_J_PROFILE)
        );
    }

    #[test]
    fn is_correct_parses() {
        let inst = &generate(1, 4, &GPT_J_PROFILE)[0];
        assert!(inst.is_correct(&format!(" {} ", inst.answer)));
        assert!(!inst.is_correct("nonsense"));
    }
}
