//! Source locations for diagnostics.

use std::fmt;

/// A position in LMQL source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub col: u32,
}

impl Pos {
    /// A position at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source range, inclusive of `start`, exclusive of `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start of the range.
    pub start: Pos,
    /// End of the range (exclusive).
    pub end: Pos,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at one position.
    pub fn at(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_line_col() {
        assert_eq!(Pos::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::at(Pos::new(3, 7)).to_string(), "3:7");
    }

    #[test]
    fn to_covers_both() {
        let a = Span::new(Pos::new(1, 1), Pos::new(1, 5));
        let b = Span::new(Pos::new(2, 1), Pos::new(2, 9));
        let c = a.to(b);
        assert_eq!(c.start, Pos::new(1, 1));
        assert_eq!(c.end, Pos::new(2, 9));
    }
}
