//! Pretty-printing parsed queries back to LMQL source.
//!
//! The formatter is the inverse of the parser up to layout: formatting a
//! parsed query and re-parsing yields the same AST (modulo spans), and
//! formatting is idempotent — both properties are tested in
//! `tests/format_roundtrip.rs`.

use crate::ast::{BinOp, CmpOp, DecoderSpec, Expr, ParamValue, Query, Stmt};
use std::fmt::Write as _;

/// Renders a query as canonical LMQL source (4-space indent).
pub fn format_query(q: &Query) -> String {
    let mut out = String::new();
    for i in &q.imports {
        let _ = writeln!(out, "import {}", i.name);
    }
    out.push_str(&format_decoder(&q.decoder));
    out.push('\n');
    for s in &q.body {
        format_stmt(s, 1, &mut out);
    }
    let _ = writeln!(out, "from {}", quote(&q.model));
    if let Some(w) = &q.where_clause {
        let _ = writeln!(out, "where {}", format_expr(w));
    }
    if let Some(d) = &q.distribute {
        let _ = writeln!(out, "distribute {} in {}", d.var, format_expr(&d.support));
    }
    out
}

fn format_decoder(d: &DecoderSpec) -> String {
    if d.params.is_empty() {
        return d.name.clone();
    }
    let params: Vec<String> = d
        .params
        .iter()
        .map(|(k, v)| {
            let v = match v {
                ParamValue::Int(i) => i.to_string(),
                ParamValue::Float(f) => format_float(*f),
                ParamValue::Str(s) => quote(s),
                ParamValue::Bool(true) => "True".to_owned(),
                ParamValue::Bool(false) => "False".to_owned(),
            };
            format!("{k}={v}")
        })
        .collect();
    format!("{}({})", d.name, params.join(", "))
}

fn format_stmt(s: &Stmt, depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    match s {
        Stmt::Prompt { raw, .. } => {
            let _ = writeln!(out, "{pad}{}", quote(raw));
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{}", format_expr(e));
        }
        Stmt::Assign { name, value, .. } => {
            let _ = writeln!(out, "{pad}{name} = {}", format_expr(value));
        }
        Stmt::For {
            var,
            iterable,
            body,
            ..
        } => {
            let _ = writeln!(out, "{pad}for {var} in {}:", format_expr(iterable));
            format_block(body, depth + 1, out);
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while {}:", format_expr(cond));
            format_block(body, depth + 1, out);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "{pad}if {}:", format_expr(cond));
            format_block(then_body, depth + 1, out);
            if !else_body.is_empty() {
                // Re-sugar `else: if …` chains into `elif`.
                if let [Stmt::If { .. }] = else_body.as_slice() {
                    let mut chain = String::new();
                    format_stmt(&else_body[0], depth, &mut chain);
                    let chain = chain.replacen(&format!("{pad}if "), &format!("{pad}elif "), 1);
                    out.push_str(&chain);
                } else {
                    let _ = writeln!(out, "{pad}else:");
                    format_block(else_body, depth + 1, out);
                }
            }
        }
        Stmt::Break(_) => {
            let _ = writeln!(out, "{pad}break");
        }
        Stmt::Continue(_) => {
            let _ = writeln!(out, "{pad}continue");
        }
        Stmt::Pass(_) => {
            let _ = writeln!(out, "{pad}pass");
        }
    }
}

fn format_block(body: &[Stmt], depth: usize, out: &mut String) {
    if body.is_empty() {
        let _ = writeln!(out, "{}pass", "    ".repeat(depth));
        return;
    }
    for s in body {
        format_stmt(s, depth, out);
    }
}

/// Binding strength, matching the parser's grammar (higher binds tighter).
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::BoolOp { and: false, .. } => 1, // or
        Expr::BoolOp { and: true, .. } => 2,  // and
        Expr::Not { .. } => 3,
        Expr::Compare { .. } => 4,
        Expr::BinOp {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => 5,
        Expr::BinOp { .. } => 6,
        Expr::Neg { .. } => 7,
        _ => 8, // atoms and postfix
    }
}

/// Renders an expression (minimal parentheses).
pub fn format_expr(e: &Expr) -> String {
    match e {
        Expr::Str { value, .. } => quote(value),
        Expr::Int { value, .. } => value.to_string(),
        Expr::Float { value, .. } => format_float(*value),
        Expr::Bool { value: true, .. } => "True".to_owned(),
        Expr::Bool { value: false, .. } => "False".to_owned(),
        Expr::None { .. } => "None".to_owned(),
        Expr::Name { name, .. } => name.clone(),
        Expr::List { items, .. } => {
            let items: Vec<String> = items.iter().map(format_expr).collect();
            format!("[{}]", items.join(", "))
        }
        Expr::Call { func, args, .. } => {
            let args: Vec<String> = args.iter().map(format_expr).collect();
            format!("{}({})", child(func, 8), args.join(", "))
        }
        Expr::Attribute { obj, name, .. } => format!("{}.{name}", child(obj, 8)),
        Expr::Index { obj, index, .. } => {
            format!("{}[{}]", child(obj, 8), format_expr(index))
        }
        Expr::Slice { obj, lo, hi, .. } => format!(
            "{}[{}:{}]",
            child(obj, 8),
            lo.as_deref().map(format_expr).unwrap_or_default(),
            hi.as_deref().map(format_expr).unwrap_or_default()
        ),
        Expr::BinOp {
            op, left, right, ..
        } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            let prec = precedence(e);
            // Left-associative: the right child needs parens at equal
            // precedence.
            format!("{} {sym} {}", child(left, prec), child(right, prec + 1))
        }
        Expr::Compare {
            op, left, right, ..
        } => {
            let sym = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::In => "in",
                CmpOp::NotIn => "not in",
            };
            format!("{} {sym} {}", child(left, 5), child(right, 5))
        }
        Expr::BoolOp { and, operands, .. } => {
            let sym = if *and { " and " } else { " or " };
            let prec = precedence(e);
            operands
                .iter()
                .map(|o| child(o, prec + u8::from(!*and)))
                .collect::<Vec<_>>()
                .join(sym)
        }
        Expr::Not { operand, .. } => format!("not {}", child(operand, 3)),
        Expr::Neg { operand, .. } => format!("-{}", child(operand, 7)),
    }
}

/// Renders a child, parenthesising when it binds more loosely than the
/// context requires.
fn child(e: &Expr, min_prec: u8) -> String {
    let s = format_expr(e);
    if precedence(e) < min_prec {
        format!("({s})")
    } else {
        s
    }
}

fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.is_finite() {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Quotes a string with the lexer's escape set.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_expr, parse_query};

    #[test]
    fn formats_simple_query() {
        let q = parse_query("argmax(n=2)\n    \"[X]\"\nfrom \"m\"\nwhere len(X) < 5\n").unwrap();
        let text = format_query(&q);
        assert_eq!(
            text,
            "argmax(n=2)\n    \"[X]\"\nfrom \"m\"\nwhere len(X) < 5\n"
        );
    }

    #[test]
    fn minimal_parens() {
        for (src, expected) in [
            ("(a + b) * c", "(a + b) * c"),
            ("a + b * c", "a + b * c"),
            ("a - (b - c)", "a - (b - c)"),
            ("a - b - c", "a - b - c"),
            ("not (a and b)", "not (a and b)"),
            ("(a or b) and c", "(a or b) and c"),
            ("-(a + b)", "-(a + b)"),
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(format_expr(&e), expected, "source {src:?}");
        }
    }

    #[test]
    fn elif_resugars() {
        let q = parse_query(
            "argmax\n    if a:\n        pass\n    elif b:\n        pass\n    else:\n        pass\nfrom \"m\"\n",
        )
        .unwrap();
        let text = format_query(&q);
        assert!(text.contains("    elif b:"), "{text}");
        assert_eq!(text.matches("else:").count(), 1);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let q = parse_query("argmax\n    \"a\\n\\t\\\"b\\\\c\"\nfrom \"m\"\n").unwrap();
        let text = format_query(&q);
        let q2 = parse_query(&text).unwrap();
        assert_eq!(format_query(&q2), text);
    }
}
