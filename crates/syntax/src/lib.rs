//! Lexer, parser and AST for the LMQL query language (the paper's Fig. 5
//! grammar).
//!
//! An LMQL program has five parts: a decoder clause, a Python-like scripted
//! prompt body, a `from` clause naming the model, an optional `where`
//! constraint, and an optional `distribute` clause. This crate turns source
//! text into an [`ast::Query`]; execution lives in the `lmql` crate.
//!
//! # Example
//!
//! ```
//! use lmql_syntax::parse_query;
//!
//! let query = parse_query(r#"
//! argmax
//!     "Greet the user: [GREETING]"
//! from "test-model"
//! where stops_at(GREETING, ".") and len(GREETING) < 40
//! "#).unwrap();
//!
//! assert_eq!(query.decoder.name, "argmax");
//! assert_eq!(query.body.len(), 1);
//! ```

pub mod ast;

mod error;
mod format;
mod lexer;
mod parser;
mod prompt;
mod span;

pub use error::{Result, SyntaxError};
pub use format::{format_expr, format_query};
pub use lexer::{lex, Tok, TokKind};
pub use parser::{parse_expr, parse_query};
pub use prompt::{hole_names, parse_prompt, Segment};
pub use span::{Pos, Span};
