//! An indentation-aware lexer for LMQL source.
//!
//! LMQL syntax is "generally python based" (Fig. 5), so the lexer follows
//! Python's lexical structure: significant indentation producing
//! `Indent`/`Dedent` tokens, `Newline` at logical line ends, implicit line
//! joining inside parentheses and brackets, and `#` comments.

use crate::{Pos, Result, Span, SyntaxError};
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are recognised by the parser).
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (escapes already processed).
    Str(String),
    /// `(` `)` `[` `]` `,` `:` `.` and operators.
    Symbol(&'static str),
    /// End of a logical line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Name(n) => write!(f, "`{n}`"),
            TokKind::Int(v) => write!(f, "`{v}`"),
            TokKind::Float(v) => write!(f, "`{v}`"),
            TokKind::Str(_) => write!(f, "string literal"),
            TokKind::Symbol(s) => write!(f, "`{s}`"),
            TokKind::Newline => write!(f, "end of line"),
            TokKind::Indent => write!(f, "indent"),
            TokKind::Dedent => write!(f, "dedent"),
            TokKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Where it came from.
    pub span: Span,
}

/// Multi-character symbols, longest first so maximal munch works.
const SYMBOLS: &[&str] = &[
    "<=", ">=", "==", "!=", "(", ")", "[", "]", ",", ":", ".", "+", "-", "*", "/", "%", "<", ">",
    "=",
];

/// Lexes LMQL source into tokens.
///
/// # Errors
///
/// Returns a [`SyntaxError`] for unterminated strings, bad escapes,
/// inconsistent indentation, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Tok>> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    indents: Vec<u32>,
    paren_depth: u32,
    toks: Vec<Tok>,
    /// `true` until the first token of a logical line is produced.
    at_line_start: bool,
    source_marker: std::marker::PhantomData<&'s str>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            indents: vec![0],
            paren_depth: 0,
            toks: Vec::new(),
            at_line_start: true,
            source_marker: std::marker::PhantomData,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, start: Pos) {
        self.toks.push(Tok {
            kind,
            span: Span::new(start, self.pos()),
        });
    }

    fn run(mut self) -> Result<Vec<Tok>> {
        loop {
            if self.at_line_start && self.paren_depth == 0 {
                if !self.handle_line_start()? {
                    break;
                }
                continue;
            }
            match self.peek() {
                None => break,
                Some('\n') => {
                    self.bump();
                    if self.paren_depth == 0 {
                        let p = self.pos();
                        self.push(TokKind::Newline, p);
                        self.at_line_start = true;
                    }
                }
                Some(' ') | Some('\t') | Some('\r') => {
                    self.bump();
                }
                Some('#') => {
                    while self.peek().is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                }
                Some('"') => self.string()?,
                Some(c) if c.is_ascii_digit() => self.number()?,
                Some(c) if c.is_alphabetic() || c == '_' => self.name(),
                Some(_) => self.symbol()?,
            }
        }
        // Close any open indentation and finish the last logical line.
        if !matches!(
            self.toks.last().map(|t| &t.kind),
            Some(TokKind::Newline) | None
        ) {
            let p = self.pos();
            self.push(TokKind::Newline, p);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            let p = self.pos();
            self.push(TokKind::Dedent, p);
        }
        let p = self.pos();
        self.push(TokKind::Eof, p);
        Ok(self.toks)
    }

    /// Measures indentation at a line start, emitting `Indent`/`Dedent`.
    /// Returns `false` at end of input.
    fn handle_line_start(&mut self) -> Result<bool> {
        let mut width = 0u32;
        loop {
            match self.peek() {
                Some(' ') => {
                    width += 1;
                    self.bump();
                }
                Some('\t') => {
                    width += 4;
                    self.bump();
                }
                Some('\r') => {
                    self.bump();
                }
                Some('\n') => {
                    // blank line: no tokens
                    self.bump();
                    width = 0;
                }
                Some('#') => {
                    while self.peek().is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                }
                Some(_) => break,
                None => return Ok(false),
            }
        }
        let current = *self.indents.last().expect("indent stack never empty");
        let start = self.pos();
        if width > current {
            self.indents.push(width);
            self.push(TokKind::Indent, start);
        } else {
            while width < *self.indents.last().expect("indent stack never empty") {
                self.indents.pop();
                self.push(TokKind::Dedent, start);
            }
            if width != *self.indents.last().expect("indent stack never empty") {
                return Err(SyntaxError::new(
                    "inconsistent indentation",
                    Span::at(start),
                ));
            }
        }
        self.at_line_start = false;
        Ok(true)
    }

    fn string(&mut self) -> Result<()> {
        let start = self.pos();
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    return Err(SyntaxError::new("unterminated string", Span::at(start)))
                }
                Some('"') => break,
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| SyntaxError::new("unterminated escape", Span::at(start)))?;
                    match esc {
                        'n' => value.push('\n'),
                        't' => value.push('\t'),
                        'r' => value.push('\r'),
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        '\'' => value.push('\''),
                        '0' => value.push('\0'),
                        other => {
                            return Err(SyntaxError::new(
                                format!("unknown escape sequence `\\{other}`"),
                                Span::at(start),
                            ))
                        }
                    }
                }
                Some(c) => value.push(c),
            }
        }
        self.push(TokKind::Str(value), start);
        Ok(())
    }

    fn number(&mut self) -> Result<()> {
        let start = self.pos();
        let mut text = String::new();
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            text.push(self.bump().expect("peeked digit"));
        }
        let is_float = self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit());
        if is_float {
            text.push(self.bump().expect("peeked dot"));
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                text.push(self.bump().expect("peeked digit"));
            }
            let v: f64 = text
                .parse()
                .map_err(|_| SyntaxError::new("invalid float literal", Span::at(start)))?;
            self.push(TokKind::Float(v), start);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| SyntaxError::new("integer literal out of range", Span::at(start)))?;
            self.push(TokKind::Int(v), start);
        }
        Ok(())
    }

    fn name(&mut self) {
        let start = self.pos();
        let mut text = String::new();
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            text.push(self.bump().expect("peeked name char"));
        }
        self.push(TokKind::Name(text), start);
    }

    fn symbol(&mut self) -> Result<()> {
        let start = self.pos();
        for sym in SYMBOLS {
            if self.matches(sym) {
                for _ in 0..sym.chars().count() {
                    self.bump();
                }
                match *sym {
                    "(" | "[" => self.paren_depth += 1,
                    ")" | "]" => self.paren_depth = self.paren_depth.saturating_sub(1),
                    _ => {}
                }
                self.push(TokKind::Symbol(sym), start);
                return Ok(());
            }
        }
        Err(SyntaxError::new(
            format!("unexpected character `{}`", self.peek().unwrap_or('?')),
            Span::at(start),
        ))
    }

    fn matches(&self, sym: &str) -> bool {
        sym.chars()
            .enumerate()
            .all(|(k, c)| self.chars.get(self.i + k) == Some(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_line() {
        let got = kinds("x = 1");
        assert_eq!(
            got,
            vec![
                TokKind::Name("x".into()),
                TokKind::Symbol("="),
                TokKind::Int(1),
                TokKind::Newline,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let got = kinds("for i in xs:\n    y\nz");
        assert!(got.contains(&TokKind::Indent));
        assert!(got.contains(&TokKind::Dedent));
        // Dedent comes before z's Name token.
        let dedent = got.iter().position(|t| *t == TokKind::Dedent).unwrap();
        let z = got
            .iter()
            .position(|t| *t == TokKind::Name("z".into()))
            .unwrap();
        assert!(dedent < z);
    }

    #[test]
    fn string_escapes() {
        let got = kinds(r#""a\nb\"c""#);
        assert_eq!(got[0], TokKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(kinds("1.5 2")[..2], [TokKind::Float(1.5), TokKind::Int(2)]);
        // A trailing dot is attribute access, not a float.
        assert_eq!(
            kinds("x.y")[..3],
            [
                TokKind::Name("x".into()),
                TokKind::Symbol("."),
                TokKind::Name("y".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let got = kinds("x # comment\ny");
        assert_eq!(
            got,
            vec![
                TokKind::Name("x".into()),
                TokKind::Newline,
                TokKind::Name("y".into()),
                TokKind::Newline,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn blank_lines_produce_no_tokens() {
        let got = kinds("a\n\n\nb");
        let names: Vec<_> = got
            .iter()
            .filter(|t| matches!(t, TokKind::Name(_)))
            .collect();
        assert_eq!(names.len(), 2);
        assert!(!got.contains(&TokKind::Indent));
    }

    #[test]
    fn implicit_joining_in_brackets() {
        let got = kinds("xs = [1,\n      2]");
        // No Newline between 1 and 2, no Indent either.
        assert!(!got.contains(&TokKind::Indent));
        let newlines = got.iter().filter(|t| **t == TokKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn multi_char_operators() {
        let got = kinds("a <= b == c");
        assert!(got.contains(&TokKind::Symbol("<=")));
        assert!(got.contains(&TokKind::Symbol("==")));
    }

    #[test]
    fn inconsistent_indent_errors() {
        assert!(lex("if x:\n        a\n    b\n  c").is_err());
    }

    #[test]
    fn final_dedents_emitted() {
        let got = kinds("if x:\n  a");
        let dedents = got.iter().filter(|t| **t == TokKind::Dedent).count();
        assert_eq!(dedents, 1);
        assert_eq!(*got.last().unwrap(), TokKind::Eof);
    }
}
