//! Recursive-descent parser for LMQL.
//!
//! Parses the grammar of Fig. 5:
//!
//! ```text
//! (import ⟨name⟩)*
//! ⟨decoder⟩[(kwargs)]
//!     ⟨query body: python-like statements⟩
//! from ⟨string⟩
//! [where ⟨condition⟩]
//! [distribute ⟨var⟩ in|over ⟨expr⟩]
//! ```

use crate::ast::*;
use crate::lexer::{lex, Tok, TokKind};
use crate::{parse_prompt, Result, Span, SyntaxError};

/// Words that cannot be used as identifiers.
const KEYWORDS: &[&str] = &[
    "for",
    "while",
    "in",
    "if",
    "elif",
    "else",
    "break",
    "continue",
    "pass",
    "not",
    "and",
    "or",
    "True",
    "False",
    "None",
    "import",
    "from",
    "where",
    "distribute",
    "over",
];

/// Parses a complete LMQL query.
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered while lexing or parsing.
///
/// # Example
///
/// ```
/// use lmql_syntax::parse_query;
///
/// let q = parse_query(r#"
/// argmax
///     "Say hi: [GREETING]"
/// from "test-model"
/// where len(GREETING) < 20
/// "#).unwrap();
/// assert_eq!(q.decoder.name, "argmax");
/// assert_eq!(q.model, "test-model");
/// assert!(q.where_clause.is_some());
/// ```
pub fn parse_query(source: &str) -> Result<Query> {
    let toks = lex(source)?;
    Parser::new(toks).query()
}

/// Parses a standalone expression (useful for building `where` clauses
/// programmatically and in tests).
///
/// # Errors
///
/// Returns the first [`SyntaxError`] encountered.
pub fn parse_expr(source: &str) -> Result<Expr> {
    let toks = lex(source)?;
    let filtered: Vec<Tok> = toks
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::Newline | TokKind::Indent | TokKind::Dedent))
        .collect();
    let mut p = Parser::new(filtered);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Tok>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_kind(&self) -> &TokKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_name(&self, word: &str) -> bool {
        matches!(self.peek_kind(), TokKind::Name(n) if n == word)
    }

    fn eat_name(&mut self, word: &str) -> bool {
        if self.at_name(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek_kind(), TokKind::Symbol(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<Span> {
        if self.eat_symbol(sym) {
            Ok(self.toks[self.pos - 1].span)
        } else {
            Err(self.unexpected(&format!("expected `{sym}`")))
        }
    }

    fn expect_newline(&mut self) -> Result<()> {
        if matches!(self.peek_kind(), TokKind::Newline) {
            self.bump();
            Ok(())
        } else if matches!(self.peek_kind(), TokKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of line"))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        // Trailing newlines are fine.
        while matches!(self.peek_kind(), TokKind::Newline) {
            self.bump();
        }
        if matches!(self.peek_kind(), TokKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("expected end of input"))
        }
    }

    fn identifier(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokKind::Name(n) if !KEYWORDS.contains(&n.as_str()) => {
                let span = self.bump().span;
                Ok((n, span))
            }
            _ => Err(self.unexpected("expected an identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> SyntaxError {
        SyntaxError::new(
            format!("{expected}, found {}", self.peek_kind()),
            self.peek().span,
        )
    }

    // ---- query structure ------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut imports = Vec::new();
        while self.at_name("import") {
            let span = self.bump().span;
            let (name, nspan) = self.identifier()?;
            self.expect_newline()?;
            imports.push(Import {
                name,
                span: span.to(nspan),
            });
        }

        let decoder = self.decoder_spec()?;
        self.expect_newline()?;

        if !matches!(self.peek_kind(), TokKind::Indent) {
            return Err(self.unexpected("expected an indented query body"));
        }
        self.bump();
        let body = self.stmts_until_dedent()?;

        if !self.eat_name("from") {
            return Err(self.unexpected("expected `from` clause"));
        }
        let model = match self.peek_kind().clone() {
            TokKind::Str(s) => {
                self.bump();
                s
            }
            _ => return Err(self.unexpected("expected a model string after `from`")),
        };
        self.expect_newline()?;

        let where_clause = if self.eat_name("where") {
            let toks = self.collect_clause_tokens()?;
            let mut sub = Parser::new(toks);
            let e = sub.expr()?;
            sub.expect_eof()?;
            Some(e)
        } else {
            None
        };

        let distribute = if self.at_name("distribute") {
            let span = self.bump().span;
            let toks = self.collect_clause_tokens()?;
            let mut sub = Parser::new(toks);
            let (var, _) = sub.identifier()?;
            if !(sub.eat_name("in") || sub.eat_name("over")) {
                return Err(sub.unexpected("expected `in` or `over` in distribute clause"));
            }
            let support = sub.expr()?;
            sub.expect_eof()?;
            Some(Distribute { var, support, span })
        } else {
            None
        };

        // Nothing may follow.
        while matches!(self.peek_kind(), TokKind::Newline | TokKind::Dedent) {
            self.bump();
        }
        if !matches!(self.peek_kind(), TokKind::Eof) {
            return Err(self.unexpected("expected end of query"));
        }

        Ok(Query {
            imports,
            decoder,
            body,
            model,
            where_clause,
            distribute,
        })
    }

    fn decoder_spec(&mut self) -> Result<DecoderSpec> {
        let (name, span) = match self.peek_kind().clone() {
            TokKind::Name(n) => {
                let span = self.bump().span;
                (n, span)
            }
            _ => return Err(self.unexpected("expected a decoder clause (argmax/sample/beam)")),
        };
        let mut params = Vec::new();
        if self.eat_symbol("(") && !self.eat_symbol(")") {
            loop {
                let (key, _) = self.identifier()?;
                self.expect_symbol("=")?;
                let value = self.param_value()?;
                params.push((key, value));
                if self.eat_symbol(")") {
                    break;
                }
                self.expect_symbol(",")?;
            }
        }
        Ok(DecoderSpec { name, params, span })
    }

    fn param_value(&mut self) -> Result<ParamValue> {
        match self.peek_kind().clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(ParamValue::Int(v))
            }
            TokKind::Float(v) => {
                self.bump();
                Ok(ParamValue::Float(v))
            }
            TokKind::Str(s) => {
                self.bump();
                Ok(ParamValue::Str(s))
            }
            TokKind::Name(n) if n == "True" => {
                self.bump();
                Ok(ParamValue::Bool(true))
            }
            TokKind::Name(n) if n == "False" => {
                self.bump();
                Ok(ParamValue::Bool(false))
            }
            _ => Err(self.unexpected("expected a literal parameter value")),
        }
    }

    /// Collects the tokens of a `where`/`distribute` clause: either the rest
    /// of the current line, or a following indented block. Structure tokens
    /// are dropped so the clause parses as one expression regardless of
    /// line breaks.
    fn collect_clause_tokens(&mut self) -> Result<Vec<Tok>> {
        let mut toks = Vec::new();
        if matches!(self.peek_kind(), TokKind::Newline) {
            self.bump();
            if !matches!(self.peek_kind(), TokKind::Indent) {
                return Err(self.unexpected("expected an indented clause body"));
            }
            self.bump();
            let mut depth = 0usize;
            loop {
                match self.peek_kind() {
                    TokKind::Indent => {
                        depth += 1;
                        self.bump();
                    }
                    TokKind::Dedent => {
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                        depth -= 1;
                        self.bump();
                    }
                    TokKind::Newline => {
                        self.bump();
                    }
                    TokKind::Eof => break,
                    _ => toks.push(self.bump()),
                }
            }
        } else {
            while !matches!(self.peek_kind(), TokKind::Newline | TokKind::Eof) {
                toks.push(self.bump());
            }
            self.expect_newline()?;
        }
        let end = self.peek().span;
        toks.push(Tok {
            kind: TokKind::Eof,
            span: end,
        });
        Ok(toks)
    }

    // ---- statements ------------------------------------------------------

    fn stmts_until_dedent(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            match self.peek_kind() {
                TokKind::Dedent => {
                    self.bump();
                    return Ok(stmts);
                }
                TokKind::Eof => return Ok(stmts),
                TokKind::Newline => {
                    self.bump();
                }
                _ => stmts.push(self.stmt()?),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek_kind().clone() {
            TokKind::Str(raw) => {
                let span = self.bump().span;
                // Validate segmentation eagerly so errors carry a location.
                parse_prompt(&raw, span)?;
                self.expect_newline()?;
                Ok(Stmt::Prompt { raw, span })
            }
            TokKind::Name(n) if n == "for" => self.for_stmt(),
            TokKind::Name(n) if n == "while" => self.while_stmt(),
            TokKind::Name(n) if n == "if" => self.if_stmt(),
            TokKind::Name(n) if n == "break" => {
                let span = self.bump().span;
                self.expect_newline()?;
                Ok(Stmt::Break(span))
            }
            TokKind::Name(n) if n == "continue" => {
                let span = self.bump().span;
                self.expect_newline()?;
                Ok(Stmt::Continue(span))
            }
            TokKind::Name(n) if n == "pass" => {
                let span = self.bump().span;
                self.expect_newline()?;
                Ok(Stmt::Pass(span))
            }
            TokKind::Name(n) if n == "import" => Err(SyntaxError::new(
                "imports are only allowed before the decoder clause",
                self.peek().span,
            )),
            _ => {
                let e = self.expr()?;
                if self.eat_symbol("=") {
                    let name = match &e {
                        Expr::Name { name, .. } => name.clone(),
                        _ => {
                            return Err(SyntaxError::new(
                                "assignment target must be a variable name",
                                e.span(),
                            ))
                        }
                    };
                    let value = self.expr()?;
                    let span = e.span().to(value.span());
                    self.expect_newline()?;
                    Ok(Stmt::Assign { name, value, span })
                } else {
                    self.expect_newline()?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect_symbol(":")?;
        if matches!(self.peek_kind(), TokKind::Newline) {
            self.bump();
            if !matches!(self.peek_kind(), TokKind::Indent) {
                return Err(self.unexpected("expected an indented block"));
            }
            self.bump();
            self.stmts_until_dedent()
        } else {
            // Single statement on the same line.
            Ok(vec![self.stmt()?])
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let span = self.bump().span; // `for`
        let (var, _) = self.identifier()?;
        if !self.eat_name("in") {
            return Err(self.unexpected("expected `in` after the loop variable"));
        }
        let iterable = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            iterable,
            body,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let span = self.bump().span; // `while`
        let cond = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let span = self.bump().span; // `if` or `elif`
        let cond = self.expr()?;
        let then_body = self.block()?;
        let else_body = if self.at_name("elif") {
            vec![self.if_stmt()?]
        } else if self.eat_name("else") {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let first = self.and_expr()?;
        if !self.at_name("or") {
            return Ok(first);
        }
        let mut operands = vec![first];
        while self.eat_name("or") {
            operands.push(self.and_expr()?);
        }
        let span = operands[0]
            .span()
            .to(operands.last().expect("nonempty").span());
        Ok(Expr::BoolOp {
            and: false,
            operands,
            span,
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let first = self.not_expr()?;
        if !self.at_name("and") {
            return Ok(first);
        }
        let mut operands = vec![first];
        while self.eat_name("and") {
            operands.push(self.not_expr()?);
        }
        let span = operands[0]
            .span()
            .to(operands.last().expect("nonempty").span());
        Ok(Expr::BoolOp {
            and: true,
            operands,
            span,
        })
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.at_name("not") {
            let span = self.bump().span;
            let operand = self.not_expr()?;
            let span = span.to(operand.span());
            return Ok(Expr::Not {
                operand: Box::new(operand),
                span,
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = if self.eat_symbol("<=") {
            Some(CmpOp::Le)
        } else if self.eat_symbol(">=") {
            Some(CmpOp::Ge)
        } else if self.eat_symbol("==") {
            Some(CmpOp::Eq)
        } else if self.eat_symbol("!=") {
            Some(CmpOp::Ne)
        } else if self.eat_symbol("<") {
            Some(CmpOp::Lt)
        } else if self.eat_symbol(">") {
            Some(CmpOp::Gt)
        } else if self.at_name("in") {
            self.bump();
            Some(CmpOp::In)
        } else if self.at_name("not") {
            // only `not in` is valid here
            self.bump();
            if !self.eat_name("in") {
                return Err(self.unexpected("expected `in` after `not`"));
            }
            Some(CmpOp::NotIn)
        } else {
            None
        };
        match op {
            None => Ok(left),
            Some(op) => {
                let right = self.additive()?;
                let span = left.span().to(right.span());
                Ok(Expr::Compare {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                    span,
                })
            }
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol("+") {
                BinOp::Add
            } else if self.eat_symbol("-") {
                BinOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative()?;
            let span = left.span().to(right.span());
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol("*") {
                BinOp::Mul
            } else if self.eat_symbol("/") {
                BinOp::Div
            } else if self.eat_symbol("%") {
                BinOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.unary()?;
            let span = left.span().to(right.span());
            left = Expr::BinOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek_kind(), TokKind::Symbol("-")) {
            let span = self.bump().span;
            let operand = self.unary()?;
            let span = span.to(operand.span());
            return Ok(Expr::Neg {
                operand: Box::new(operand),
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        loop {
            if self.eat_symbol("(") {
                let mut args = Vec::new();
                if !self.eat_symbol(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_symbol(")") {
                            break;
                        }
                        self.expect_symbol(",")?;
                    }
                }
                let span = e.span().to(self.toks[self.pos - 1].span);
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    span,
                };
            } else if self.eat_symbol(".") {
                let (name, nspan) = self.identifier()?;
                let span = e.span().to(nspan);
                e = Expr::Attribute {
                    obj: Box::new(e),
                    name,
                    span,
                };
            } else if self.eat_symbol("[") {
                // Index or slice.
                let lo = if matches!(self.peek_kind(), TokKind::Symbol(":")) {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                if self.eat_symbol(":") {
                    let hi = if matches!(self.peek_kind(), TokKind::Symbol("]")) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    let end = self.expect_symbol("]")?;
                    let span = e.span().to(end);
                    e = Expr::Slice {
                        obj: Box::new(e),
                        lo,
                        hi,
                        span,
                    };
                } else {
                    let end = self.expect_symbol("]")?;
                    let index =
                        lo.ok_or_else(|| SyntaxError::new("missing index expression", end))?;
                    let span = e.span().to(end);
                    e = Expr::Index {
                        obj: Box::new(e),
                        index,
                        span,
                    };
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokKind::Str(value) => {
                let span = self.bump().span;
                Ok(Expr::Str { value, span })
            }
            TokKind::Int(value) => {
                let span = self.bump().span;
                Ok(Expr::Int { value, span })
            }
            TokKind::Float(value) => {
                let span = self.bump().span;
                Ok(Expr::Float { value, span })
            }
            TokKind::Name(n) if n == "True" => {
                let span = self.bump().span;
                Ok(Expr::Bool { value: true, span })
            }
            TokKind::Name(n) if n == "False" => {
                let span = self.bump().span;
                Ok(Expr::Bool { value: false, span })
            }
            TokKind::Name(n) if n == "None" => {
                let span = self.bump().span;
                Ok(Expr::None { span })
            }
            TokKind::Name(n) if !KEYWORDS.contains(&n.as_str()) => {
                let span = self.bump().span;
                Ok(Expr::Name { name: n, span })
            }
            TokKind::Symbol("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            TokKind::Symbol("[") => {
                let span = self.bump().span;
                let mut items = Vec::new();
                if !self.eat_symbol("]") {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_symbol("]") {
                            break;
                        }
                        self.expect_symbol(",")?;
                    }
                }
                let span = span.to(self.toks[self.pos - 1].span);
                Ok(Expr::List { items, span })
            }
            _ => Err(self.unexpected("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1a_shape() {
        let q = parse_query(
            r#"
beam(n=3)
    "A list of good dad jokes. A indicates the punchline\n"
    "Q: How does a penguin build its house?\n"
    "A: Igloos it together. END\n"
    "Q: [JOKE]\n"
    "A: [PUNCHLINE]\n"
from "gpt2-medium"
where
    stops_at(JOKE, "?") and stops_at(PUNCHLINE, "END")
    and len(words(JOKE)) < 20
    and len(characters(PUNCHLINE)) > 10
"#,
        )
        .unwrap();
        assert_eq!(q.decoder.name, "beam");
        assert_eq!(q.decoder.int_param("n", 1), 3);
        assert_eq!(q.body.len(), 5);
        assert_eq!(q.model, "gpt2-medium");
        match q.where_clause.unwrap() {
            Expr::BoolOp {
                and: true,
                operands,
                ..
            } => assert_eq!(operands.len(), 4),
            other => panic!("unexpected where shape: {other:?}"),
        }
    }

    #[test]
    fn parses_fig1b_with_loop_and_distribute() {
        let q = parse_query(
            r#"
argmax
    "A list of things not to forget when travelling:\n"
    things = []
    for i in range(2):
        "- [THING]\n"
        things.append(THING)
    "The most important of these is [ITEM]."
from "EleutherAI/gpt-j-6B"
where
    THING in ["passport", "phone", "keys"] and len(words(THING)) <= 2
distribute
    ITEM over things
"#,
        )
        .unwrap();
        assert_eq!(q.body.len(), 4);
        match &q.body[2] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected for, got {other:?}"),
        }
        let d = q.distribute.unwrap();
        assert_eq!(d.var, "ITEM");
        assert!(matches!(d.support, Expr::Name { ref name, .. } if name == "things"));
    }

    #[test]
    fn parses_imports_and_if_elif() {
        let q = parse_query(
            r#"
import wikipedia_utils
sample(no_repeat_ngram_size=3)
    for i in range(1024):
        "[MODE] {i}:"
        if MODE == "Tho":
            "[THOUGHT] "
        elif MODE == "Act":
            " [ACTION] '[SUBJECT]\n"
            if ACTION == "Search":
                result = wikipedia_utils.search(SUBJECT[:-1])
                "Obs {i}: {result}\n"
            else:
                break
from "gpt2-xl"
where
    MODE in ["Tho", "Act"] and stops_at(THOUGHT, "\n")
"#,
        )
        .unwrap();
        assert_eq!(q.imports.len(), 1);
        assert_eq!(q.imports[0].name, "wikipedia_utils");
        match &q.body[0] {
            Stmt::For { body, .. } => match &body[1] {
                Stmt::If { else_body, .. } => {
                    assert_eq!(else_body.len(), 1);
                    assert!(matches!(else_body[0], Stmt::If { .. }));
                }
                other => panic!("expected if, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn where_on_single_line() {
        let q = parse_query("argmax\n    \"[X]\"\nfrom \"m\"\nwhere len(X) < 5\n").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Compare { .. })));
    }

    #[test]
    fn distribute_accepts_in_keyword() {
        let q = parse_query("argmax\n    \"[X]\"\nfrom \"m\"\ndistribute X in [\"a\", \"b\"]\n")
            .unwrap();
        assert_eq!(q.distribute.unwrap().var, "X");
    }

    #[test]
    fn slices_parse() {
        let e = parse_expr("SUBJECT[:-1]").unwrap();
        match e {
            Expr::Slice { lo, hi, .. } => {
                assert!(lo.is_none());
                assert!(matches!(*hi.unwrap(), Expr::Neg { .. }));
            }
            other => panic!("expected slice, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse_expr("a or b and c").unwrap();
        match e {
            Expr::BoolOp {
                and: false,
                operands,
                ..
            } => {
                assert_eq!(operands.len(), 2);
                assert!(matches!(operands[1], Expr::BoolOp { and: true, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_in_parses() {
        let e = parse_expr("\"x\" not in Y").unwrap();
        assert!(matches!(
            e,
            Expr::Compare {
                op: CmpOp::NotIn,
                ..
            }
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::BinOp {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::BinOp { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn method_call_chain() {
        let e = parse_expr("OPTIONS.split(\", \")").unwrap();
        match e {
            Expr::Call { func, args, .. } => {
                assert!(matches!(*func, Expr::Attribute { .. }));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_from_is_error() {
        let err = parse_query("argmax\n    \"[X]\"\n").unwrap_err();
        assert!(err.message().contains("from"));
    }

    #[test]
    fn bad_prompt_string_is_located() {
        let err = parse_query("argmax\n    \"oops [X\"\nfrom \"m\"\n").unwrap_err();
        assert!(err.message().contains("unclosed"));
        assert_eq!(err.span().start.line, 2);
    }

    #[test]
    fn assignment_target_must_be_name() {
        let err = parse_query("argmax\n    a.b = 1\nfrom \"m\"\n").unwrap_err();
        assert!(err.message().contains("assignment target"));
    }

    #[test]
    fn import_inside_body_rejected() {
        let err = parse_query("argmax\n    import x\nfrom \"m\"\n").unwrap_err();
        assert!(err.message().contains("imports"));
    }

    #[test]
    fn single_line_block() {
        let q = parse_query("argmax\n    if x: break\nfrom \"m\"\n").unwrap();
        match &q.body[0] {
            Stmt::If { then_body, .. } => assert!(matches!(then_body[0], Stmt::Break(_))),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
