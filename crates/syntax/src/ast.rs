//! The abstract syntax tree of an LMQL query.
//!
//! Mirrors the grammar of the paper's Fig. 5: a query has a decoder clause,
//! a scripted prompt body, a `from` clause naming the model, an optional
//! `where` constraint, and an optional `distribute` clause.

use crate::Span;

/// A full LMQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Modules imported before the decoder clause (`import wikipedia_utils`).
    pub imports: Vec<Import>,
    /// The decoding procedure and its parameters.
    pub decoder: DecoderSpec,
    /// The scripted prompt (the ⟨query⟩ block).
    pub body: Vec<Stmt>,
    /// The model identifier from the `from` clause.
    pub model: String,
    /// The `where` constraint, if any.
    pub where_clause: Option<Expr>,
    /// The `distribute` clause, if any.
    pub distribute: Option<Distribute>,
}

/// An `import name` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// The imported module name.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// The ⟨decoder⟩ clause: `argmax`, `sample(n=2)`, `beam(n=3)`, …
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderSpec {
    /// Decoder name (`argmax`, `sample`, `beam`).
    pub name: String,
    /// Keyword parameters (`n=3`, `temperature=0.7`, …).
    pub params: Vec<(String, ParamValue)>,
    /// Source location.
    pub span: Span,
}

impl DecoderSpec {
    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamValue> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Integer parameter helper with default.
    pub fn int_param(&self, name: &str, default: i64) -> i64 {
        match self.param(name) {
            Some(ParamValue::Int(v)) => *v,
            _ => default,
        }
    }

    /// Float parameter helper with default (accepts int values too).
    pub fn float_param(&self, name: &str, default: f64) -> f64 {
        match self.param(name) {
            Some(ParamValue::Float(v)) => *v,
            Some(ParamValue::Int(v)) => *v as f64,
            _ => default,
        }
    }
}

/// A literal decoder-parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

/// The `distribute ⟨var⟩ in ⟨expr⟩` clause (the paper also writes
/// `distribute ⟨var⟩ over ⟨expr⟩` in Fig. 10; both keywords are accepted).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribute {
    /// The hole variable whose distribution is measured. Must be the last
    /// hole of the query (checked by the compiler).
    pub var: String,
    /// Expression evaluating to the support set.
    pub support: Expr,
    /// Source location.
    pub span: Span,
}

/// A statement of the query body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A top-level string: a prompt statement (Alg. 1 applies).
    Prompt { raw: String, span: Span },
    /// An expression evaluated for effect (e.g. `things.append(THING)`).
    Expr(Expr),
    /// `name = expr`.
    Assign {
        name: String,
        value: Expr,
        span: Span,
    },
    /// `for var in iterable: body`.
    For {
        var: String,
        iterable: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `while cond: body`.
    While {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `if cond: … elif …: … else: …`, desugared to a chain.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        span: Span,
    },
    /// `break`.
    Break(Span),
    /// `continue`.
    Continue(Span),
    /// `pass`.
    Pass(Span),
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Prompt { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Break(span)
            | Stmt::Continue(span)
            | Stmt::Pass(span) => *span,
            Stmt::Expr(e) => e.span(),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (also string/list concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
}

/// Comparison operators (including membership).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `in` (substring or membership).
    In,
    /// `not in`.
    NotIn,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String literal.
    Str { value: String, span: Span },
    /// Integer literal.
    Int { value: i64, span: Span },
    /// Float literal.
    Float { value: f64, span: Span },
    /// `True` / `False`.
    Bool { value: bool, span: Span },
    /// `None`.
    None { span: Span },
    /// Variable reference.
    Name { name: String, span: Span },
    /// List literal.
    List { items: Vec<Expr>, span: Span },
    /// Function or method call.
    Call {
        func: Box<Expr>,
        args: Vec<Expr>,
        span: Span,
    },
    /// Attribute access `obj.name` (only meaningful as a call target or
    /// module member in this language subset).
    Attribute {
        obj: Box<Expr>,
        name: String,
        span: Span,
    },
    /// Indexing `obj[i]`.
    Index {
        obj: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// Slicing `obj[lo:hi]` with optional bounds.
    Slice {
        obj: Box<Expr>,
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
        span: Span,
    },
    /// Arithmetic.
    BinOp {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
        span: Span,
    },
    /// Comparison / membership.
    Compare {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
        span: Span,
    },
    /// `and` / `or` over two or more operands.
    BoolOp {
        and: bool,
        operands: Vec<Expr>,
        span: Span,
    },
    /// `not expr`.
    Not { operand: Box<Expr>, span: Span },
    /// Unary minus.
    Neg { operand: Box<Expr>, span: Span },
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Str { span, .. }
            | Expr::Int { span, .. }
            | Expr::Float { span, .. }
            | Expr::Bool { span, .. }
            | Expr::None { span }
            | Expr::Name { span, .. }
            | Expr::List { span, .. }
            | Expr::Call { span, .. }
            | Expr::Attribute { span, .. }
            | Expr::Index { span, .. }
            | Expr::Slice { span, .. }
            | Expr::BinOp { span, .. }
            | Expr::Compare { span, .. }
            | Expr::BoolOp { span, .. }
            | Expr::Not { span, .. }
            | Expr::Neg { span, .. } => *span,
        }
    }
}
