//! Segmentation of prompt strings into literal text, `[holes]` and
//! `{recalls}`.
//!
//! Top-level strings in an LMQL query body support two escaped subfields
//! (§3): `"[varname]"` is a *hole* the LM fills, `"{varname}"` recalls a
//! variable from the current scope. Everything else is literal text.
//! Doubling a delimiter (`[[`, `]]`, `{{`, `}}`) escapes it.

use crate::{Pos, Result, Span, SyntaxError};

/// One segment of a prompt string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text, appended to the interaction trace verbatim.
    Literal(String),
    /// `[VAR]`: decode a value from the LM and bind it to `VAR`.
    Hole(String),
    /// `{expr}`: substitute the value of an expression over the current
    /// scope (f-string style — plain `{var}` is the common case). The
    /// expression source is kept verbatim; the compiler parses it.
    Recall(String),
}

/// Splits a prompt string into segments.
///
/// # Errors
///
/// Returns a [`SyntaxError`] (located at `span`) for unbalanced brackets or
/// empty/invalid variable names.
///
/// # Example
///
/// ```
/// use lmql_syntax::{parse_prompt, Segment, Span};
///
/// let segs = parse_prompt("Q: [JOKE]\nA: {hint}", Span::default()).unwrap();
/// assert_eq!(segs, vec![
///     Segment::Literal("Q: ".into()),
///     Segment::Hole("JOKE".into()),
///     Segment::Literal("\nA: ".into()),
///     Segment::Recall("hint".into()),
/// ]);
/// ```
pub fn parse_prompt(raw: &str, span: Span) -> Result<Vec<Segment>> {
    let mut segments = Vec::new();
    let mut literal = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;

    let flush = |literal: &mut String, segments: &mut Vec<Segment>| {
        if !literal.is_empty() {
            segments.push(Segment::Literal(std::mem::take(literal)));
        }
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '[' | '{' => {
                let close = if c == '[' { ']' } else { '}' };
                if chars.get(i + 1) == Some(&c) {
                    literal.push(c);
                    i += 2;
                    continue;
                }
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != close {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(SyntaxError::new(
                        format!("unclosed `{c}` in prompt string"),
                        span,
                    ));
                }
                let content: String = chars[start..j].iter().collect();
                if c == '[' {
                    // Holes bind variables: identifier rules apply.
                    let valid_start = content
                        .chars()
                        .next()
                        .is_some_and(|ch| ch.is_alphabetic() || ch == '_');
                    if !valid_start || !content.chars().all(|ch| ch.is_alphanumeric() || ch == '_')
                    {
                        return Err(SyntaxError::new(
                            format!("invalid variable name `{content}` in prompt string"),
                            span,
                        ));
                    }
                    flush(&mut literal, &mut segments);
                    segments.push(Segment::Hole(content));
                } else {
                    // Recalls are full expressions, f-string style.
                    if let Err(e) = crate::parse_expr(&content) {
                        return Err(SyntaxError::new(
                            format!(
                                "invalid expression `{content}` in prompt string: {}",
                                e.message()
                            ),
                            span,
                        ));
                    }
                    flush(&mut literal, &mut segments);
                    segments.push(Segment::Recall(content));
                }
                i = j + 1;
            }
            ']' | '}' => {
                if chars.get(i + 1) == Some(&c) {
                    literal.push(c);
                    i += 2;
                } else {
                    return Err(SyntaxError::new(
                        format!("unmatched `{c}` in prompt string"),
                        span,
                    ));
                }
            }
            _ => {
                literal.push(c);
                i += 1;
            }
        }
    }
    flush(&mut literal, &mut segments);
    Ok(segments)
}

/// Convenience: the hole names of a prompt string, in order.
pub fn hole_names(raw: &str) -> Vec<String> {
    parse_prompt(raw, Span::at(Pos::default()))
        .map(|segs| {
            segs.into_iter()
                .filter_map(|s| match s {
                    Segment::Hole(n) => Some(n),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Vec<Segment> {
        parse_prompt(raw, Span::default()).unwrap()
    }

    #[test]
    fn plain_literal() {
        assert_eq!(parse("hello"), vec![Segment::Literal("hello".into())]);
    }

    #[test]
    fn empty_string_has_no_segments() {
        assert_eq!(parse(""), Vec::<Segment>::new());
    }

    #[test]
    fn hole_and_recall() {
        assert_eq!(
            parse("- [THING] of {i}\n"),
            vec![
                Segment::Literal("- ".into()),
                Segment::Hole("THING".into()),
                Segment::Literal(" of ".into()),
                Segment::Recall("i".into()),
                Segment::Literal("\n".into()),
            ]
        );
    }

    #[test]
    fn multiple_holes_in_one_string() {
        assert_eq!(
            parse("[A][B]"),
            vec![Segment::Hole("A".into()), Segment::Hole("B".into())]
        );
    }

    #[test]
    fn escaped_delimiters() {
        assert_eq!(
            parse("a [[literal]] {{brace}}"),
            vec![Segment::Literal("a [literal] {brace}".into())]
        );
    }

    #[test]
    fn unclosed_hole_is_error() {
        assert!(parse_prompt("a [B", Span::default()).is_err());
        assert!(parse_prompt("a {b", Span::default()).is_err());
    }

    #[test]
    fn stray_close_is_error() {
        assert!(parse_prompt("a ] b", Span::default()).is_err());
        assert!(parse_prompt("a } b", Span::default()).is_err());
    }

    #[test]
    fn invalid_names_rejected() {
        assert!(parse_prompt("[]", Span::default()).is_err());
        assert!(parse_prompt("[A B]", Span::default()).is_err());
        assert!(
            parse_prompt("[9X]", Span::default()).is_err(),
            "no digit-leading names"
        );
        assert!(parse_prompt("[_ok]", Span::default()).is_ok());
    }

    #[test]
    fn hole_names_helper() {
        assert_eq!(hole_names("x [A] y [B] {c}"), vec!["A", "B"]);
    }
}
