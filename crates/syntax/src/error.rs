//! Syntax errors with source locations.

use crate::Span;
use std::fmt;

/// An error produced while lexing or parsing LMQL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    message: String,
    span: Span,
}

impl SyntaxError {
    /// A new error at the given location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        SyntaxError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable message (lowercase, no trailing punctuation).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SyntaxError {}

/// Result alias for syntax-phase operations.
pub type Result<T> = std::result::Result<T, SyntaxError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pos;

    #[test]
    fn display_includes_location() {
        let e = SyntaxError::new("unexpected token", Span::at(Pos::new(2, 4)));
        assert_eq!(e.to_string(), "syntax error at 2:4: unexpected token");
    }
}
