//! Formatter round-trip properties: formatting is a fixed point under
//! parse∘format, for the paper's figure queries and random expressions.

use lmql_syntax::{format_query, parse_query};

const SOURCES: &[&str] = &[
    // Fig. 1a
    "beam(n=3)\n    \"Q: [JOKE]\\n\"\n    \"A: [PUNCHLINE]\\n\"\nfrom \"gpt2-medium\"\nwhere stops_at(JOKE, \"?\") and len(words(JOKE)) < 20\n",
    // Fig. 1b
    "argmax\n    things = []\n    for i in range(2):\n        \"- [THING]\\n\"\n        things.append(THING)\n    \"The most important of these is [ITEM].\"\nfrom \"m\"\nwhere THING in [\"passport\", \"keys\"]\ndistribute ITEM in things\n",
    // ReAct-ish
    "import wiki\nsample(n=2, temperature=0.7)\n    for i in range(10):\n        \"[MODE]:\"\n        if MODE == \"Tho\":\n            \"[THOUGHT]\"\n        elif MODE == \"Act\":\n            r = wiki.search(S[:-1])\n            \"Obs {i}: {r}\\n\"\n        else:\n            break\nfrom \"m\"\nwhere MODE in [\"Tho\", \"Act\"]\n",
    // while + recalls
    "argmax\n    n = 0\n    while n < 5:\n        n = n + 1\n    \"n = {n + 1}\"\nfrom \"m\"\n",
];

#[test]
fn figure_queries_are_format_fixed_points() {
    for src in SOURCES {
        let q1 = parse_query(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let f1 = format_query(&q1);
        let q2 = parse_query(&f1).unwrap_or_else(|e| panic!("formatted failed: {e}\n{f1}"));
        let f2 = format_query(&q2);
        assert_eq!(f1, f2, "format not idempotent for {src:?}");
    }
}

// The random-expression property suite rides behind the default-off
// `slow-tests` feature: run it with `cargo test --features slow-tests`.
#[cfg(feature = "slow-tests")]
mod props {
    use lmql_syntax::{format_expr, parse_expr};
    use proptest::prelude::*;

    fn expr_strategy() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("x".to_owned()),
            Just("Y2".to_owned()),
            (0i64..100).prop_map(|n| n.to_string()),
            Just("\"s\"".to_owned()),
            Just("True".to_owned()),
            Just("None".to_owned()),
        ];
        leaf.prop_recursive(4, 48, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} < {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
                inner.clone().prop_map(|a| format!("(not {a})")),
                inner.clone().prop_map(|a| format!("(-{a})")),
                inner.clone().prop_map(|a| format!("len({a})")),
                (inner.clone(), inner).prop_map(|(a, b)| format!("[{a}, {b}]")),
            ]
        })
    }

    proptest! {
        /// format ∘ parse is idempotent on random expressions, and the
        /// formatted form parses back to the same formatted form (i.e. the
        /// formatter's minimal parentheses preserve structure).
        #[test]
        fn random_exprs_roundtrip(src in expr_strategy()) {
            let e1 = parse_expr(&src).unwrap();
            let f1 = format_expr(&e1);
            let e2 = parse_expr(&f1).unwrap_or_else(|err| panic!("{f1:?}: {err}"));
            let f2 = format_expr(&e2);
            prop_assert_eq!(&f1, &f2, "not idempotent for {}", src);
        }
    }
}
