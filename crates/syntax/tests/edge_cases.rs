//! Parser and lexer edge cases beyond the happy paths.

use lmql_syntax::ast::{Expr, ParamValue, Stmt};
use lmql_syntax::{lex, parse_expr, parse_query, TokKind};

#[test]
fn deeply_nested_control_flow() {
    let q = parse_query(
        r#"
argmax
    for i in range(3):
        for j in range(3):
            if i == j:
                if i == 1:
                    "diag one [X]"
                else:
                    pass
            elif i < j:
                continue
            else:
                break
from "m"
"#,
    )
    .unwrap();
    // Drill to the innermost prompt.
    let Stmt::For { body, .. } = &q.body[0] else {
        panic!()
    };
    let Stmt::For { body, .. } = &body[0] else {
        panic!()
    };
    let Stmt::If {
        then_body,
        else_body,
        ..
    } = &body[0]
    else {
        panic!()
    };
    let Stmt::If {
        then_body: inner, ..
    } = &then_body[0]
    else {
        panic!()
    };
    assert!(matches!(inner[0], Stmt::Prompt { .. }));
    // elif desugars into else → if.
    assert!(matches!(else_body[0], Stmt::If { .. }));
}

#[test]
fn comments_everywhere() {
    let q = parse_query(
        "# leading comment\nargmax  # decoder comment\n    # body comment\n    \"[X]\"  # trailing\nfrom \"m\"  # model\n# done\n",
    )
    .unwrap();
    assert_eq!(q.body.len(), 1);
}

#[test]
fn error_positions_are_precise() {
    let err = parse_query("argmax\n    \"ok\"\n    1 +\nfrom \"m\"\n").unwrap_err();
    assert_eq!(err.span().start.line, 4, "{err}");

    let err = parse_expr("a + + b").unwrap_err();
    assert_eq!(err.span().start.line, 1);
    assert!(err.span().start.col >= 5, "{err}");
}

#[test]
fn decoder_params_of_all_types() {
    let q = parse_query(
        "sample(n=3, temperature=0.7, mode=\"fast\", greedy=True, strict=False)\n    \"[X]\"\nfrom \"m\"\n",
    )
    .unwrap();
    assert_eq!(q.decoder.param("n"), Some(&ParamValue::Int(3)));
    assert_eq!(
        q.decoder.param("temperature"),
        Some(&ParamValue::Float(0.7))
    );
    assert_eq!(
        q.decoder.param("mode"),
        Some(&ParamValue::Str("fast".into()))
    );
    assert_eq!(q.decoder.param("greedy"), Some(&ParamValue::Bool(true)));
    assert_eq!(q.decoder.param("strict"), Some(&ParamValue::Bool(false)));
    assert_eq!(q.decoder.float_param("n", 0.0), 3.0, "int widens to float");
}

#[test]
fn where_clause_with_parens_across_lines() {
    let q = parse_query(
        "argmax\n    \"[X]\"\nfrom \"m\"\nwhere\n    (len(X) < 10 and\n     stops_at(X, \".\")) or\n    X in [\"a\",\n          \"b\"]\n",
    )
    .unwrap();
    assert!(matches!(
        q.where_clause.unwrap(),
        Expr::BoolOp { and: false, .. }
    ));
}

#[test]
fn keywords_cannot_be_identifiers() {
    assert!(parse_query("argmax\n    for = 3\nfrom \"m\"\n").is_err());
    assert!(parse_expr("not").is_err());
    assert!(parse_expr("in").is_err());
}

#[test]
fn chained_not_parses() {
    let e = parse_expr("not not x").unwrap();
    let Expr::Not { operand, .. } = e else {
        panic!()
    };
    assert!(matches!(*operand, Expr::Not { .. }));
}

#[test]
fn unary_minus_binds_tighter_than_mul() {
    let e = parse_expr("-2 * 3").unwrap();
    let Expr::BinOp { left, .. } = e else {
        panic!()
    };
    assert!(matches!(*left, Expr::Neg { .. }));
}

#[test]
fn empty_list_and_nested_lists() {
    let e = parse_expr("[[], [1, 2], [[3]]]").unwrap();
    let Expr::List { items, .. } = e else {
        panic!()
    };
    assert_eq!(items.len(), 3);
}

#[test]
fn lexer_token_stream_shape() {
    let toks = lex("x = [1,\n     2]\ny\n").unwrap();
    let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
    // Implicit joining inside brackets: no Newline between 1 and 2.
    let newlines = kinds
        .iter()
        .filter(|k| matches!(k, TokKind::Newline))
        .count();
    assert_eq!(newlines, 2);
}

#[test]
fn crlf_and_tabs_tolerated() {
    let q = parse_query("argmax\r\n\t\"[X]\"\r\nfrom \"m\"\r\n").unwrap();
    assert_eq!(q.body.len(), 1);
}

#[test]
fn multiple_imports_in_order() {
    let q = parse_query("import alpha\nimport beta\nargmax\n    \"[X]\"\nfrom \"m\"\n").unwrap();
    let names: Vec<&str> = q.imports.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["alpha", "beta"]);
}

#[test]
fn trailing_content_after_distribute_rejected() {
    let err = parse_query("argmax\n    \"[X]\"\nfrom \"m\"\ndistribute X in [\"a\"]\nargmax\n")
        .unwrap_err();
    assert!(err.message().contains("end of query"), "{err}");
}

#[test]
fn string_escape_coverage() {
    let q = parse_query(
        "argmax\n    \"tab\\t backslash\\\\ quote\\\" cr\\r nul\\0 [X]\"\nfrom \"m\"\n",
    )
    .unwrap();
    let Stmt::Prompt { raw, .. } = &q.body[0] else {
        panic!()
    };
    assert!(raw.contains('\t'));
    assert!(raw.contains('\\'));
    assert!(raw.contains('"'));
    assert!(raw.contains('\r'));
    assert!(raw.contains('\0'));
}

#[test]
fn float_vs_attribute_disambiguation() {
    // `1.5` is a float; `x.y` is attribute; `1 .y` would be an error.
    let e = parse_expr("1.5 + 2").unwrap();
    assert!(matches!(e, Expr::BinOp { .. }));
    let e = parse_expr("obj.method(1.5)").unwrap();
    assert!(matches!(e, Expr::Call { .. }));
}

#[test]
fn prompt_validation_happens_at_parse_time() {
    for bad in ["\"[]\"", "\"[9X]\"", "\"{a b}\"", "\"x ] y\""] {
        let src = format!("argmax\n    {bad}\nfrom \"m\"\n");
        assert!(parse_query(&src).is_err(), "{bad} should be rejected");
    }
    // Digits allowed after the first char, underscores fine.
    let ok = "argmax\n    \"[X_2] {var_3}\"\nfrom \"m\"\n";
    assert!(parse_query(ok).is_ok());
}
