//! Deterministic fault injection: a seeded chaos wrapper for any model.
//!
//! [`ChaosLm`] sits between a consumer and a real [`LanguageModel`] and
//! injects the failure modes a remote backend exhibits — transient
//! errors, latency spikes, truncated replies, and (optionally) a fatal
//! error — according to a [`FaultPlan`]. Every injection decision is a
//! **pure function of the plan's seed and the call ordinal**: replaying
//! the same call sequence with the same seed reproduces the same faults,
//! which is what makes chaos tests assertable rather than flaky.
//!
//! Under concurrency the *assignment* of ordinals to calls follows
//! arrival order, so which context hits which fault can vary — but the
//! fault *pattern* (how many, of which kind, at which ordinals) is fixed,
//! and a retry layer above must absorb all of it either way.

use crate::{FaultKind, LanguageModel, LmError, LmResult, Logits};
use lmql_obs::Counter;
use lmql_tokenizer::{TokenId, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What faults to inject, and how often.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the per-call fault decisions.
    pub seed: u64,
    /// Probability a call returns a transient error.
    pub error_rate: f64,
    /// Probability a call returns a truncated logits vector (half the
    /// vocabulary) — caught by the retry layer's length validation.
    pub truncate_rate: f64,
    /// Probability a call stalls for [`latency`](Self::latency) first
    /// (drawn independently of the error faults; a call can both stall
    /// and fail).
    pub latency_rate: f64,
    /// The injected stall.
    pub latency: Duration,
    /// Call ordinals (0-based) that fail transiently regardless of rates
    /// — for pinning "error on the nth call" in regression tests.
    pub error_on_calls: Vec<u64>,
    /// Call ordinals that fail fatally regardless of rates.
    pub fatal_on_calls: Vec<u64>,
}

impl FaultPlan {
    /// A plan injecting transient errors at `error_rate` plus small
    /// latency spikes, seeded for reproducibility — the standard chaos
    /// profile used by tests and `lmql-run --chaos`.
    pub fn transient(seed: u64, error_rate: f64) -> Self {
        FaultPlan {
            seed,
            error_rate,
            truncate_rate: error_rate / 4.0,
            latency_rate: error_rate / 2.0,
            latency: Duration::from_micros(500),
            ..FaultPlan::default()
        }
    }
}

/// What the plan decided for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    TransientError,
    Truncate,
    Fatal,
}

/// Injection counters (shared by clones; readable while a test runs).
#[derive(Debug, Clone, Default)]
pub struct ChaosStats {
    /// Transient errors injected.
    pub errors: Counter,
    /// Truncated replies injected.
    pub truncations: Counter,
    /// Latency spikes injected.
    pub latency_spikes: Counter,
    /// Fatal errors injected.
    pub fatal: Counter,
}

impl ChaosStats {
    /// Total injected faults (excluding pure latency spikes).
    pub fn total_faults(&self) -> u64 {
        self.errors.get() + self.truncations.get() + self.fatal.get()
    }
}

/// A [`LanguageModel`] wrapper that injects faults per a [`FaultPlan`].
///
/// The infallible [`score`](LanguageModel::score) path panics on an
/// injected error (the trait contract has no error channel); put a
/// [`RetryLm`](crate::RetryLm) — or the scheduler's fault-tolerant
/// dispatch — on top to exercise recovery.
#[derive(Debug)]
pub struct ChaosLm<L> {
    inner: L,
    plan: FaultPlan,
    calls: AtomicU64,
    stats: ChaosStats,
}

impl<L: LanguageModel> ChaosLm<L> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        ChaosLm {
            inner,
            plan,
            calls: AtomicU64::new(0),
            stats: ChaosStats::default(),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Calls observed so far (each context of a batch counts once).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// The fault decision for call ordinal `n` — pure in `(seed, n)`.
    fn decide(&self, n: u64) -> Fault {
        if self.plan.fatal_on_calls.contains(&n) {
            return Fault::Fatal;
        }
        if self.plan.error_on_calls.contains(&n) {
            return Fault::TransientError;
        }
        let u = unit_draw(self.plan.seed, n, 0);
        if u < self.plan.error_rate {
            Fault::TransientError
        } else if u < self.plan.error_rate + self.plan.truncate_rate {
            Fault::Truncate
        } else {
            Fault::None
        }
    }

    fn maybe_stall(&self, n: u64) {
        if self.plan.latency_rate > 0.0
            && unit_draw(self.plan.seed, n, 1) < self.plan.latency_rate
            && !self.plan.latency.is_zero()
        {
            self.stats.latency_spikes.inc();
            std::thread::sleep(self.plan.latency);
        }
    }

    fn chaotic_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        self.maybe_stall(n);
        match self.decide(n) {
            Fault::None => self.inner.try_score(context),
            Fault::TransientError => {
                self.stats.errors.inc();
                Err(LmError::transient(
                    FaultKind::Injected,
                    format!("chaos: injected transient error on call {n}"),
                ))
            }
            Fault::Truncate => {
                self.stats.truncations.inc();
                let full = self.inner.try_score(context)?;
                let keep = full.len() / 2;
                Ok(Logits::from_vec(full.scores()[..keep].to_vec()))
            }
            Fault::Fatal => {
                self.stats.fatal.inc();
                Err(LmError::fatal(format!(
                    "chaos: injected fatal error on call {n}"
                )))
            }
        }
    }
}

/// A uniform draw in `[0, 1)`, pure in `(seed, ordinal, stream)`.
fn unit_draw(seed: u64, ordinal: u64, stream: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(ordinal.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .wrapping_add(stream.wrapping_mul(0xda94_2042_e4dd_58b5));
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl<L: LanguageModel> LanguageModel for ChaosLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    /// # Panics
    ///
    /// Panics on an injected error — the infallible path has no error
    /// channel. Wrap in a retry layer for recovery.
    fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context)
            .unwrap_or_else(|e| panic!("unhandled injected fault: {e}"))
    }

    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        self.chaotic_score(context)
    }

    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        contexts.iter().map(|c| self.score(c)).collect()
    }

    /// Each context draws its own fault decision (its own ordinal), so a
    /// batch can come back with a mix of successes and failures — exactly
    /// the partial-failure shape the scheduler must survive.
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        contexts.iter().map(|c| self.chaotic_score(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RetryLm, RetryPolicy, UniformLm};
    use lmql_tokenizer::Bpe;
    use std::sync::Arc;

    fn uniform() -> UniformLm {
        UniformLm::new(Arc::new(Bpe::char_level("")))
    }

    fn fault_pattern(plan: &FaultPlan, calls: u64) -> Vec<bool> {
        let lm = ChaosLm::new(uniform(), plan.clone());
        (0..calls).map(|_| lm.try_score(&[]).is_err()).collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::transient(7, 0.3);
        assert_eq!(fault_pattern(&plan, 200), fault_pattern(&plan, 200));
    }

    #[test]
    fn different_seed_different_faults() {
        let a = fault_pattern(&FaultPlan::transient(1, 0.3), 200);
        let b = fault_pattern(&FaultPlan::transient(2, 0.3), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn error_rate_is_roughly_honoured() {
        let plan = FaultPlan {
            seed: 11,
            error_rate: 0.2,
            ..FaultPlan::default()
        };
        let fails = fault_pattern(&plan, 1000).iter().filter(|f| **f).count();
        assert!(
            (120..=280).contains(&fails),
            "expected ~200 failures of 1000, got {fails}"
        );
    }

    #[test]
    fn error_on_nth_call_is_exact() {
        let plan = FaultPlan {
            error_on_calls: vec![0, 3],
            ..FaultPlan::default()
        };
        let lm = ChaosLm::new(uniform(), plan);
        assert!(lm.try_score(&[]).is_err(), "call 0 injected");
        assert!(lm.try_score(&[]).is_ok());
        assert!(lm.try_score(&[]).is_ok());
        assert!(lm.try_score(&[]).is_err(), "call 3 injected");
        assert!(lm.try_score(&[]).is_ok());
        assert_eq!(lm.stats().errors.get(), 2);
    }

    #[test]
    fn fatal_on_call_is_fatal() {
        let plan = FaultPlan {
            fatal_on_calls: vec![1],
            ..FaultPlan::default()
        };
        let lm = ChaosLm::new(uniform(), plan);
        assert!(lm.try_score(&[]).is_ok());
        let err = lm.try_score(&[]).unwrap_err();
        assert!(matches!(err, LmError::Fatal { .. }));
    }

    #[test]
    fn truncation_shortens_the_reply() {
        let plan = FaultPlan {
            seed: 3,
            truncate_rate: 1.0,
            ..FaultPlan::default()
        };
        let lm = ChaosLm::new(uniform(), plan);
        let out = lm.try_score(&[]).unwrap();
        assert_eq!(out.len(), lm.vocab().len() / 2);
        assert_eq!(lm.stats().truncations.get(), 1);
    }

    #[test]
    fn retry_layer_recovers_chaos_to_clean_scores() {
        let reference = uniform();
        let chaotic = ChaosLm::new(uniform(), FaultPlan::transient(9, 0.5));
        let lm = RetryLm::new(
            chaotic,
            RetryPolicy {
                max_retries: 20,
                base_backoff: Duration::from_micros(10),
                max_backoff: Duration::from_micros(50),
                jitter: 0.0,
                seed: 0,
                deadline: None,
            },
        );
        for ctx in [&[][..], &[TokenId(1)][..], &[TokenId(2), TokenId(3)][..]] {
            assert_eq!(lm.try_score(ctx).unwrap(), reference.score(ctx));
        }
    }
}
