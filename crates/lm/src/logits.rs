//! Next-token score vectors and the probability math from §2.1.

use lmql_tokenizer::{TokenId, TokenSet};
use rand::Rng;

/// Raw per-token scores `z = f(t_1, …, t_k)` returned by a model.
///
/// Convert to probabilities with [`Logits::softmax`], optionally with a
/// temperature `τ` (`softmax(z/τ)`, §2.1), and apply decoding masks with
/// [`Distribution::masked`].
///
/// # Example
///
/// ```
/// use lmql_lm::Logits;
/// use lmql_tokenizer::TokenId;
///
/// let logits = Logits::from_vec(vec![0.0, 1.0, 2.0]);
/// let dist = logits.softmax(1.0);
/// assert_eq!(dist.argmax(), TokenId(2));
/// assert!((dist.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Logits {
    scores: Vec<f64>,
}

impl Logits {
    /// Wraps a raw score vector.
    pub fn from_vec(scores: Vec<f64>) -> Self {
        Logits { scores }
    }

    /// A constant score vector of the given length.
    pub fn constant(len: usize, value: f64) -> Self {
        Logits {
            scores: vec![value; len],
        }
    }

    /// Number of entries (= vocabulary size).
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` if the vector is empty (never the case for real models).
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The raw score of one token.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn get(&self, id: TokenId) -> f64 {
        self.scores[id.index()]
    }

    /// Sets the raw score of one token.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set(&mut self, id: TokenId, value: f64) {
        self.scores[id.index()] = value;
    }

    /// Raises the score of `id` to at least `value`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn raise(&mut self, id: TokenId, value: f64) {
        let s = &mut self.scores[id.index()];
        if *s < value {
            *s = value;
        }
    }

    /// Read-only access to the raw scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// `softmax(z/τ)` over the scores.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0` or the vector is empty.
    pub fn softmax(&self, temperature: f64) -> Distribution {
        let mut out = Distribution::empty();
        self.softmax_into(temperature, &mut out);
        out
    }

    /// [`Logits::softmax`] into a reused buffer: `out` is overwritten
    /// with exactly the same values (identical floating-point operation
    /// order), allocation-free once `out` has the vocabulary's capacity.
    /// The decode loop's steady-state entry point.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0` or the vector is empty.
    pub fn softmax_into(&self, temperature: f64, out: &mut Distribution) {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(!self.scores.is_empty(), "cannot softmax empty logits");
        let max = self
            .scores
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        out.probs.clear();
        out.probs.reserve(self.scores.len());
        out.probs
            .extend(self.scores.iter().map(|&z| ((z - max) / temperature).exp()));
        let sum: f64 = out.probs.iter().sum();
        for p in &mut out.probs {
            *p /= sum;
        }
    }
}

/// A probability distribution over the vocabulary (entries sum to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    probs: Vec<f64>,
}

impl Distribution {
    /// An empty distribution, for use as a reusable
    /// [`Logits::softmax_into`] scratch buffer.
    pub fn empty() -> Self {
        Distribution { probs: Vec::new() }
    }

    /// Read-only access to the probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The probability of one token.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn prob(&self, id: TokenId) -> f64 {
        self.probs[id.index()]
    }

    /// `m ⊙ softmax(z)` renormalised by `1/Σᵢ(m ⊙ softmax(z))ᵢ`
    /// (§2.1 "Masked Decoding"). Returns `None` when the mask removes all
    /// probability mass (the `⋀ᵢ mᵢ = 0` early-exit of Alg. 2).
    ///
    /// # Panics
    ///
    /// Panics if the mask universe does not match the distribution length.
    pub fn masked(&self, mask: &TokenSet) -> Option<Distribution> {
        let mut out = self.clone();
        if out.mask_in_place(mask) {
            Some(out)
        } else {
            None
        }
    }

    /// [`Distribution::masked`] without the clone: zeroes the non-mask
    /// entries and renormalises in place, with the identical
    /// floating-point operation order. Returns `false` (leaving the
    /// contents unnormalised garbage) when the mask removes all
    /// probability mass; callers then discard or overwrite the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the mask universe does not match the distribution length.
    pub fn mask_in_place(&mut self, mask: &TokenSet) -> bool {
        assert_eq!(
            mask.universe_len(),
            self.probs.len(),
            "mask universe does not match distribution"
        );
        for (i, p) in self.probs.iter_mut().enumerate() {
            if !mask.contains(TokenId(i as u32)) {
                *p = 0.0;
            }
        }
        let z: f64 = self.probs.iter().sum();
        if z <= 0.0 {
            return false;
        }
        for p in &mut self.probs {
            *p /= z;
        }
        true
    }

    /// The highest-probability token; ties break toward the lowest id so
    /// argmax decoding is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn argmax(&self) -> TokenId {
        assert!(!self.probs.is_empty(), "empty distribution");
        let mut best = 0usize;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > self.probs[best] {
                best = i;
            }
        }
        TokenId(best as u32)
    }

    /// Samples a token according to the distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TokenId {
        assert!(!self.probs.is_empty(), "empty distribution");
        let x: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if x < acc {
                return TokenId(i as u32);
            }
        }
        // Floating-point slack: fall back to the last positive entry.
        let last = self
            .probs
            .iter()
            .rposition(|&p| p > 0.0)
            .unwrap_or(self.probs.len() - 1);
        TokenId(last as u32)
    }

    /// The `k` highest-probability tokens with their probabilities, in
    /// decreasing order (ties toward lower ids). Used by beam search.
    pub fn top_k(&self, k: usize) -> Vec<(TokenId, f64)> {
        let mut idx: Vec<usize> = (0..self.probs.len()).collect();
        idx.sort_by(|&a, &b| {
            self.probs[b]
                .partial_cmp(&self.probs[a])
                .expect("probabilities are never NaN")
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(k)
            .map(|i| (TokenId(i as u32), self.probs[i]))
            .collect()
    }

    /// Natural-log probability of one token (`-inf` for zero probability).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn log_prob(&self, id: TokenId) -> f64 {
        let p = self.probs[id.index()];
        if p > 0.0 {
            p.ln()
        } else {
            f64::NEG_INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_tokenizer::TokenSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let d = Logits::from_vec(vec![1.0, 2.0, 3.0, -1.0]).softmax(1.0);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_monotone() {
        let d = Logits::from_vec(vec![0.0, 1.0, 2.0]).softmax(1.0);
        assert!(d.prob(TokenId(0)) < d.prob(TokenId(1)));
        assert!(d.prob(TokenId(1)) < d.prob(TokenId(2)));
    }

    #[test]
    fn high_temperature_flattens() {
        let logits = Logits::from_vec(vec![0.0, 4.0]);
        let sharp = logits.softmax(0.5);
        let flat = logits.softmax(4.0);
        assert!(sharp.prob(TokenId(1)) > flat.prob(TokenId(1)));
        assert!(flat.prob(TokenId(0)) > sharp.prob(TokenId(0)));
    }

    #[test]
    fn masked_renormalises() {
        let d = Logits::from_vec(vec![1.0, 1.0, 1.0, 1.0]).softmax(1.0);
        let mask = TokenSet::from_ids(4, [TokenId(1), TokenId(2)]);
        let m = d.masked(&mask).unwrap();
        assert_eq!(m.prob(TokenId(0)), 0.0);
        assert!((m.prob(TokenId(1)) - 0.5).abs() < 1e-12);
        assert!((m.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_masked_is_none() {
        let d = Logits::from_vec(vec![1.0, 2.0]).softmax(1.0);
        assert!(d.masked(&TokenSet::empty(2)).is_none());
    }

    #[test]
    fn argmax_tie_breaks_low() {
        let d = Logits::from_vec(vec![1.0, 1.0]).softmax(1.0);
        assert_eq!(d.argmax(), TokenId(0));
    }

    #[test]
    fn sample_respects_mask() {
        let d = Logits::from_vec(vec![5.0, 5.0, 5.0]).softmax(1.0);
        let mask = TokenSet::from_ids(3, [TokenId(2)]);
        let m = d.masked(&mask).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(m.sample(&mut rng), TokenId(2));
        }
    }

    #[test]
    fn top_k_ordered() {
        let d = Logits::from_vec(vec![0.0, 3.0, 1.0, 2.0]).softmax(1.0);
        let top: Vec<TokenId> = d.top_k(3).into_iter().map(|(t, _)| t).collect();
        assert_eq!(top, vec![TokenId(1), TokenId(3), TokenId(2)]);
    }

    #[test]
    fn log_prob_matches() {
        let d = Logits::from_vec(vec![0.0, 0.0]).softmax(1.0);
        assert!((d.log_prob(TokenId(0)) - 0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let _ = Logits::from_vec(vec![1.0]).softmax(0.0);
    }

    #[test]
    fn softmax_into_is_bit_identical_and_reusable() {
        let logits = Logits::from_vec(vec![0.3, -1.7, 2.2, 0.0, 5.5]);
        let mut scratch = Distribution::empty();
        for &temp in &[0.5, 1.0, 2.0] {
            // Dirty the buffer to prove it is fully overwritten.
            scratch.probs = vec![9.0; 2];
            logits.softmax_into(temp, &mut scratch);
            let fresh = logits.softmax(temp);
            assert_eq!(
                scratch
                    .probs()
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<_>>(),
                fresh
                    .probs()
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<_>>(),
                "softmax_into must be bit-identical to softmax at τ={temp}"
            );
        }
    }

    #[test]
    fn mask_in_place_is_bit_identical() {
        let d = Logits::from_vec(vec![1.0, 0.5, 3.0, -2.0]).softmax(1.0);
        let mask = TokenSet::from_ids(4, [TokenId(0), TokenId(2)]);
        let fresh = d.masked(&mask).unwrap();
        let mut inplace = d.clone();
        assert!(inplace.mask_in_place(&mask));
        assert_eq!(
            inplace
                .probs()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            fresh
                .probs()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn mask_in_place_reports_dead_mask() {
        let mut d = Logits::from_vec(vec![1.0, 2.0]).softmax(1.0);
        assert!(!d.mask_in_place(&TokenSet::empty(2)));
    }
}
