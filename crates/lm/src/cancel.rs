//! Cooperative cancellation for in-flight model work.
//!
//! Streaming queries (DESIGN.md §11) can be abandoned mid-decode — the
//! consumer drops its stream handle, a client disconnects, a deadline
//! fires upstream. [`CancelToken`] is the one-bit signal that threads
//! through every layer that might be blocked on model work: the decode
//! loop checks it between tokens, the scheduler checks it before
//! dispatching a queued request and while a waiter sleeps on a
//! single-flight slot. Cancellation is *cooperative*: setting the token
//! never interrupts a running forward pass, it only stops new work from
//! starting and wakes waiters early.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable one-shot cancellation flag shared between the party that
/// cancels (a dropped stream handle, a disconnecting client) and the
/// parties that must notice (decode loops, scheduler waiters).
///
/// Cloning is cheap (one `Arc` bump) and all clones observe the same
/// flag. Once cancelled, a token stays cancelled.
///
/// # Example
///
/// ```
/// use lmql_lm::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the flag. Idempotent; all clones observe the change.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Err(LmError::Cancelled)` once cancelled, `Ok(())` before —
    /// convenient at the top of a work loop: `token.check()?;`.
    pub fn check(&self) -> crate::LmResult<()> {
        if self.is_cancelled() {
            Err(crate::LmError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.check().is_err());
    }

    #[test]
    fn check_passes_before_cancel() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
    }
}
