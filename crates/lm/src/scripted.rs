//! A task-scripted language model with controllable digressions.
//!
//! This is the reproduction's stand-in for the paper's evaluation models
//! (GPT-J-6B, OPT-30B, gpt2-xl). The paper's results do not depend on model
//! quality in the abstract — they depend on two concrete behaviours:
//!
//! 1. the model produces an *intended* multi-step completion for each task
//!    instance (the chain-of-thought, the ReAct action sequence, …), and
//! 2. it sometimes **digresses**: runs on past the desired stopping point or
//!    emits off-pattern text (the paper's Fig. 4b; §6.1 traces accuracy
//!    differences to exactly this).
//!
//! [`ScriptedLm`] reproduces both, deterministically. Each [`Episode`]
//! couples a *trigger* (the prompt suffix that starts generation) with a
//! *script* (the intended completion). [`Digression`]s mark points where the
//! unconstrained model prefers to wander off — optionally derailing the rest
//! of the script — while [`Branch`]es assign softer probability to
//! alternative continuations (used by `distribute` demos).
//!
//! Under unconstrained decoding the model takes every digression. Under
//! LMQL's token masking the digression tokens are masked out, so the model
//! stays on script — which is precisely the mechanism the paper describes.

use crate::{LanguageModel, Logits};
use lmql_tokenizer::{Bpe, TokenId, TokenTrie, Vocabulary};
use std::sync::Arc;

/// Logit for the first token of a digression at its insertion point.
pub const DIGRESSION_LOGIT: f64 = 14.0;
/// Logit for the next on-script token. [`Branch::weight`] values compare
/// against this level.
pub const SCRIPT_LOGIT: f64 = 12.0;
/// Logit for alternative (non-canonical) tokenisations of the target text.
pub const ALIGNED_LOGIT: f64 = 10.0;
/// Base logit for all other tokens.
const BASE_LOGIT: f64 = 0.0;
/// Logit for EOS when the script does not end here: above the base level
/// (a trained model prefers stopping over emitting arbitrary tokens when
/// its preferred continuation is masked away) but far below any scripted
/// continuation.
const EOS_FALLBACK_LOGIT: f64 = BASE_LOGIT + 2.0;
/// How many characters of the target continuation to consider when
/// collecting aligned prefix tokens.
const PREFIX_WINDOW: usize = 48;

/// A point where the unconstrained model wanders off-script.
#[derive(Debug, Clone)]
pub struct Digression {
    /// Character offset into the script at which the digression starts.
    pub at: usize,
    /// The off-script text the model prefers to emit at that point.
    pub text: String,
    /// If set, the digression derails the task: after `text`, the rest of
    /// the script is replaced by this alternative (e.g. reasoning that
    /// reaches a wrong answer). If `None`, the model returns to the script
    /// where it left off.
    pub replace_remainder: Option<String>,
}

/// An alternative continuation with its own logit level, used to shape the
/// probability a `distribute` clause measures over answer options.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Character offset into the script at which the branch departs.
    pub at: usize,
    /// The alternative continuation (replaces the script remainder).
    pub text: String,
    /// Logit assigned to tokens along the branch. Compare against the
    /// on-script logit of 12.0: a weight of 11.4 yields roughly a 65/35
    /// split against the script continuation.
    pub weight: f64,
}

/// One scripted generation region: what the model says after `trigger`.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Generation starts after the last occurrence of this string in the
    /// prompt.
    pub trigger: String,
    /// The intended completion (followed by EOS).
    pub script: String,
    /// Points where the unconstrained model digresses.
    pub digressions: Vec<Digression>,
    /// Softer alternative continuations.
    pub branches: Vec<Branch>,
}

impl Episode {
    /// An episode with no digressions or branches.
    pub fn plain(trigger: impl Into<String>, script: impl Into<String>) -> Self {
        Episode {
            trigger: trigger.into(),
            script: script.into(),
            digressions: Vec::new(),
            branches: Vec::new(),
        }
    }
}

/// One concrete expansion of an episode's script: digressions taken or not,
/// or a branch taken.
#[derive(Debug, Clone)]
struct Variant {
    /// Full expansion text (what the model would emit before EOS).
    text: String,
    /// `(start, logit)` regions: from char `start` on, new tokens get this
    /// logit until the next region starts.
    regions: Vec<(usize, f64)>,
}

impl Variant {
    fn logit_at(&self, offset: usize) -> f64 {
        let mut logit = SCRIPT_LOGIT;
        for &(start, l) in &self.regions {
            if offset >= start {
                logit = l;
            } else {
                break;
            }
        }
        logit
    }
}

/// Builder for [`ScriptedLm`].
#[derive(Debug)]
pub struct ScriptedLmBuilder {
    bpe: Arc<Bpe>,
    episodes: Vec<Episode>,
    ramble: String,
}

impl ScriptedLmBuilder {
    /// Starts a builder over the given tokenizer.
    pub fn new(bpe: Arc<Bpe>) -> Self {
        ScriptedLmBuilder {
            bpe,
            episodes: Vec::new(),
            ramble: " and so on".to_owned(),
        }
    }

    /// Adds an episode.
    pub fn episode(mut self, e: Episode) -> Self {
        self.episodes.push(e);
        self
    }

    /// Adds several episodes.
    pub fn episodes<I: IntoIterator<Item = Episode>>(mut self, es: I) -> Self {
        self.episodes.extend(es);
        self
    }

    /// Sets the filler phrase emitted when generation deviates from every
    /// known script (the model "rambles"; it never emits EOS in this mode).
    pub fn ramble(mut self, phrase: impl Into<String>) -> Self {
        self.ramble = phrase.into();
        self
    }

    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if an episode has an empty trigger, a digression/branch
    /// offset beyond its script length, or the ramble phrase is empty.
    pub fn build(self) -> ScriptedLm {
        assert!(!self.ramble.is_empty(), "ramble phrase must be non-empty");
        for e in &self.episodes {
            assert!(!e.trigger.is_empty(), "episode trigger must be non-empty");
            for d in &e.digressions {
                assert!(
                    d.at <= e.script.len(),
                    "digression offset {} beyond script length {}",
                    d.at,
                    e.script.len()
                );
                assert!(
                    e.script.is_char_boundary(d.at),
                    "digression offset {} not on a char boundary",
                    d.at
                );
            }
            for b in &e.branches {
                assert!(
                    b.at <= e.script.len() && e.script.is_char_boundary(b.at),
                    "branch offset {} invalid for script",
                    b.at
                );
            }
        }
        let trie = TokenTrie::new(self.bpe.vocab());
        let compiled = self
            .episodes
            .iter()
            .map(|e| CompiledEpisode {
                trigger: e.trigger.clone(),
                variants: expand_variants(e),
            })
            .collect();
        ScriptedLm {
            bpe: self.bpe,
            trie,
            episodes: compiled,
            ramble: self.ramble,
        }
    }
}

#[derive(Debug)]
struct CompiledEpisode {
    trigger: String,
    variants: Vec<Variant>,
}

/// Enumerates the expansions of an episode: every subset of digressions
/// (taken in script order; a remainder-replacing digression truncates the
/// rest), plus one variant per branch.
fn expand_variants(e: &Episode) -> Vec<Variant> {
    let mut digs = e.digressions.clone();
    digs.sort_by_key(|d| d.at);
    let n = digs.len();
    let mut variants = Vec::new();

    for takes in 0..(1u32 << n) {
        let mut text = String::new();
        let mut regions: Vec<(usize, f64)> = Vec::new();
        let mut script_pos = 0usize;
        let mut derailed = false;
        for (i, d) in digs.iter().enumerate() {
            if takes & (1 << i) == 0 {
                continue;
            }
            if derailed {
                // A remainder-replacing digression already consumed the
                // script; later digressions can't fire. Skip this subset —
                // an equivalent one without the dead digressions exists.
                text.clear();
                break;
            }
            text.push_str(&e.script[script_pos..d.at]);
            regions.push((text.len(), DIGRESSION_LOGIT));
            text.push_str(&d.text);
            regions.push((text.len(), SCRIPT_LOGIT));
            script_pos = d.at;
            if let Some(repl) = &d.replace_remainder {
                text.push_str(repl);
                derailed = true;
            }
        }
        if takes != 0 && text.is_empty() {
            continue; // skipped dead subset
        }
        if !derailed {
            text.push_str(&e.script[script_pos..]);
        }
        variants.push(Variant { text, regions });
    }

    for b in &e.branches {
        let mut text = e.script[..b.at].to_owned();
        let regions = vec![(text.len(), b.weight)];
        text.push_str(&b.text);
        variants.push(Variant { text, regions });
    }

    variants
}

/// The scripted model. See the module docs for the behavioural contract.
///
/// # Example
///
/// ```
/// use lmql_lm::{Episode, LanguageModel, ScriptedLmBuilder};
/// use lmql_tokenizer::Bpe;
/// use std::sync::Arc;
///
/// let bpe = Arc::new(Bpe::char_level(""));
/// let lm = ScriptedLmBuilder::new(Arc::clone(&bpe))
///     .episode(Episode::plain("Q: 1+1=", "2"))
///     .build();
/// let ctx = bpe.encode("Q: 1+1=");
/// let next = lm.score(&ctx).softmax(1.0).argmax();
/// assert_eq!(bpe.vocab().token_str(next), "2");
/// ```
#[derive(Debug)]
pub struct ScriptedLm {
    bpe: Arc<Bpe>,
    trie: TokenTrie,
    episodes: Vec<CompiledEpisode>,
    ramble: String,
}

impl ScriptedLm {
    /// Convenience constructor: a model with the given episodes and default
    /// settings.
    pub fn new<I: IntoIterator<Item = Episode>>(bpe: Arc<Bpe>, episodes: I) -> Self {
        ScriptedLmBuilder::new(bpe).episodes(episodes).build()
    }

    /// The `(remaining_target, logit)` continuations for the current
    /// context text, or an empty list when nothing matches (ramble mode).
    fn targets(&self, text: &str) -> Vec<(String, f64)> {
        // Find the episode whose trigger occurs last in the text.
        let mut best: Option<(usize, &CompiledEpisode)> = None;
        for e in &self.episodes {
            if let Some(pos) = text.rfind(&e.trigger) {
                let end = pos + e.trigger.len();
                if best.is_none_or(|(b, _)| end > b) {
                    best = Some((end, e));
                }
            }
        }
        let Some((gen_start, episode)) = best else {
            return Vec::new();
        };
        let gen = &text[gen_start..];

        let mut targets = Vec::new();
        for v in &episode.variants {
            if let Some(remaining) = v.text.strip_prefix(gen) {
                let logit = v.logit_at(gen.len());
                targets.push((remaining.to_owned(), logit));
            }
        }
        targets
    }

    /// The deterministic filler continuation for off-script contexts.
    fn ramble_target(&self, text: &str) -> String {
        // Longest proper prefix of the ramble phrase that is a suffix of
        // the current text, so mid-phrase contexts continue the phrase.
        let phrase = &self.ramble;
        for k in (1..phrase.len()).rev() {
            if !phrase.is_char_boundary(k) {
                continue;
            }
            if text.ends_with(&phrase[..k]) {
                return phrase[k..].to_owned();
            }
        }
        phrase.clone()
    }

    /// Raises logits for the target continuation `r` at level `logit`:
    /// the canonical first token gets `logit`, alternative aligned prefix
    /// tokens get [`ALIGNED_LOGIT`] (capped below `logit`).
    fn raise_for_target(&self, logits: &mut Logits, r: &str, logit: f64) {
        if r.is_empty() {
            logits.raise(self.bpe.vocab().eos(), logit);
            return;
        }
        let window_end = r
            .char_indices()
            .take(PREFIX_WINDOW)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(r.len());
        for t in self.trie.prefixes_of(&r[..window_end]) {
            logits.raise(t, ALIGNED_LOGIT.min(logit - 1.0));
        }
        // The canonical first token only depends on the first
        // pretokenisation chunk (merges never cross chunk boundaries), so
        // encoding the whole remaining script would be wasted work.
        if let Some(first_chunk) = lmql_tokenizer::pretokenize(r).first() {
            if let Some(&first) = self.bpe.encode(first_chunk).first() {
                logits.raise(first, logit);
            }
        }
    }
}

impl LanguageModel for ScriptedLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        let text = self.bpe.decode(context);
        let mut logits = Logits::constant(self.bpe.vocab().len(), BASE_LOGIT);
        logits.set(self.bpe.vocab().eos(), EOS_FALLBACK_LOGIT);

        let targets = self.targets(&text);
        if targets.is_empty() {
            let r = self.ramble_target(&text);
            self.raise_for_target(&mut logits, &r, SCRIPT_LOGIT);
            return logits;
        }
        for (r, logit) in &targets {
            self.raise_for_target(&mut logits, r, *logit);
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpe() -> Arc<Bpe> {
        Arc::new(Bpe::char_level(""))
    }

    fn greedy_complete(lm: &ScriptedLm, prompt: &str, max_tokens: usize) -> String {
        let mut ctx = lm_encode(lm, prompt);
        let mut out = String::new();
        for _ in 0..max_tokens {
            let next = lm.score(&ctx).softmax(1.0).argmax();
            if next == lm.vocab().eos() {
                break;
            }
            out.push_str(lm.vocab().token_str(next));
            ctx.push(next);
        }
        out
    }

    fn lm_encode(lm: &ScriptedLm, text: &str) -> Vec<TokenId> {
        lm.bpe.encode(text)
    }

    #[test]
    fn plain_episode_followed_exactly() {
        let lm = ScriptedLm::new(bpe(), [Episode::plain("Q: hi\nA:", " hello there")]);
        assert_eq!(greedy_complete(&lm, "Q: hi\nA:", 50), " hello there");
    }

    #[test]
    fn digression_taken_when_unconstrained() {
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "A:".to_owned(),
                script: " yes. done".to_owned(),
                digressions: vec![Digression {
                    at: 5,
                    text: " well, maybe, who knows,".to_owned(),
                    replace_remainder: None,
                }],
                branches: vec![],
            }],
        );
        let out = greedy_complete(&lm, "A:", 80);
        assert_eq!(out, " yes. well, maybe, who knows, done");
    }

    #[test]
    fn digression_with_derail_replaces_remainder() {
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "A:".to_owned(),
                script: " good answer".to_owned(),
                digressions: vec![Digression {
                    at: 5,
                    text: " hmm".to_owned(),
                    replace_remainder: Some(" bad answer".to_owned()),
                }],
                branches: vec![],
            }],
        );
        let out = greedy_complete(&lm, "A:", 80);
        assert_eq!(out, " good hmm bad answer");
    }

    #[test]
    fn constrained_context_stays_on_script() {
        // Simulate masking by feeding the on-script continuation as context:
        // the model must keep following the script even though its greedy
        // preference at offset 5 was the digression.
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "A:".to_owned(),
                script: " yes. done".to_owned(),
                digressions: vec![Digression {
                    at: 5,
                    text: "\nblah".to_owned(),
                    replace_remainder: None,
                }],
                branches: vec![],
            }],
        );
        // Context already past the digression point, on script.
        let ctx = lm_encode(&lm, "A: yes. d");
        let next = lm.score(&ctx).softmax(1.0).argmax();
        assert_eq!(lm.vocab().token_str(next), "o");
    }

    #[test]
    fn branch_probability_is_soft() {
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "pick:".to_owned(),
                script: " alpha".to_owned(),
                digressions: vec![],
                branches: vec![Branch {
                    at: 0,
                    text: " beta".to_owned(),
                    weight: SCRIPT_LOGIT - 0.6,
                }],
            }],
        );
        let ctx = lm_encode(&lm, "pick:");
        let dist = lm.score(&ctx).softmax(1.0);
        // Both continuations start with " "; after it, "a" vs "b".
        let ctx2 = lm_encode(&lm, "pick: ");
        let dist2 = lm.score(&ctx2).softmax(1.0);
        let a = lm.vocab().id_of("a").unwrap();
        let b = lm.vocab().id_of("b").unwrap();
        assert!(dist2.prob(a) > dist2.prob(b));
        assert!(dist2.prob(b) > 0.1, "branch must keep real mass");
        drop(dist);
    }

    #[test]
    fn off_script_rambles_without_eos() {
        let lm = ScriptedLm::new(bpe(), [Episode::plain("XYZ:", " s")]);
        let out = greedy_complete(&lm, "totally unrelated", 30);
        assert!(out.starts_with(" and so on and so on"));
    }

    #[test]
    fn latest_trigger_wins() {
        let lm = ScriptedLm::new(
            bpe(),
            [
                Episode::plain("Q:", " first"),
                Episode::plain("R:", " second"),
            ],
        );
        assert_eq!(greedy_complete(&lm, "Q: something R:", 30), " second");
    }

    #[test]
    fn eos_only_at_script_end() {
        let lm = ScriptedLm::new(bpe(), [Episode::plain("go:", " ab")]);
        let ctx = lm_encode(&lm, "go: ab");
        let next = lm.score(&ctx).softmax(1.0).argmax();
        assert_eq!(next, lm.vocab().eos());
    }

    #[test]
    #[should_panic(expected = "digression offset")]
    fn bad_digression_offset_panics() {
        let _ = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "t".to_owned(),
                script: "ab".to_owned(),
                digressions: vec![Digression {
                    at: 99,
                    text: "x".to_owned(),
                    replace_remainder: None,
                }],
                branches: vec![],
            }],
        );
    }
}

#[cfg(test)]
mod variant_tests {
    use super::*;

    fn bpe() -> Arc<Bpe> {
        Arc::new(Bpe::char_level(""))
    }

    #[test]
    fn two_digressions_expand_all_subsets() {
        // Two non-derailing digressions → 4 variants (take neither, either,
        // or both), and greedy decoding takes both.
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "T:".to_owned(),
                script: "abcd".to_owned(),
                digressions: vec![
                    Digression {
                        at: 1,
                        text: "X".to_owned(),
                        replace_remainder: None,
                    },
                    Digression {
                        at: 3,
                        text: "Y".to_owned(),
                        replace_remainder: None,
                    },
                ],
                branches: vec![],
            }],
        );
        let mut ctx = lm.bpe.encode("T:");
        let mut out = String::new();
        for _ in 0..10 {
            let t = lm.score(&ctx).softmax(1.0).argmax();
            if t == lm.vocab().eos() {
                break;
            }
            out.push_str(lm.vocab().token_str(t));
            ctx.push(t);
        }
        assert_eq!(out, "aXbcYd");

        // Contexts that skipped either digression still align.
        for (prefix, next) in [
            ("T:ab", "c"),
            ("T:aXbc", "Y"),
            ("T:abcY", "d"),
            ("T:abcd", ""),
        ] {
            let ctx = lm.bpe.encode(prefix);
            let t = lm.score(&ctx).softmax(1.0).argmax();
            let got = if t == lm.vocab().eos() {
                ""
            } else {
                lm.vocab().token_str(t)
            };
            assert_eq!(got, next, "after {prefix:?}");
        }
    }

    #[test]
    fn derailing_digression_truncates_later_ones() {
        let lm = ScriptedLm::new(
            bpe(),
            [Episode {
                trigger: "T:".to_owned(),
                script: "abcd".to_owned(),
                digressions: vec![
                    Digression {
                        at: 1,
                        text: "X".to_owned(),
                        replace_remainder: Some("Z".to_owned()),
                    },
                    Digression {
                        at: 3,
                        text: "Y".to_owned(),
                        replace_remainder: None,
                    },
                ],
                branches: vec![],
            }],
        );
        let mut ctx = lm.bpe.encode("T:");
        let mut out = String::new();
        for _ in 0..10 {
            let t = lm.score(&ctx).softmax(1.0).argmax();
            if t == lm.vocab().eos() {
                break;
            }
            out.push_str(lm.vocab().token_str(t));
            ctx.push(t);
        }
        assert_eq!(out, "aXZ", "derailment replaces the remainder");
    }
}
