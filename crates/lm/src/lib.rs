//! Language-model substrate for the LMQL reproduction.
//!
//! The paper's runtime "does not impose any restrictions on language model
//! `f`, apart from being able to access the resulting distribution over
//! vocabulary tokens" (§4). This crate provides that interface
//! ([`LanguageModel`]) together with:
//!
//! - [`Logits`] / [`Distribution`] — next-token score vectors, softmax with
//!   temperature, masked renormalisation (§2.1 "Masked Decoding"),
//! - [`NGramLm`] — an interpolated n-gram model trained on a corpus; the
//!   stand-in for free-running generative models,
//! - [`ScriptedLm`] — a task-scripted model that follows an intended
//!   completion but *digresses* at chosen points; the stand-in for the
//!   paper's GPT-J/OPT evaluation models (see DESIGN.md §2 for why this
//!   substitution preserves the evaluation's shape),
//! - [`MockLm`] and [`UniformLm`] — deterministic models for unit tests,
//! - [`UsageMeter`] / [`MeteredLm`] — the paper's §6 cost metrics (model
//!   queries, decoder calls, billable tokens),
//! - [`CachedLm`] — prefix-keyed score caching,
//! - [`LmError`] / [`RetryLm`] / [`ChaosLm`] — the fault-tolerant serving
//!   layer: transient-vs-fatal error taxonomy, retry with exponential
//!   backoff and deterministic jitter, circuit breaking, and seeded
//!   fault injection for reproducible chaos tests,
//! - [`corpus`] — the built-in synthetic training corpus and shared
//!   tokenizer/model constructors used by examples and benchmarks.

pub mod corpus;

mod cache;
mod cancel;
mod chaos;
mod error;
mod logits;
mod meter;
mod mock;
mod model;
mod ngram;
mod retry;
mod scripted;

pub use cache::CachedLm;
pub use cancel::CancelToken;
pub use chaos::{ChaosLm, ChaosStats, FaultPlan};
pub use error::{FaultKind, LmError, LmResult};
pub use logits::{Distribution, Logits};
pub use meter::{MeteredLm, Usage, UsageMeter};
pub use mock::{MockLm, UniformLm};
pub use model::LanguageModel;
pub use ngram::NGramLm;
pub use retry::{
    call_with_retry, context_token, BreakerConfig, BreakerState, CircuitBreaker, RetryLm,
    RetryMetrics, RetryPolicy,
};
pub use scripted::{
    Branch, Digression, Episode, ScriptedLm, ScriptedLmBuilder, ALIGNED_LOGIT, DIGRESSION_LOGIT,
    SCRIPT_LOGIT,
};
