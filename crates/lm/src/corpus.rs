//! The built-in synthetic training corpus and shared model constructors.
//!
//! Everything here is deterministic: the corpus is generated from fixed
//! word lists, so tokenizer training and n-gram statistics are identical
//! across runs and machines. The corpus covers the text domains the
//! examples and benchmarks prompt about (travel packing lists, dad jokes,
//! encyclopedic sentences, dates, arithmetic word problems).

use crate::NGramLm;
use lmql_tokenizer::{Bpe, BpeTrainer};
use std::sync::{Arc, OnceLock};

/// Things that appear on the packing-list examples (Fig. 1b).
pub const TRAVEL_THINGS: &[&str] = &[
    "passport",
    "phone",
    "keys",
    "sun screen",
    "beach towel",
    "charger",
    "camera",
    "wallet",
    "toothbrush",
    "hat",
    "watch",
    "tickets",
];

/// Joke setup/punchline pairs used to give the n-gram model Fig. 1a flavour.
const JOKES: &[(&str, &str)] = &[
    (
        "How does a penguin build its house?",
        "Igloos it together. END",
    ),
    (
        "Which knight invented King Arthur's Round Table?",
        "Sir Cumference. END",
    ),
    (
        "Why did the scarecrow win an award?",
        "He was outstanding in his field. END",
    ),
    ("What do you call a fake noodle?", "An impasta. END"),
    ("Why don't eggs tell jokes?", "They would crack up. END"),
    (
        "What do you call cheese that is not yours?",
        "Nacho cheese. END",
    ),
];

/// Encyclopedic filler sentences (mini-wiki flavour).
const FACTS: &[&str] = &[
    "The Colorado orogeny was an episode of mountain building in Colorado and surrounding areas.",
    "The High Plains rise in elevation from around 1,800 to 7,000 ft.",
    "Apple Computers is headquartered in Cupertino, California.",
    "The circumference of the earth is about 40,075 kilometers.",
    "A physicist studies matter, energy, and the interactions between them.",
    "The capital of France is Paris, a city on the Seine.",
    "Mount Everest is the highest mountain above sea level.",
    "The Nile is often regarded as the longest river in the world.",
];

/// Returns the deterministic built-in corpus.
///
/// Roughly 40 KiB of text assembled from the fixed phrase lists above,
/// with paragraph breaks (`\n\n`) separating documents so
/// [`NGramLm::train`] learns document boundaries.
pub fn builtin_corpus() -> String {
    let mut out = String::new();

    // Packing-list documents.
    for start in 0..TRAVEL_THINGS.len() {
        out.push_str("A list of things not to forget when travelling:\n");
        for k in 0..4 {
            let thing = TRAVEL_THINGS[(start + k * 3) % TRAVEL_THINGS.len()];
            out.push_str("- ");
            out.push_str(thing);
            out.push('\n');
        }
        let top = TRAVEL_THINGS[start % TRAVEL_THINGS.len()];
        out.push_str("The most important of these is ");
        out.push_str(top);
        out.push_str(".\n\n");
    }

    // Joke documents.
    for round in 0..3 {
        out.push_str("A list of good dad jokes. A indicates the punchline\n");
        for (i, (q, a)) in JOKES.iter().enumerate() {
            if (i + round) % 2 == 0 {
                out.push_str("Q: ");
                out.push_str(q);
                out.push_str("\nA: ");
                out.push_str(a);
                out.push('\n');
            }
        }
        out.push('\n');
    }

    // Encyclopedic documents, repeated in rotated order for n-gram mass.
    for start in 0..FACTS.len() {
        for k in 0..3 {
            out.push_str(FACTS[(start + k) % FACTS.len()]);
            out.push(' ');
        }
        out.push_str("\n\n");
    }

    // Date-understanding flavoured sentences.
    let months = [
        "January",
        "February",
        "March",
        "April",
        "May",
        "June",
        "July",
        "August",
        "September",
        "October",
        "November",
        "December",
    ];
    for (i, m) in months.iter().enumerate() {
        out.push_str(&format!(
            "Today is {m} {}, 2022. One day before today is {m} {}, 2022. \
             The date tomorrow is {m} {}, 2022.\n\n",
            i + 10,
            i + 9,
            i + 11,
        ));
    }

    // Arithmetic reasoning flavoured sentences.
    for a in 2..10 {
        for b in [3, 5, 10, 12] {
            out.push_str(&format!(
                "He sold {a} large paintings and {b} small paintings. \
                 {a} large paintings x ${b}0 = << {a}*{b}0= {} >> {}. \
                 So the answer is {}.\n\n",
                a * b * 10,
                a * b * 10,
                a * b * 10,
            ));
        }
    }

    // Classification-task vocabulary (Odd One Out flavour): real subword
    // tokenizers are trained on broad text and know these common words.
    let classify_words: &[(&str, &str)] = &[
        ("skirt", "clothing"),
        ("dress", "clothing"),
        ("jacket", "clothing"),
        ("shirt", "clothing"),
        ("trousers", "clothing"),
        ("coat", "clothing"),
        ("sweater", "clothing"),
        ("Spain", "a country"),
        ("France", "a country"),
        ("England", "a country"),
        ("Singapore", "a country"),
        ("Brazil", "a country"),
        ("Japan", "a country"),
        ("Kenya", "a country"),
        ("German", "a language"),
        ("Mandarin", "a language"),
        ("Swahili", "a language"),
        ("Spanish", "a language"),
        ("Finnish", "a language"),
        ("penguin", "an animal"),
        ("giraffe", "an animal"),
        ("otter", "an animal"),
        ("badger", "an animal"),
        ("lynx", "an animal"),
        ("heron", "an animal"),
        ("apple", "a fruit"),
        ("mango", "a fruit"),
        ("papaya", "a fruit"),
        ("cherry", "a fruit"),
        ("quince", "a fruit"),
        ("plum", "a fruit"),
        ("crimson", "a color"),
        ("teal", "a color"),
        ("ochre", "a color"),
        ("violet", "a color"),
        ("indigo", "a color"),
        ("violin", "an instrument"),
        ("oboe", "an instrument"),
        ("trumpet", "an instrument"),
        ("cello", "an instrument"),
        ("bassoon", "an instrument"),
        ("plumber", "a profession"),
        ("teacher", "a profession"),
        ("surgeon", "a profession"),
        ("carpenter", "a profession"),
        ("pilot", "a profession"),
        ("tram", "a vehicle"),
        ("bicycle", "a vehicle"),
        ("truck", "a vehicle"),
        ("scooter", "a vehicle"),
        ("ferry", "a vehicle"),
        ("pen", "an object"),
        ("bucket", "an object"),
        ("ladder", "an object"),
        ("kettle", "an object"),
        ("hammer", "an object"),
        ("stapler", "an object"),
    ];
    for round in 0..3 {
        out.push_str("Pick the odd word out: ");
        for (i, (w, _)) in classify_words.iter().enumerate() {
            if (i + round) % 3 == 0 {
                out.push_str(w);
                out.push_str(", ");
            }
        }
        out.push('\n');
        for (i, (w, c)) in classify_words.iter().enumerate() {
            if (i + round) % 2 == 0 {
                out.push_str(&format!("{w} is {c}, "));
            }
        }
        out.push_str("\nSo the odd one is pen.\n\n");
    }

    // ReAct-flavoured transcripts so Tho/Act/Obs lines tokenize well.
    for (name, job, thing) in [
        ("Alice Moreau", "physicist", "Helios Dynamics"),
        ("Jordan Lee", "biologist", "Coral Systems"),
        ("Felix Braun", "cartographer", "Terra Survey"),
        ("Grace Lindqvist", "roboticist", "Quantum Forge"),
    ] {
        out.push_str(&format!(
            "Q: Where is the company that {name} works at headquartered?\n\
             Tho: I need to search {name} and find the company they work at.\n\
             Act: Search '{name}'\n\
             Obs: {name} is a {job} who works at {thing}.\n\
             Tho: {name} works at {thing}. I need to search {thing}.\n\
             Act: Search '{thing}'\n\
             Obs: {thing} is a company that makes things. \
             {thing} is headquartered in a city.\n\
             Act: Finish 'a city'\n\n"
        ));
    }

    // Date-understanding question/answer flavour.
    out.push_str(
        "Q: Today is March 10, 2022. What is the date tomorrow? \
         Options: March 11, 2022, March 9, 2022.\n\
         Today is March 10, 2022, so tomorrow is one day later, which is March 11, 2022.\n\
         So the answer is March 11, 2022.\n\n\
         Q: What is the date one week from today? What is the date 10 days ago? \
         What is the date one month from today? What is the date yesterday?\n\
         so one week from today is 7 days later, so 10 days ago was 10 days earlier, \
         so one month from today is about 30 days later, so yesterday was one day earlier.\n\n\
         A bakery bakes trays of rolls every day. How many rolls does it bake in days? \
         Each day the bakery bakes trays of rolls. Over days = \
         A bus starts with passengers. At the first stop get off and get on. \
         How many passengers are on the bus now? The bus starts with passengers. \
         After get off = After get on = So the answer is 36\n\n\
         Noah is a painter. He charges for a large painting and for a small painting. \
         Last month he sold large paintings and small paintings. \
         If he sold twice as much this month, how much is his sales for this month? \
         Total last month = Twice as much this month = Let's think step by step.\n\n",
    );

    out
}

/// The shared tokenizer: BPE trained on [`builtin_corpus`] with 600 merges.
///
/// Built lazily once per process; roughly a 700-token vocabulary.
pub fn standard_bpe() -> Arc<Bpe> {
    static BPE: OnceLock<Arc<Bpe>> = OnceLock::new();
    Arc::clone(BPE.get_or_init(|| {
        Arc::new(
            BpeTrainer::new()
                .merges(1200)
                .min_pair_count(3)
                .train(&builtin_corpus()),
        )
    }))
}

/// The shared free-running model: an order-4 [`NGramLm`] over
/// [`builtin_corpus`] using [`standard_bpe`].
pub fn standard_ngram() -> Arc<NGramLm> {
    static LM: OnceLock<Arc<NGramLm>> = OnceLock::new();
    Arc::clone(LM.get_or_init(|| Arc::new(NGramLm::train(standard_bpe(), &builtin_corpus(), 4))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LanguageModel;

    #[test]
    fn corpus_is_deterministic_and_nonempty() {
        let a = builtin_corpus();
        let b = builtin_corpus();
        assert_eq!(a, b);
        assert!(a.len() > 4_000, "corpus unexpectedly small: {}", a.len());
    }

    #[test]
    fn standard_bpe_roundtrips_corpus() {
        let bpe = standard_bpe();
        let text = "A list of things not to forget when travelling:\n- keys\n";
        assert_eq!(bpe.decode(&bpe.encode(text)), text);
    }

    #[test]
    fn standard_bpe_compresses() {
        let bpe = standard_bpe();
        let text = "The most important of these is passport.";
        assert!(bpe.encode(text).len() * 2 < text.chars().count());
    }

    #[test]
    fn standard_ngram_continues_lists() {
        let lm = standard_ngram();
        let bpe = standard_bpe();
        let ctx = bpe.encode("A list of things not to forget when");
        let next = lm.score(&ctx).softmax(1.0).argmax();
        assert_eq!(bpe.vocab().token_str(next), " travelling");
    }
}
