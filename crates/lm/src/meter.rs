//! Cost accounting: the paper's §6 performance metrics.
//!
//! - **Model queries** — number of next-token prediction calls (`f`),
//! - **Decoder calls** — number of decoding loops started (one per
//!   `generate()` call or per LMQL hole-decoding run, plus one per scored
//!   distribution value),
//! - **Billable tokens** — per decoder call, prompt tokens processed plus
//!   tokens generated (the billing model of API-gated LMs like GPT-3).

use crate::{LanguageModel, LmResult, Logits};
use lmql_obs::{Counter, Registry};
use lmql_tokenizer::{TokenId, Vocabulary};

/// A snapshot of the §6 counters, plus the batching and prefix-cache
/// statistics added by the concurrent inference engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Calls to the underlying model `f` for next-token prediction
    /// (contexts scored; a batched dispatch of `k` contexts counts `k`).
    pub model_queries: u64,
    /// Decoding loops started (plus one per scored distribution value).
    pub decoder_calls: u64,
    /// Σ over decoder calls of (prompt tokens + generated tokens).
    pub billable_tokens: u64,
    /// Batched dispatches (`score_batch` calls) to the model.
    pub batch_dispatches: u64,
    /// Contexts scored through batched dispatches (⊆ `model_queries`).
    pub batched_queries: u64,
    /// Scheduler prefix-cache hits (contexts answered without the model).
    pub cache_hits: u64,
    /// Scheduler prefix-cache misses.
    pub cache_misses: u64,
}

impl Usage {
    /// Estimated cost in US cents at a given price per 1000 billable
    /// tokens. The paper uses GPT-3 davinci pricing, $0.02/1k tokens
    /// (= 2¢/1k).
    pub fn cost_cents(&self, cents_per_1k_tokens: f64) -> f64 {
        self.billable_tokens as f64 / 1000.0 * cents_per_1k_tokens
    }

    /// Round trips to the model: each unbatched `score` plus each
    /// `score_batch` counts once, however many contexts it carried. This
    /// is the latency-side metric microbatching improves.
    pub fn dispatches(&self) -> u64 {
        self.batch_dispatches + (self.model_queries - self.batched_queries)
    }

    /// Mean contexts per batched dispatch (0 when none happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batch_dispatches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batch_dispatches as f64
        }
    }

    /// Fraction of scheduler lookups served by the prefix cache
    /// (0 when no lookups were recorded).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::ops::Sub for Usage {
    type Output = Usage;
    fn sub(self, rhs: Usage) -> Usage {
        Usage {
            model_queries: self.model_queries - rhs.model_queries,
            decoder_calls: self.decoder_calls - rhs.decoder_calls,
            billable_tokens: self.billable_tokens - rhs.billable_tokens,
            batch_dispatches: self.batch_dispatches - rhs.batch_dispatches,
            batched_queries: self.batched_queries - rhs.batched_queries,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
        }
    }
}

/// A shared, thread-safe handle to the usage counters.
///
/// Clones share the same counters, so a meter can be handed to both a
/// [`MeteredLm`] wrapper and a decoder.
///
/// # Example
///
/// ```
/// use lmql_lm::UsageMeter;
///
/// let meter = UsageMeter::new();
/// meter.record_decoder_call(120);
/// meter.record_model_query();
/// let u = meter.snapshot();
/// assert_eq!(u.decoder_calls, 1);
/// assert_eq!(u.billable_tokens, 120);
/// assert_eq!(u.model_queries, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UsageMeter {
    model_queries: Counter,
    decoder_calls: Counter,
    billable_tokens: Counter,
    batch_dispatches: Counter,
    batched_queries: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    /// Subtracted from the live counters by `snapshot`, so `reset` works
    /// on monotonic cells without touching other clones' history.
    floor: ResetFloor,
}

/// The reset floor: the counter values at the last `reset()`. Kept behind
/// a mutex because it is only touched on `reset`/`snapshot`, never on the
/// recording hot path.
type ResetFloor = std::sync::Arc<std::sync::Mutex<Usage>>;

impl UsageMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers this meter's counters into `registry` under
    /// `<prefix>.<counter>` names (e.g. `lm.model_queries`), so they
    /// appear in the registry's text exposition alongside engine and
    /// server metrics. Recording stays lock-free; the registry only reads
    /// the shared cells at snapshot time.
    ///
    /// # Panics
    ///
    /// Panics if any of the names is already registered.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        let pairs: [(&str, &Counter); 7] = [
            ("model_queries", &self.model_queries),
            ("decoder_calls", &self.decoder_calls),
            ("billable_tokens", &self.billable_tokens),
            ("batch_dispatches", &self.batch_dispatches),
            ("batched_queries", &self.batched_queries),
            ("cache_hits", &self.cache_hits),
            ("cache_misses", &self.cache_misses),
        ];
        for (name, counter) in pairs {
            registry.register_counter(&format!("{prefix}.{name}"), counter.clone());
        }
    }

    /// Counts one call to the model `f`.
    pub fn record_model_query(&self) {
        self.model_queries.inc();
    }

    /// Counts one batched dispatch scoring `contexts` contexts: the
    /// contexts are model queries, the dispatch is one round trip.
    pub fn record_batch(&self, contexts: u64) {
        self.model_queries.add(contexts);
        self.batched_queries.add(contexts);
        self.batch_dispatches.inc();
    }

    /// Counts one scheduler prefix-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Counts one scheduler prefix-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Counts one decoder call with its billable token total
    /// (prompt tokens + generated tokens).
    pub fn record_decoder_call(&self, billable_tokens: u64) {
        self.decoder_calls.inc();
        self.billable_tokens.add(billable_tokens);
    }

    /// Adds billable tokens to the current decoder call (used when the
    /// generated length is only known incrementally).
    pub fn record_billable_tokens(&self, tokens: u64) {
        self.billable_tokens.add(tokens);
    }

    fn raw(&self) -> Usage {
        Usage {
            model_queries: self.model_queries.get(),
            decoder_calls: self.decoder_calls.get(),
            billable_tokens: self.billable_tokens.get(),
            batch_dispatches: self.batch_dispatches.get(),
            batched_queries: self.batched_queries.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> Usage {
        // Hold the floor lock across the raw read: a concurrent `reset`
        // could otherwise move the floor past values we already read and
        // underflow the subtraction.
        let floor = self.floor.lock().expect("meter poisoned");
        self.raw() - *floor
    }

    /// Resets all counters to zero (for this meter and its clones; the
    /// underlying cells are monotonic, so registry expositions keep the
    /// lifetime totals).
    pub fn reset(&self) {
        let mut floor = self.floor.lock().expect("meter poisoned");
        *floor = self.raw();
    }
}

/// Wraps a model so every [`LanguageModel::score`] call is counted as a
/// model query on the given meter.
#[derive(Debug, Clone)]
pub struct MeteredLm<L> {
    inner: L,
    meter: UsageMeter,
}

impl<L: LanguageModel> MeteredLm<L> {
    /// Wraps `inner`, recording on `meter`.
    pub fn new(inner: L, meter: UsageMeter) -> Self {
        MeteredLm { inner, meter }
    }

    /// The meter this wrapper records on.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// Consumes the wrapper, returning the inner model.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: LanguageModel> LanguageModel for MeteredLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        self.meter.record_model_query();
        self.inner.score(context)
    }

    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.meter.record_batch(contexts.len() as u64);
        self.inner.score_batch(contexts)
    }

    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        self.meter.record_model_query();
        self.inner.try_score(context)
    }

    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        self.meter.record_batch(contexts.len() as u64);
        self.inner.try_score_batch(contexts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformLm;
    use lmql_tokenizer::Bpe;
    use std::sync::Arc;

    #[test]
    fn metered_lm_counts_queries() {
        let bpe = Arc::new(Bpe::char_level(""));
        let meter = UsageMeter::new();
        let lm = MeteredLm::new(UniformLm::new(bpe), meter.clone());
        let _ = lm.score(&[]);
        let _ = lm.score(&[TokenId(0)]);
        assert_eq!(meter.snapshot().model_queries, 2);
    }

    #[test]
    fn clones_share_counters() {
        let a = UsageMeter::new();
        let b = a.clone();
        a.record_decoder_call(10);
        b.record_decoder_call(5);
        assert_eq!(a.snapshot().decoder_calls, 2);
        assert_eq!(a.snapshot().billable_tokens, 15);
    }

    #[test]
    fn reset_zeroes() {
        let m = UsageMeter::new();
        m.record_model_query();
        m.reset();
        assert_eq!(m.snapshot(), Usage::default());
    }

    #[test]
    fn cost_estimate() {
        let u = Usage {
            billable_tokens: 3000,
            ..Usage::default()
        };
        assert!((u.cost_cents(2.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn usage_sub() {
        let a = Usage {
            model_queries: 5,
            decoder_calls: 3,
            billable_tokens: 100,
            batch_dispatches: 2,
            batched_queries: 4,
            cache_hits: 6,
            cache_misses: 8,
        };
        let b = Usage {
            model_queries: 2,
            decoder_calls: 1,
            billable_tokens: 40,
            batch_dispatches: 1,
            batched_queries: 2,
            cache_hits: 3,
            cache_misses: 4,
        };
        let d = a - b;
        assert_eq!(d.model_queries, 3);
        assert_eq!(d.decoder_calls, 2);
        assert_eq!(d.billable_tokens, 60);
        assert_eq!(d.batch_dispatches, 1);
        assert_eq!(d.batched_queries, 2);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.cache_misses, 4);
    }

    #[test]
    fn batch_recording_and_derived_stats() {
        let bpe = Arc::new(Bpe::char_level(""));
        let meter = UsageMeter::new();
        let lm = MeteredLm::new(UniformLm::new(bpe), meter.clone());
        let c1 = [TokenId(0)];
        let c2 = [TokenId(0), TokenId(1)];
        let batch: Vec<&[TokenId]> = vec![&c1, &c2];
        let out = lm.score_batch(&batch);
        assert_eq!(out.len(), 2);
        let _ = lm.score(&c1); // one unbatched call on top
        let u = meter.snapshot();
        assert_eq!(u.model_queries, 3);
        assert_eq!(u.batch_dispatches, 1);
        assert_eq!(u.batched_queries, 2);
        assert_eq!(u.dispatches(), 2, "one batch + one single call");
        assert!((u.mean_batch_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_sequential_scores() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = UniformLm::new(bpe);
        let c1 = [TokenId(1)];
        let c2 = [TokenId(2), TokenId(3)];
        let batch: Vec<&[TokenId]> = vec![&c1, &c2];
        let out = lm.score_batch(&batch);
        assert_eq!(out[0], lm.score(&c1));
        assert_eq!(out[1], lm.score(&c2));
    }

    #[test]
    fn cache_hit_rate_derives() {
        let meter = UsageMeter::new();
        meter.record_cache_hit();
        meter.record_cache_hit();
        meter.record_cache_hit();
        meter.record_cache_miss();
        let u = meter.snapshot();
        assert!((u.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(Usage::default().cache_hit_rate(), 0.0);
    }
}
