//! Retry with exponential backoff, deterministic jitter, per-request
//! deadlines, and a circuit breaker.
//!
//! [`RetryPolicy`] is pure configuration plus a pure backoff function:
//! the jitter for attempt `a` of request `r` is a hash of `(seed, r, a)`,
//! so a replay with the same seed produces the same delays — chaos tests
//! stay reproducible while concurrent requests still desynchronise.
//!
//! [`RetryLm`] wraps any [`LanguageModel`] and absorbs transient faults
//! ([`LmError::Transient`]) up to the policy's budget. Fatal errors and
//! expired deadlines pass straight through. [`CircuitBreaker`] sits in
//! front: enough consecutive failures open it, open calls fail fast
//! (shedding pressure off a struggling backend), and a cooldown later a
//! half-open probe decides whether to close it again.

use crate::{FaultKind, LanguageModel, LmError, LmResult, Logits};
use lmql_obs::{Counter, Gauge, Registry};
use lmql_tokenizer::{TokenId, Vocabulary};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How (and how much) to retry transient model failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n`, capped at
    /// [`max_backoff`](Self::max_backoff), plus jitter.
    pub base_backoff: Duration,
    /// Upper bound on the exponential term.
    pub max_backoff: Duration,
    /// Jitter amplitude as a fraction of the backoff: the actual delay is
    /// `backoff * (1 - jitter + jitter * u)` with `u ∈ [0, 1)` drawn
    /// deterministically from the seed. `0.0` disables jitter.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Per-request wall-clock budget across all attempts and backoffs.
    /// `None` means unbounded.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            jitter: 0.5,
            seed: 0,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (and never sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
            deadline: None,
        }
    }

    /// The delay before retry `attempt` (0-based) of the request
    /// identified by `token`. Pure: same `(seed, token, attempt)` → same
    /// delay.
    pub fn backoff(&self, attempt: u32, token: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        if self.jitter <= 0.0 || exp.is_zero() {
            return exp;
        }
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(token)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(u64::from(attempt)),
        );
        // 53 uniform bits in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let scale = (1.0 - self.jitter) + self.jitter * u;
        exp.mul_f64(scale.clamp(0.0, 1.0))
    }
}

/// SplitMix64: a statistically solid 64-bit mixer, used here as a pure
/// hash for jitter (not as a sequential generator).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable per-request jitter token from the scored context.
pub fn context_token(context: &[TokenId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for t in context {
        h ^= u64::from(t.0);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The breaker's observable state (also exported as a gauge:
/// closed = 0, half-open = 1, open = 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// One probe call is allowed through; its outcome decides.
    HalfOpen,
    /// Failing fast.
    Open,
}

#[derive(Debug)]
enum BreakerInner {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// A consecutive-failure circuit breaker. Thread-safe; clones share state.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Arc<Mutex<BreakerInner>>,
    gauge: Gauge,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Arc::new(Mutex::new(BreakerInner::Closed {
                consecutive_failures: 0,
            })),
            gauge: Gauge::new(),
        }
    }

    /// The state gauge (closed = 0, half-open = 1, open = 2); register it
    /// into a [`Registry`] to expose breaker state alongside other
    /// metrics.
    pub fn gauge(&self) -> &Gauge {
        &self.gauge
    }

    /// Whether a call may proceed. An open breaker past its cooldown
    /// transitions to half-open and lets exactly this caller probe.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        let allowed = match &*inner {
            BreakerInner::Closed { .. } | BreakerInner::HalfOpen => true,
            BreakerInner::Open { since } => {
                if since.elapsed() >= self.config.cooldown {
                    *inner = BreakerInner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        };
        self.gauge.set(state_of(&inner) as u64);
        allowed
    }

    /// Records a successful call: closes the breaker.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        *inner = BreakerInner::Closed {
            consecutive_failures: 0,
        };
        self.gauge.set(BreakerState::Closed as u64);
    }

    /// Records a failed call: counts toward the threshold; a half-open
    /// probe failure reopens immediately.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        *inner = match &*inner {
            BreakerInner::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.failure_threshold {
                    BreakerInner::Open {
                        since: Instant::now(),
                    }
                } else {
                    BreakerInner::Closed {
                        consecutive_failures: n,
                    }
                }
            }
            BreakerInner::HalfOpen | BreakerInner::Open { .. } => BreakerInner::Open {
                since: Instant::now(),
            },
        };
        self.gauge.set(state_of(&inner) as u64);
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        state_of(&self.inner.lock().expect("breaker poisoned"))
    }
}

fn state_of(inner: &BreakerInner) -> BreakerState {
    match inner {
        BreakerInner::Closed { .. } => BreakerState::Closed,
        BreakerInner::HalfOpen => BreakerState::HalfOpen,
        BreakerInner::Open { .. } => BreakerState::Open,
    }
}

/// Retry/deadline/breaker counters. Clones share cells; standalone by
/// default, or registered into a [`Registry`] under `<prefix>.*` names.
#[derive(Debug, Clone, Default)]
pub struct RetryMetrics {
    /// Retries performed (attempts beyond the first).
    pub retries: Counter,
    /// Requests abandoned because their deadline expired.
    pub deadline_exceeded: Counter,
    /// Transient faults observed (before any retry).
    pub faults: Counter,
    /// Calls rejected fast by an open breaker.
    pub breaker_rejections: Counter,
}

impl RetryMetrics {
    /// Registers these counters into `registry` as `<prefix>.retries`,
    /// `<prefix>.deadline_exceeded`, `<prefix>.faults` and
    /// `<prefix>.breaker_rejections`.
    ///
    /// # Panics
    ///
    /// Panics if any of the names is already registered.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.retries"), self.retries.clone());
        registry.register_counter(
            &format!("{prefix}.deadline_exceeded"),
            self.deadline_exceeded.clone(),
        );
        registry.register_counter(&format!("{prefix}.faults"), self.faults.clone());
        registry.register_counter(
            &format!("{prefix}.breaker_rejections"),
            self.breaker_rejections.clone(),
        );
    }
}

/// Drives one fallible call to completion under a policy: retries
/// transient errors with backoff, enforces the deadline, and consults an
/// optional breaker. The building block behind [`RetryLm`], the
/// scheduler's per-item fallback and the remote client.
///
/// `token` seeds the jitter stream (use [`context_token`]); `f` is called
/// once per attempt.
pub fn call_with_retry<T>(
    policy: &RetryPolicy,
    metrics: &RetryMetrics,
    breaker: Option<&CircuitBreaker>,
    token: u64,
    mut f: impl FnMut() -> LmResult<T>,
) -> LmResult<T> {
    let start = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        if let Some(b) = breaker {
            if !b.allow() {
                metrics.breaker_rejections.inc();
                return Err(LmError::transient(FaultKind::Busy, "circuit breaker open"));
            }
        }
        match f() {
            Ok(v) => {
                if let Some(b) = breaker {
                    b.record_success();
                }
                return Ok(v);
            }
            Err(e) => {
                if let Some(b) = breaker {
                    b.record_failure();
                }
                if !e.is_transient() {
                    return Err(e);
                }
                metrics.faults.inc();
                if attempt >= policy.max_retries {
                    return Err(e);
                }
                let delay = policy.backoff(attempt, token);
                if let Some(deadline) = policy.deadline {
                    if start.elapsed() + delay >= deadline {
                        metrics.deadline_exceeded.inc();
                        return Err(LmError::DeadlineExceeded { deadline });
                    }
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                metrics.retries.inc();
                attempt += 1;
            }
        }
    }
}

/// A [`LanguageModel`] wrapper that absorbs transient faults of its inner
/// model: every `try_score` is retried per the policy, replies shorter
/// than the vocabulary are treated as truncated (transient), and an
/// optional circuit breaker fails fast while the backend is down.
///
/// The infallible [`score`](LanguageModel::score) panics only when the
/// whole retry budget is exhausted or the error is fatal.
#[derive(Debug, Clone)]
pub struct RetryLm<L> {
    inner: L,
    policy: RetryPolicy,
    breaker: Option<CircuitBreaker>,
    metrics: RetryMetrics,
}

impl<L: LanguageModel> RetryLm<L> {
    /// Wraps `inner` under `policy`, without a breaker.
    pub fn new(inner: L, policy: RetryPolicy) -> Self {
        RetryLm {
            inner,
            policy,
            breaker: None,
            metrics: RetryMetrics::default(),
        }
    }

    /// Adds a circuit breaker in front of the inner model.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(config));
        self
    }

    /// The retry counters.
    pub fn metrics(&self) -> &RetryMetrics {
        &self.metrics
    }

    /// The breaker, if one was installed.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Registers retry counters (and the breaker-state gauge, when a
    /// breaker is installed) into `registry` under `<prefix>.*` names —
    /// e.g. `lm.retries`, `lm.deadline_exceeded`, `lm.breaker_state`.
    ///
    /// # Panics
    ///
    /// Panics if any of the names is already registered.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        self.metrics.register_into(registry, prefix);
        if let Some(b) = &self.breaker {
            registry.register_gauge(&format!("{prefix}.breaker_state"), b.gauge().clone());
        }
    }

    /// Consumes the wrapper, returning the inner model.
    pub fn into_inner(self) -> L {
        self.inner
    }

    fn validated(&self, logits: Logits) -> LmResult<Logits> {
        let want = self.inner.vocab().len();
        if logits.len() == want {
            Ok(logits)
        } else {
            Err(LmError::transient(
                FaultKind::Truncated,
                format!("reply has {} logits, vocabulary has {want}", logits.len()),
            ))
        }
    }
}

impl<L: LanguageModel> LanguageModel for RetryLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    /// # Panics
    ///
    /// Panics when the retry budget is exhausted or the inner error is
    /// fatal; use [`try_score`](LanguageModel::try_score) to handle the
    /// error.
    fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context)
            .unwrap_or_else(|e| panic!("model call failed after retries: {e}"))
    }

    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        call_with_retry(
            &self.policy,
            &self.metrics,
            self.breaker.as_ref(),
            context_token(context),
            || {
                self.inner
                    .try_score(context)
                    .and_then(|l| self.validated(l))
            },
        )
    }

    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.try_score_batch(contexts)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("model call failed after retries: {e}")))
            .collect()
    }

    /// One inner batched dispatch, then per-item direct retries for the
    /// items that faulted — a partner's fault never fails the batch.
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        let first = self.inner.try_score_batch(contexts);
        first
            .into_iter()
            .zip(contexts)
            .map(|(r, ctx)| match r.and_then(|l| self.validated(l)) {
                Ok(l) => Ok(l),
                Err(e) if e.is_transient() => {
                    self.metrics.faults.inc();
                    call_with_retry(
                        &self.policy,
                        &self.metrics,
                        self.breaker.as_ref(),
                        context_token(ctx),
                        || self.inner.try_score(ctx).and_then(|l| self.validated(l)),
                    )
                }
                Err(e) => Err(e),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformLm;
    use lmql_tokenizer::Bpe;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: 0.0,
            seed: 0,
            deadline: None,
        };
        assert_eq!(p.backoff(0, 7), Duration::from_millis(10));
        assert_eq!(p.backoff(1, 7), Duration::from_millis(20));
        assert_eq!(p.backoff(2, 7), Duration::from_millis(40));
        assert_eq!(p.backoff(5, 7), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff(63, 7), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: 0.5,
            seed: 42,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        let a = p.backoff(0, 1);
        let b = p.backoff(0, 1);
        assert_eq!(a, b, "same (seed, token, attempt) → same delay");
        // jitter 0.5 ⇒ delay ∈ [50ms, 100ms).
        assert!(a >= Duration::from_millis(50) && a < Duration::from_millis(100));
        let c = p.backoff(0, 2);
        let d = RetryPolicy { seed: 43, ..p }.backoff(0, 1);
        // Different token or seed draws a different point (with the fixed
        // constants here, these specific draws differ).
        assert!(a != c || a != d);
    }

    /// Fails with a transient error until `fail_first` calls have
    /// happened, then succeeds.
    #[derive(Debug)]
    struct FlakyLm {
        inner: UniformLm,
        calls: AtomicU64,
        fail_first: u64,
        fatal: bool,
    }

    impl FlakyLm {
        fn new(fail_first: u64, fatal: bool) -> Self {
            FlakyLm {
                inner: UniformLm::new(Arc::new(Bpe::char_level(""))),
                calls: AtomicU64::new(0),
                fail_first,
                fatal,
            }
        }
    }

    impl LanguageModel for FlakyLm {
        fn vocab(&self) -> &Vocabulary {
            self.inner.vocab()
        }
        fn score(&self, context: &[TokenId]) -> Logits {
            self.try_score(context).expect("flaky model call failed")
        }
        fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
                if self.fatal {
                    return Err(LmError::fatal("permanently broken"));
                }
                return Err(LmError::transient(FaultKind::Injected, "flaky"));
            }
            Ok(self.inner.score(context))
        }
    }

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            jitter: 0.0,
            seed: 0,
            deadline: None,
        }
    }

    #[test]
    fn transient_faults_are_absorbed() {
        let lm = RetryLm::new(FlakyLm::new(2, false), fast_policy(3));
        let out = lm.try_score(&[TokenId(0)]).unwrap();
        assert_eq!(out.len(), lm.vocab().len());
        assert_eq!(lm.metrics().retries.get(), 2);
        assert_eq!(lm.metrics().faults.get(), 2);
    }

    #[test]
    fn budget_exhaustion_returns_the_error() {
        let lm = RetryLm::new(FlakyLm::new(10, false), fast_policy(2));
        let err = lm.try_score(&[]).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(lm.metrics().retries.get(), 2, "2 retries = 3 attempts");
    }

    #[test]
    fn fatal_errors_pass_through_immediately() {
        let lm = RetryLm::new(FlakyLm::new(10, true), fast_policy(5));
        let err = lm.try_score(&[]).unwrap_err();
        assert!(matches!(err, LmError::Fatal { .. }));
        assert_eq!(lm.metrics().retries.get(), 0, "fatal is never retried");
    }

    #[test]
    fn deadline_cuts_the_retry_loop() {
        let policy = RetryPolicy {
            max_retries: 100,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            jitter: 0.0,
            seed: 0,
            deadline: Some(Duration::from_millis(30)),
        };
        let lm = RetryLm::new(FlakyLm::new(u64::MAX, false), policy);
        let start = Instant::now();
        let err = lm.try_score(&[]).unwrap_err();
        assert!(matches!(err, LmError::DeadlineExceeded { .. }), "{err}");
        assert!(start.elapsed() < Duration::from_millis(300));
        assert_eq!(lm.metrics().deadline_exceeded.get(), 1);
    }

    #[test]
    fn truncated_replies_are_retried() {
        /// Returns a half-length logits vector on the first call.
        #[derive(Debug)]
        struct TruncatingLm {
            inner: UniformLm,
            calls: AtomicU64,
        }
        impl LanguageModel for TruncatingLm {
            fn vocab(&self) -> &Vocabulary {
                self.inner.vocab()
            }
            fn score(&self, context: &[TokenId]) -> Logits {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    return Logits::constant(self.inner.vocab().len() / 2, 0.0);
                }
                self.inner.score(context)
            }
        }
        let lm = RetryLm::new(
            TruncatingLm {
                inner: UniformLm::new(Arc::new(Bpe::char_level(""))),
                calls: AtomicU64::new(0),
            },
            fast_policy(2),
        );
        let out = lm.try_score(&[]).unwrap();
        assert_eq!(out.len(), lm.vocab().len());
        assert_eq!(lm.metrics().retries.get(), 1);
    }

    #[test]
    fn breaker_opens_and_recovers() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(10),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker rejects");
        assert_eq!(b.gauge().get(), BreakerState::Open as u64);
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.allow(), "cooldown elapsed: half-open probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gauge().get(), BreakerState::Closed as u64);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(5),
        });
        b.record_failure();
        std::thread::sleep(Duration::from_millis(8));
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_fails_fast() {
        let lm = RetryLm::new(FlakyLm::new(u64::MAX, false), fast_policy(0)).with_breaker(
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            },
        );
        assert!(lm.try_score(&[]).is_err()); // trips the breaker
        let err = lm.try_score(&[]).unwrap_err();
        assert_eq!(err.fault_kind(), Some(FaultKind::Busy));
        assert_eq!(lm.metrics().breaker_rejections.get(), 1);
    }

    #[test]
    fn batch_partner_fault_does_not_fail_healthy_items() {
        // First call (inside try_score_batch's per-item default) faults,
        // later per-item retries succeed: every item completes.
        let lm = RetryLm::new(FlakyLm::new(1, false), fast_policy(2));
        let c1 = [TokenId(0)];
        let c2 = [TokenId(1)];
        let out = lm.try_score_batch(&[&c1, &c2]);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn metrics_register_under_prefix() {
        let registry = Registry::new();
        let lm = RetryLm::new(FlakyLm::new(1, false), fast_policy(2))
            .with_breaker(BreakerConfig::default());
        lm.register_into(&registry, "lm");
        let _ = lm.try_score(&[]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lm.retries"), Some(1));
        assert_eq!(snap.counter("lm.deadline_exceeded"), Some(0));
        assert!(snap.gauge("lm.breaker_state").is_some());
    }
}
