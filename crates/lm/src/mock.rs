//! Deterministic models for tests.

use crate::{LanguageModel, Logits};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::Arc;

/// A model that scores every token equally. With argmax decoding this
/// always picks the lowest token id — useful for exercising mask logic,
/// since the decoded token is whatever the mask admits first.
#[derive(Debug, Clone)]
pub struct UniformLm {
    bpe: Arc<Bpe>,
}

impl UniformLm {
    /// A uniform model over `bpe`'s vocabulary.
    pub fn new(bpe: Arc<Bpe>) -> Self {
        UniformLm { bpe }
    }
}

impl LanguageModel for UniformLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    fn score(&self, _context: &[TokenId]) -> Logits {
        Logits::constant(self.bpe.vocab().len(), 0.0)
    }

    /// One allocation for the whole batch: every context gets a clone of
    /// the same constant vector.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        let logits = Logits::constant(self.bpe.vocab().len(), 0.0);
        vec![logits; contexts.len()]
    }
}

/// A model that plays back a fixed text continuation regardless of prompt
/// content, then emits EOS.
///
/// The continuation is tracked by *generated length*: the `n`-th scored
/// context after [`MockLm::start`] puts all mass on the `n`-th token of the
/// scripted text. This makes unit tests for decoders fully deterministic.
///
/// For context-sensitive behaviour use
/// [`ScriptedLm`](crate::ScriptedLm) instead.
#[derive(Debug)]
pub struct MockLm {
    bpe: Arc<Bpe>,
    script: Vec<TokenId>,
    /// Context length at which generation starts (prompt length).
    base_len: std::sync::atomic::AtomicUsize,
}

impl MockLm {
    /// A model that will emit `text` then EOS.
    pub fn new(bpe: Arc<Bpe>, text: &str) -> Self {
        let script = bpe.encode(text);
        MockLm {
            bpe,
            script,
            base_len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Declares the prompt length: generation offsets are counted from
    /// here. Decoders call this implicitly by scoring; tests call it when
    /// they change prompts mid-test.
    pub fn start(&self, prompt_len: usize) {
        self.base_len
            .store(prompt_len, std::sync::atomic::Ordering::SeqCst);
    }
}

impl LanguageModel for MockLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        let base = self.base_len.load(std::sync::atomic::Ordering::SeqCst);
        let offset = context.len().saturating_sub(base);
        let mut logits = Logits::constant(self.bpe.vocab().len(), -10.0);
        match self.script.get(offset) {
            Some(&t) => logits.set(t, 10.0),
            None => logits.set(self.bpe.vocab().eos(), 10.0),
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_equal() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = UniformLm::new(bpe);
        let l = lm.score(&[]);
        assert!(l.scores().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn mock_plays_script_then_eos() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = MockLm::new(Arc::clone(&bpe), "hi");
        lm.start(3);
        let ctx = vec![TokenId(0); 3];
        let first = lm.score(&ctx).softmax(1.0).argmax();
        assert_eq!(bpe.vocab().token_str(first), "h");
        let mut ctx2 = ctx.clone();
        ctx2.push(first);
        let second = lm.score(&ctx2).softmax(1.0).argmax();
        assert_eq!(bpe.vocab().token_str(second), "i");
        let mut ctx3 = ctx2.clone();
        ctx3.push(second);
        let third = lm.score(&ctx3).softmax(1.0).argmax();
        assert_eq!(third, bpe.vocab().eos());
    }
}
