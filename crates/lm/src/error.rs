//! The error taxonomy for fallible model backends.
//!
//! The paper's runtime treats the model as a pure function `f : V^k →
//! R^{|V|}`; a production serving stack cannot. Remote backends drop
//! connections, time out, shed load and return garbage. [`LmError`]
//! classifies every such failure into the only distinction the serving
//! layer acts on: **transient** (retry with backoff and the call should
//! eventually succeed) versus **fatal** (retrying is useless — fail the
//! request). A third variant, [`LmError::DeadlineExceeded`], marks a
//! request whose retry budget ran out; it is terminal like a fatal error
//! but names the deadline as the cause so callers (and metrics) can tell
//! "the backend is broken" apart from "the backend is slow".

use std::fmt;
use std::time::Duration;

/// Why a transient failure happened. Used for metrics and log lines;
/// the retry layer treats every kind the same way (retryable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The connection to the backend dropped (reset, EOF, broken pipe).
    ConnectionLost,
    /// A single call exceeded its I/O timeout.
    Timeout,
    /// The backend shed load (a typed `BUSY` reply, or an open circuit
    /// breaker failing fast).
    Busy,
    /// The reply arrived but was incomplete (e.g. a logits vector shorter
    /// than the vocabulary).
    Truncated,
    /// A fault injected by the chaos harness ([`ChaosLm`]).
    ///
    /// [`ChaosLm`]: crate::ChaosLm
    Injected,
    /// Anything else judged worth retrying.
    Other,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::ConnectionLost => "connection-lost",
            FaultKind::Timeout => "timeout",
            FaultKind::Busy => "busy",
            FaultKind::Truncated => "truncated",
            FaultKind::Injected => "injected",
            FaultKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A failed model call, classified by how the serving layer should react.
#[derive(Debug, Clone, PartialEq)]
pub enum LmError {
    /// Retryable: the same call is expected to succeed later.
    Transient {
        /// What went wrong (for metrics and messages).
        kind: FaultKind,
        /// Human-readable detail.
        message: String,
    },
    /// Not retryable: a protocol violation, an invalid request, a
    /// configuration mismatch. Retrying would fail identically.
    Fatal {
        /// Human-readable detail.
        message: String,
    },
    /// The per-request deadline expired before a retry could succeed.
    /// Terminal, but caused by slowness rather than breakage.
    DeadlineExceeded {
        /// The budget that ran out.
        deadline: Duration,
    },
    /// The caller abandoned the request (a dropped stream handle, a
    /// disconnected client). Terminal and **not** retryable: nobody is
    /// waiting for the answer any more.
    Cancelled,
}

impl LmError {
    /// A transient (retryable) error.
    pub fn transient(kind: FaultKind, message: impl Into<String>) -> Self {
        LmError::Transient {
            kind,
            message: message.into(),
        }
    }

    /// A fatal (non-retryable) error.
    pub fn fatal(message: impl Into<String>) -> Self {
        LmError::Fatal {
            message: message.into(),
        }
    }

    /// `true` when the retry layer should try again.
    pub fn is_transient(&self) -> bool {
        matches!(self, LmError::Transient { .. })
    }

    /// The fault kind of a transient error, `None` otherwise.
    pub fn fault_kind(&self) -> Option<FaultKind> {
        match self {
            LmError::Transient { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// Classifies an I/O error: timeouts and connection drops are
    /// transient (a reconnect-and-retry is expected to succeed), anything
    /// else — invalid data, permission errors, address failures — is
    /// fatal.
    pub fn from_io(e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                LmError::transient(FaultKind::Timeout, e.to_string())
            }
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
            | ErrorKind::Interrupted => {
                LmError::transient(FaultKind::ConnectionLost, e.to_string())
            }
            _ => LmError::fatal(e.to_string()),
        }
    }
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::Transient { kind, message } => {
                write!(f, "transient model error ({kind}): {message}")
            }
            LmError::Fatal { message } => write!(f, "fatal model error: {message}"),
            LmError::DeadlineExceeded { deadline } => {
                write!(f, "model call deadline exceeded ({deadline:?})")
            }
            LmError::Cancelled => f.write_str("model call cancelled"),
        }
    }
}

impl std::error::Error for LmError {}

/// Result alias for fallible model calls.
pub type LmResult<T> = std::result::Result<T, LmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error as IoError, ErrorKind};

    #[test]
    fn transience_classification() {
        assert!(LmError::transient(FaultKind::Timeout, "slow").is_transient());
        assert!(!LmError::fatal("broken").is_transient());
        assert!(!LmError::DeadlineExceeded {
            deadline: Duration::from_millis(5)
        }
        .is_transient());
        assert!(!LmError::Cancelled.is_transient());
    }

    #[test]
    fn io_errors_classify_by_kind() {
        let transient_kinds = [
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionRefused,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ];
        for kind in transient_kinds {
            let e = LmError::from_io(&IoError::new(kind, "x"));
            assert!(e.is_transient(), "{kind:?} should be transient");
        }
        let e = LmError::from_io(&IoError::new(ErrorKind::InvalidData, "x"));
        assert!(!e.is_transient(), "InvalidData should be fatal");
    }

    #[test]
    fn display_names_the_class() {
        let e = LmError::transient(FaultKind::Busy, "queue full");
        assert!(e.to_string().contains("transient"));
        assert!(e.to_string().contains("busy"));
        let e = LmError::fatal("bad vocab");
        assert!(e.to_string().contains("fatal"));
        let e = LmError::DeadlineExceeded {
            deadline: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("deadline"));
        assert!(LmError::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn fault_kind_projection() {
        let e = LmError::transient(FaultKind::Truncated, "short");
        assert_eq!(e.fault_kind(), Some(FaultKind::Truncated));
        assert_eq!(LmError::fatal("x").fault_kind(), None);
    }
}
