//! The core language-model interface.

use crate::{LmResult, Logits};
use lmql_tokenizer::{TokenId, Vocabulary};

/// A next-token predictor `f : V^k → R^{|V|}` (§2.1 of the paper).
///
/// Implementations are treated as black boxes: given a token context they
/// return one raw score per vocabulary entry. Everything else — softmax,
/// temperature, masking, decoding — is layered on top, exactly as the paper
/// factors it.
///
/// Implementors must be `Send + Sync` so decoders can share models across
/// beams and threads.
///
/// # Example
///
/// ```
/// use lmql_lm::{LanguageModel, UniformLm};
/// use lmql_tokenizer::{Bpe, TokenId};
/// use std::sync::Arc;
///
/// let bpe = Arc::new(Bpe::char_level(""));
/// let lm = UniformLm::new(Arc::clone(&bpe));
/// let logits = lm.score(&[TokenId(0)]);
/// assert_eq!(logits.len(), lm.vocab().len());
/// ```
pub trait LanguageModel: Send + Sync {
    /// The vocabulary this model scores over.
    fn vocab(&self) -> &Vocabulary;

    /// Raw (pre-softmax) scores for the next token given `context`.
    ///
    /// The returned vector has exactly `self.vocab().len()` entries.
    fn score(&self, context: &[TokenId]) -> Logits;

    /// Raw scores for several contexts at once, in order.
    ///
    /// Semantically this *is* `contexts.iter().map(|c| self.score(c))` —
    /// and that is the default implementation, so
    /// `score_batch(cs)[i]` is always bit-identical to `score(cs[i])`.
    /// Backends with a real batched path (a microbatching scheduler, a
    /// remote server, GPU inference) override it to answer the whole
    /// batch in one dispatch; overrides must preserve the bit-identity.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        contexts.iter().map(|c| self.score(c)).collect()
    }

    /// The end-of-sequence token id. Defaults to the vocabulary's EOS.
    fn eos(&self) -> TokenId {
        self.vocab().eos()
    }

    /// Fallible scoring. In-process models never fail, so the default
    /// wraps [`score`](Self::score) in `Ok`; backends that can fail
    /// (remote connections, fault-injection wrappers) override this and
    /// classify failures as transient or fatal via [`LmError`].
    ///
    /// [`LmError`]: crate::LmError
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        Ok(self.score(context))
    }

    /// Fallible batched scoring with **per-item** results: one context's
    /// failure leaves its batch partners' answers intact, which is what
    /// lets a scheduler recover merged single-flight waiters
    /// individually instead of poisoning the whole batch.
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        contexts.iter().map(|c| self.try_score(c)).collect()
    }
}

// Allow passing models behind common smart pointers.
impl<L: LanguageModel + ?Sized> LanguageModel for &L {
    fn vocab(&self) -> &Vocabulary {
        (**self).vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        (**self).score(context)
    }
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        (**self).score_batch(contexts)
    }
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        (**self).try_score(context)
    }
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        (**self).try_score_batch(contexts)
    }
}

impl<L: LanguageModel + ?Sized> LanguageModel for std::sync::Arc<L> {
    fn vocab(&self) -> &Vocabulary {
        (**self).vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        (**self).score(context)
    }
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        (**self).score_batch(contexts)
    }
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        (**self).try_score(context)
    }
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        (**self).try_score_batch(contexts)
    }
}

impl<L: LanguageModel + ?Sized> LanguageModel for Box<L> {
    fn vocab(&self) -> &Vocabulary {
        (**self).vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        (**self).score(context)
    }
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        (**self).score_batch(contexts)
    }
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        (**self).try_score(context)
    }
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        (**self).try_score_batch(contexts)
    }
}
