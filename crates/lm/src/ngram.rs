//! An interpolated n-gram language model.
//!
//! This is the reproduction's free-running generative model: it produces
//! statistically plausible continuations of its training corpus, which is
//! all the LMQL runtime requires of a model (§4). It stands in for GPT-2
//! style models in examples that need open-ended text (e.g. the Fig. 1a
//! joke query).

use crate::{LanguageModel, Logits};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::collections::HashMap;
use std::sync::Arc;

/// Interpolation weight decay per order step (higher orders weigh more).
const BACKOFF: f64 = 0.35;
/// Additive smoothing for the unigram distribution.
const DELTA: f64 = 0.05;

/// An order-`N` n-gram model with interpolated backoff over token counts.
///
/// Training documents are separated by blank lines (`\n\n`); each document
/// is terminated by EOS so the model learns where sequences end.
///
/// # Example
///
/// ```
/// use lmql_lm::{LanguageModel, NGramLm};
/// use lmql_tokenizer::BpeTrainer;
/// use std::sync::Arc;
///
/// let corpus = "the cat sat.\n\nthe cat ran.\n\nthe dog sat.";
/// let bpe = Arc::new(BpeTrainer::new().merges(50).train(corpus));
/// let lm = NGramLm::train(Arc::clone(&bpe), corpus, 3);
/// let ctx = bpe.encode("the cat");
/// let next = lm.score(&ctx).softmax(1.0).argmax();
/// // " sat" / " ran" territory — certainly a token seen after "the cat".
/// assert!(!bpe.vocab().is_special(next));
/// ```
#[derive(Debug)]
pub struct NGramLm {
    bpe: Arc<Bpe>,
    order: usize,
    /// `counts[k]` maps a length-`k` context to next-token counts.
    counts: Vec<HashMap<Vec<TokenId>, HashMap<TokenId, u32>>>,
    /// `totals[k]` maps a length-`k` context to its total count.
    totals: Vec<HashMap<Vec<TokenId>, u32>>,
}

impl NGramLm {
    /// Trains an order-`order` model on `corpus` using `bpe` for
    /// tokenisation.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn train(bpe: Arc<Bpe>, corpus: &str, order: usize) -> Self {
        assert!(order >= 1, "n-gram order must be at least 1");
        let mut counts: Vec<HashMap<Vec<TokenId>, HashMap<TokenId, u32>>> =
            vec![HashMap::new(); order];
        let mut totals: Vec<HashMap<Vec<TokenId>, u32>> = vec![HashMap::new(); order];

        let eos = bpe.vocab().eos();
        for doc in corpus.split("\n\n") {
            if doc.trim().is_empty() {
                continue;
            }
            let mut tokens = bpe.encode(doc);
            tokens.push(eos);
            for i in 0..tokens.len() {
                for k in 0..order.min(i + 1) {
                    let ctx = tokens[i - k..i].to_vec();
                    *counts[k]
                        .entry(ctx.clone())
                        .or_default()
                        .entry(tokens[i])
                        .or_insert(0) += 1;
                    *totals[k].entry(ctx).or_insert(0) += 1;
                }
            }
        }

        NGramLm {
            bpe,
            order,
            counts,
            totals,
        }
    }

    /// The model's order (maximum context length + 1).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Smoothed unigram probability of `next` — the interpolation base
    /// case, independent of context (so batched scoring computes it once
    /// per vocabulary entry, not once per context).
    fn unigram(&self, next: TokenId) -> f64 {
        let vocab_len = self.bpe.vocab().len() as f64;
        let uni_total = *self.totals[0].get(&Vec::new()).unwrap_or(&0) as f64;
        let uni_count = self.counts[0]
            .get(&Vec::new())
            .and_then(|m| m.get(&next))
            .copied()
            .unwrap_or(0) as f64;
        (uni_count + DELTA) / (uni_total + DELTA * vocab_len)
    }

    /// Interpolated probability of `next` given `context`, starting from
    /// the precomputed unigram base.
    fn prob_from_base(&self, context: &[TokenId], next: TokenId, base: f64) -> f64 {
        let mut p = base;
        // Interpolate higher orders where the context was observed.
        let mut weight = 1.0 - BACKOFF;
        for k in 1..self.order {
            if context.len() < k {
                break;
            }
            let ctx = &context[context.len() - k..];
            if let Some(&total) = self.totals[k].get(ctx) {
                let count = self.counts[k]
                    .get(ctx)
                    .and_then(|m| m.get(&next))
                    .copied()
                    .unwrap_or(0) as f64;
                let pk = count / total as f64;
                p = weight * pk + (1.0 - weight) * p;
            }
            weight *= 1.0 - BACKOFF;
        }
        p
    }
}

impl LanguageModel for NGramLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        let scores = self
            .bpe
            .vocab()
            .ids()
            .map(|t| self.prob_from_base(context, t, self.unigram(t)).ln())
            .collect();
        Logits::from_vec(scores)
    }

    /// Batched scoring sharing one unigram-base computation across the
    /// whole batch. Same arithmetic per context as [`score`](Self::score),
    /// so results are bit-identical to the sequential path.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        let bases: Vec<f64> = self.bpe.vocab().ids().map(|t| self.unigram(t)).collect();
        contexts
            .iter()
            .map(|ctx| {
                let scores = self
                    .bpe
                    .vocab()
                    .ids()
                    .zip(&bases)
                    .map(|(t, &base)| self.prob_from_base(ctx, t, base).ln())
                    .collect();
                Logits::from_vec(scores)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_tokenizer::BpeTrainer;

    fn tiny() -> (Arc<Bpe>, NGramLm) {
        let corpus = "a b c.\n\na b d.\n\na b c.";
        let bpe = Arc::new(BpeTrainer::new().merges(0).train(corpus));
        let lm = NGramLm::train(Arc::clone(&bpe), corpus, 3);
        (bpe, lm)
    }

    #[test]
    fn frequent_continuation_wins() {
        let (bpe, lm) = tiny();
        let ctx = bpe.encode("a b");
        let next = lm.score(&ctx).softmax(1.0).argmax();
        // "a b" is followed by " c" twice and " d" once; " c" encodes as
        // [" ", "c"] at the char level, so the next token is " ".
        assert_eq!(bpe.vocab().token_str(next), " ");
        let mut ctx2 = ctx.clone();
        ctx2.push(next);
        let next2 = lm.score(&ctx2).softmax(1.0).argmax();
        assert_eq!(bpe.vocab().token_str(next2), "c");
    }

    #[test]
    fn eos_predicted_at_document_end() {
        let (bpe, lm) = tiny();
        let ctx = bpe.encode("a b c.");
        let next = lm.score(&ctx).softmax(1.0).argmax();
        assert_eq!(next, bpe.vocab().eos());
    }

    #[test]
    fn all_tokens_have_positive_probability() {
        let (bpe, lm) = tiny();
        let dist = lm.score(&bpe.encode("zzz")).softmax(1.0);
        assert!(dist.probs().iter().all(|&p| p > 0.0));
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_rejected() {
        let bpe = Arc::new(Bpe::char_level(""));
        let _ = NGramLm::train(bpe, "x", 0);
    }
}
