//! Score caching keyed on the full token context.
//!
//! The paper notes (§4 "Performance Considerations") that because functions
//! are pure and deterministic, "results can be cached based on the function
//! arguments". The same applies to the model itself when several beams or
//! samples run in lockstep over shared prefixes: identical contexts need
//! only one forward pass. [`CachedLm`] memoises `score()` per context.
//!
//! The cache is bounded: least-recently-used entries are evicted past a
//! configurable capacity, so long-lived processes (servers, benchmark
//! sweeps) reach a steady state instead of holding every context ever
//! scored. The cross-query trie-shaped variant lives in the engine crate
//! as `RadixCache`.

use crate::{LanguageModel, LmResult, Logits};
use lmql_tokenizer::{TokenId, Vocabulary};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// LRU bookkeeping: entries carry a monotonically increasing use stamp,
/// and a stamp-ordered index finds the coldest entry in `O(log n)`. The
/// map key and the stamp index share one `Arc<[TokenId]>` allocation per
/// entry (lookups by `&[TokenId]` go through the std `Borrow<[T]>` impl).
#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<Arc<[TokenId]>, (Logits, u64)>,
    order: BTreeMap<u64, Arc<[TokenId]>>,
    stamp: u64,
}

impl CacheState {
    fn touch(&mut self, context: &[TokenId]) -> Option<Logits> {
        let (logits, old) = self.map.get_mut(context)?;
        let logits = logits.clone();
        let old = std::mem::replace(old, self.stamp);
        self.stamp += 1;
        let key = self.order.remove(&old).expect("stamp index out of sync");
        self.order.insert(self.stamp - 1, key);
        Some(logits)
    }

    fn insert(&mut self, context: Arc<[TokenId]>, logits: Logits) {
        let stamp = self.stamp;
        self.stamp += 1;
        let key = Arc::clone(&context);
        if let Some((_, old)) = self.map.insert(context, (logits, stamp)) {
            self.order.remove(&old);
        }
        self.order.insert(stamp, key);
    }

    /// Evicts entries down to `capacity`, returning how many were dropped.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut dropped = 0;
        while self.map.len() > capacity {
            let (_, key) = self.order.pop_first().expect("cache non-empty");
            self.map.remove(&key);
            dropped += 1;
        }
        dropped
    }
}

/// A memoising wrapper: `score()` results are cached by context, with LRU
/// eviction past a capacity (default [`CachedLm::DEFAULT_CAPACITY`]).
///
/// Wrap *outside* a [`MeteredLm`](crate::MeteredLm) to make cache hits free
/// (`CachedLm<MeteredLm<L>>`), or inside to still count them as queries.
///
/// # Example
///
/// ```
/// use lmql_lm::{CachedLm, LanguageModel, MeteredLm, UniformLm, UsageMeter};
/// use lmql_tokenizer::{Bpe, TokenId};
/// use std::sync::Arc;
///
/// let bpe = Arc::new(Bpe::char_level(""));
/// let meter = UsageMeter::new();
/// let lm = CachedLm::new(MeteredLm::new(UniformLm::new(bpe), meter.clone()));
/// let _ = lm.score(&[TokenId(1)]);
/// let _ = lm.score(&[TokenId(1)]); // cache hit: no extra model query
/// assert_eq!(meter.snapshot().model_queries, 1);
/// ```
#[derive(Debug)]
pub struct CachedLm<L> {
    inner: L,
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<L: LanguageModel> CachedLm<L> {
    /// Default capacity (cached contexts) for [`CachedLm::new`]: ample
    /// for any single query run, bounded for long-lived processes.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Wraps `inner` with the default capacity.
    pub fn new(inner: L) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Wraps `inner`, keeping at most `capacity` cached contexts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(inner: L, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        CachedLm {
            inner,
            capacity,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached contexts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of contexts currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("lm cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the cache.
    pub fn clear(&self) {
        let mut st = self.state.lock().expect("lm cache poisoned");
        st.map.clear();
        st.order.clear();
    }

    /// Consumes the wrapper, returning the inner model.
    pub fn into_inner(self) -> L {
        self.inner
    }

    fn store(&self, context: &[TokenId], logits: Logits) {
        let mut st = self.state.lock().expect("lm cache poisoned");
        st.insert(Arc::from(context), logits);
        let dropped = st.evict_to(self.capacity);
        if dropped > 0 {
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

impl<L: LanguageModel> LanguageModel for CachedLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        if let Some(hit) = self.state.lock().expect("lm cache poisoned").touch(context) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let logits = self.inner.score(context);
        self.store(context, logits.clone());
        logits
    }

    /// Serves hits from the cache and forwards only the distinct misses
    /// to the inner model — as one inner batch, so a batched backend
    /// below still sees a single dispatch.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        let mut out: Vec<Option<Logits>> = vec![None; contexts.len()];
        // Distinct missing contexts in first-appearance order, with the
        // output slots each one fills (duplicates fold into one query).
        let mut need: Vec<&[TokenId]> = Vec::new();
        let mut slots: HashMap<&[TokenId], Vec<usize>> = HashMap::new();
        {
            let mut st = self.state.lock().expect("lm cache poisoned");
            for (i, &ctx) in contexts.iter().enumerate() {
                if let Some(entry) = slots.get_mut(ctx) {
                    entry.push(i);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(hit) = st.touch(ctx) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(hit);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    need.push(ctx);
                    slots.insert(ctx, vec![i]);
                }
            }
        }
        if !need.is_empty() {
            let scored = self.inner.score_batch(&need);
            for (ctx, logits) in need.iter().zip(scored) {
                self.store(ctx, logits.clone());
                for &i in &slots[ctx] {
                    out[i] = Some(logits.clone());
                }
            }
        }
        out.into_iter()
            .map(|l| l.expect("every slot filled"))
            .collect()
    }

    /// Fallible variant: hits never touch the inner model, misses forward
    /// to the inner fallible path and only successes are cached (a failed
    /// call must stay retryable, not become a poisoned cache entry).
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        if let Some(hit) = self.state.lock().expect("lm cache poisoned").touch(context) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let logits = self.inner.try_score(context)?;
        self.store(context, logits.clone());
        Ok(logits)
    }

    /// Fallible batch: like [`score_batch`](Self::score_batch) but each
    /// miss keeps its own per-item verdict; duplicate contexts share one
    /// inner call (and therefore one verdict).
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        let mut out: Vec<Option<LmResult<Logits>>> = (0..contexts.len()).map(|_| None).collect();
        let mut need: Vec<&[TokenId]> = Vec::new();
        let mut slots: HashMap<&[TokenId], Vec<usize>> = HashMap::new();
        {
            let mut st = self.state.lock().expect("lm cache poisoned");
            for (i, &ctx) in contexts.iter().enumerate() {
                if let Some(entry) = slots.get_mut(ctx) {
                    entry.push(i);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(hit) = st.touch(ctx) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(Ok(hit));
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    need.push(ctx);
                    slots.insert(ctx, vec![i]);
                }
            }
        }
        if !need.is_empty() {
            let scored = self.inner.try_score_batch(&need);
            for (ctx, result) in need.iter().zip(scored) {
                if let Ok(logits) = &result {
                    self.store(ctx, logits.clone());
                }
                for &i in &slots[ctx] {
                    out[i] = Some(result.clone());
                }
            }
        }
        out.into_iter()
            .map(|l| l.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeteredLm, UniformLm, UsageMeter};
    use lmql_tokenizer::Bpe;
    use std::sync::Arc;

    fn uniform() -> UniformLm {
        UniformLm::new(Arc::new(Bpe::char_level("")))
    }

    #[test]
    fn hits_and_misses_counted() {
        let lm = CachedLm::new(uniform());
        let _ = lm.score(&[TokenId(0)]);
        let _ = lm.score(&[TokenId(0)]);
        let _ = lm.score(&[TokenId(1)]);
        assert_eq!(lm.hits(), 1);
        assert_eq!(lm.misses(), 2);
        assert_eq!(lm.len(), 2);
    }

    #[test]
    fn cache_outside_meter_saves_queries() {
        let meter = UsageMeter::new();
        let lm = CachedLm::new(MeteredLm::new(uniform(), meter.clone()));
        for _ in 0..5 {
            let _ = lm.score(&[TokenId(7)]);
        }
        assert_eq!(meter.snapshot().model_queries, 1);
    }

    #[test]
    fn clear_forgets() {
        let lm = CachedLm::new(uniform());
        let _ = lm.score(&[TokenId(0)]);
        lm.clear();
        assert!(lm.is_empty());
        let _ = lm.score(&[TokenId(0)]);
        assert_eq!(lm.misses(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let lm = CachedLm::with_capacity(uniform(), 2);
        let _ = lm.score(&[TokenId(1)]);
        let _ = lm.score(&[TokenId(2)]);
        let _ = lm.score(&[TokenId(1)]); // 1 most recent
        let _ = lm.score(&[TokenId(3)]); // evicts 2
        assert_eq!(lm.evictions(), 1);
        assert_eq!(lm.len(), 2);
        let _ = lm.score(&[TokenId(1)]); // still cached
        assert_eq!(lm.hits(), 2);
        let _ = lm.score(&[TokenId(2)]); // was evicted
        assert_eq!(lm.misses(), 4);
    }

    #[test]
    fn batch_mixes_hits_and_misses_in_one_dispatch() {
        let meter = UsageMeter::new();
        let lm = CachedLm::new(MeteredLm::new(uniform(), meter.clone()));
        let a = [TokenId(1)];
        let b = [TokenId(2)];
        let c = [TokenId(3)];
        let _ = lm.score(&a);
        let batch: Vec<&[TokenId]> = vec![&a, &b, &c, &b];
        let out = lm.score_batch(&batch);
        assert_eq!(out[0], lm.score(&a));
        assert_eq!(out[1], out[3], "duplicate contexts share one query");
        let u = meter.snapshot();
        // 1 single miss up front + one batch of the 2 distinct misses.
        assert_eq!(u.model_queries, 3);
        assert_eq!(u.batch_dispatches, 1);
        assert_eq!(u.batched_queries, 2);
        assert_eq!(lm.hits(), 2); // the `a` hit in the batch + final check
        assert_eq!(lm.misses(), 4); // a, b, c, duplicate b
    }
}
