//! Score caching keyed on the full token context.
//!
//! The paper notes (§4 "Performance Considerations") that because functions
//! are pure and deterministic, "results can be cached based on the function
//! arguments". The same applies to the model itself when several beams or
//! samples run in lockstep over shared prefixes: identical contexts need
//! only one forward pass. [`CachedLm`] memoises `score()` per context.

use crate::{LanguageModel, Logits};
use lmql_tokenizer::{TokenId, Vocabulary};
use std::collections::HashMap;
use std::sync::Mutex;

/// A memoising wrapper: `score()` results are cached by context.
///
/// Wrap *outside* a [`MeteredLm`](crate::MeteredLm) to make cache hits free
/// (`CachedLm<MeteredLm<L>>`), or inside to still count them as queries.
///
/// # Example
///
/// ```
/// use lmql_lm::{CachedLm, LanguageModel, MeteredLm, UniformLm, UsageMeter};
/// use lmql_tokenizer::{Bpe, TokenId};
/// use std::sync::Arc;
///
/// let bpe = Arc::new(Bpe::char_level(""));
/// let meter = UsageMeter::new();
/// let lm = CachedLm::new(MeteredLm::new(UniformLm::new(bpe), meter.clone()));
/// let _ = lm.score(&[TokenId(1)]);
/// let _ = lm.score(&[TokenId(1)]); // cache hit: no extra model query
/// assert_eq!(meter.snapshot().model_queries, 1);
/// ```
#[derive(Debug)]
pub struct CachedLm<L> {
    inner: L,
    cache: Mutex<HashMap<Vec<TokenId>, Logits>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl<L: LanguageModel> CachedLm<L> {
    /// Wraps `inner` with an unbounded per-context cache.
    pub fn new(inner: L) -> Self {
        CachedLm {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Empties the cache.
    pub fn clear(&self) {
        self.cache.lock().expect("lm cache poisoned").clear();
    }

    /// Consumes the wrapper, returning the inner model.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: LanguageModel> LanguageModel for CachedLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        if let Some(hit) = self
            .cache
            .lock()
            .expect("lm cache poisoned")
            .get(context)
            .cloned()
        {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return hit;
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let logits = self.inner.score(context);
        self.cache
            .lock()
            .expect("lm cache poisoned")
            .insert(context.to_vec(), logits.clone());
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeteredLm, UniformLm, UsageMeter};
    use lmql_tokenizer::Bpe;
    use std::sync::Arc;

    #[test]
    fn hits_and_misses_counted() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = CachedLm::new(UniformLm::new(bpe));
        let _ = lm.score(&[TokenId(0)]);
        let _ = lm.score(&[TokenId(0)]);
        let _ = lm.score(&[TokenId(1)]);
        assert_eq!(lm.hits(), 1);
        assert_eq!(lm.misses(), 2);
    }

    #[test]
    fn cache_outside_meter_saves_queries() {
        let bpe = Arc::new(Bpe::char_level(""));
        let meter = UsageMeter::new();
        let lm = CachedLm::new(MeteredLm::new(UniformLm::new(bpe), meter.clone()));
        for _ in 0..5 {
            let _ = lm.score(&[TokenId(7)]);
        }
        assert_eq!(meter.snapshot().model_queries, 1);
    }

    #[test]
    fn clear_forgets() {
        let bpe = Arc::new(Bpe::char_level(""));
        let lm = CachedLm::new(UniformLm::new(bpe));
        let _ = lm.score(&[TokenId(0)]);
        lm.clear();
        let _ = lm.score(&[TokenId(0)]);
        assert_eq!(lm.misses(), 2);
    }
}
