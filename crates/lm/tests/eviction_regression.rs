//! Regression pins for the `CachedLm` LRU: a fixed scripted workload must
//! produce exactly the same hit/miss/eviction counts forever. Any change
//! to touch ordering, eviction order or capacity accounting shows up here
//! as a changed constant, not as a silent perf regression.

use lmql_lm::{CachedLm, LanguageModel, UniformLm};
use lmql_tokenizer::{Bpe, TokenId};
use std::sync::Arc;

fn cached(capacity: usize) -> CachedLm<UniformLm> {
    CachedLm::with_capacity(UniformLm::new(Arc::new(Bpe::char_level(""))), capacity)
}

/// The scripted workload: a deterministic stream of single-context scores
/// with re-use patterns that exercise LRU touch ordering.
fn scripted_contexts() -> Vec<Vec<TokenId>> {
    // Sequential fill, re-touch of the oldest, then a sliding window that
    // wraps: [0] [1] [2] [3] [0] [4] [5] [1] [2] [0] [6] [3]
    [0u32, 1, 2, 3, 0, 4, 5, 1, 2, 0, 6, 3]
        .iter()
        .map(|&t| vec![TokenId(t)])
        .collect()
}

#[test]
fn scripted_workload_counts_are_pinned_capacity_4() {
    let lm = cached(4);
    for ctx in scripted_contexts() {
        let _ = lm.score(&ctx);
    }
    // Walkthrough at capacity 4 (LRU order oldest→newest after each step):
    //  0 miss [0]            | 1 miss [0 1]        | 2 miss [0 1 2]
    //  3 miss [0 1 2 3]      | 0 hit  [1 2 3 0]    | 4 miss evict 1
    //  5 miss evict 2        | 1 miss evict 3      | 2 miss evict 0
    //  0 miss evict 4        | 6 miss evict 5      | 3 miss evict 1
    assert_eq!(lm.hits(), 1);
    assert_eq!(lm.misses(), 11);
    assert_eq!(lm.evictions(), 7);
    assert_eq!(lm.len(), 4);
}

#[test]
fn scripted_workload_counts_are_pinned_capacity_8() {
    let lm = cached(8);
    for ctx in scripted_contexts() {
        let _ = lm.score(&ctx);
    }
    // Capacity 8 never overflows the 7 distinct contexts: every repeat
    // hits ([0]×2 extra, [1], [2], [3]) and nothing is evicted.
    assert_eq!(lm.hits(), 5);
    assert_eq!(lm.misses(), 7);
    assert_eq!(lm.evictions(), 0);
    assert_eq!(lm.len(), 7);
}

#[test]
fn scripted_batch_workload_counts_are_pinned() {
    let lm = cached(3);
    let a = [TokenId(1)];
    let b = [TokenId(2)];
    let c = [TokenId(3)];
    let d = [TokenId(4)];
    // Batch 1: three distinct misses fill the cache exactly.
    let batch: Vec<&[TokenId]> = vec![&a, &b, &c];
    let _ = lm.score_batch(&batch);
    // Batch 2: a hits (now most recent), d misses and evicts b (oldest),
    // the duplicate d folds into the same query but counts as a miss.
    let batch: Vec<&[TokenId]> = vec![&a, &d, &d];
    let _ = lm.score_batch(&batch);
    // Batch 3: b was evicted (miss), c is still cached (hit); re-storing
    // b evicts a, by now the least recently touched entry.
    let batch: Vec<&[TokenId]> = vec![&b, &c];
    let _ = lm.score_batch(&batch);
    assert_eq!(lm.hits(), 2);
    assert_eq!(lm.misses(), 6);
    assert_eq!(lm.evictions(), 2);
    assert_eq!(lm.len(), 3);
}
