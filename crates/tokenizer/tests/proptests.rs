//! Property-based tests for the tokenizer crate.

// Property suites ride behind the default-off `slow-tests` feature:
// run them with `cargo test --features slow-tests`.
#![cfg(feature = "slow-tests")]

use lmql_tokenizer::{pretokenize, Bpe, BpeTrainer, TokenId, TokenSet, TokenTrie, Vocabulary};
use proptest::prelude::*;

fn ascii_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![proptest::char::range(' ', '~'), Just('\n'),],
        0..200,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Pretokenisation chunks always concatenate back to the input.
    #[test]
    fn pretokenize_is_partition(text in ascii_text()) {
        prop_assert_eq!(pretokenize(&text).concat(), text);
    }

    /// Char-level encoding round-trips any ASCII text.
    #[test]
    fn char_level_roundtrip(text in ascii_text()) {
        let bpe = Bpe::char_level("");
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    /// Trained BPE round-trips any ASCII text (alphabet covers ASCII).
    #[test]
    fn bpe_roundtrip(text in ascii_text()) {
        let bpe = BpeTrainer::new()
            .merges(40)
            .train("the quick brown fox jumps over the lazy dog. the end.");
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    /// Token-set algebra: De Morgan over random id sets.
    #[test]
    fn token_set_de_morgan(ids_a in proptest::collection::btree_set(0u32..256, 0..40),
                           ids_b in proptest::collection::btree_set(0u32..256, 0..40)) {
        let a = TokenSet::from_ids(256, ids_a.iter().map(|&i| TokenId(i)));
        let b = TokenSet::from_ids(256, ids_b.iter().map(|&i| TokenId(i)));
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersection(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    /// Trie queries agree with a naive scan over the vocabulary.
    #[test]
    fn trie_matches_naive(tokens in proptest::collection::btree_set("[a-c]{1,4}", 1..25),
                          query in "[a-c]{0,6}") {
        let vocab = Vocabulary::from_tokens(tokens.iter().cloned());
        let trie = TokenTrie::new(&vocab);

        let mut naive_prefixes: Vec<_> = vocab
            .regular_tokens()
            .filter(|(_, s)| !s.is_empty() && query.starts_with(s))
            .map(|(id, _)| id)
            .collect();
        naive_prefixes.sort();
        let mut got = trie.prefixes_of(&query);
        got.sort();
        prop_assert_eq!(got, naive_prefixes);

        let mut naive_ext: Vec<_> = vocab
            .regular_tokens()
            .filter(|(_, s)| s.starts_with(query.as_str()))
            .map(|(id, _)| id)
            .collect();
        naive_ext.sort();
        let mut got = trie.tokens_with_prefix(&query);
        got.sort();
        prop_assert_eq!(got, naive_ext);
    }

    /// `aligned_with` is exactly the union of prefixes and extensions.
    #[test]
    fn aligned_with_is_union(tokens in proptest::collection::btree_set("[a-c]{1,4}", 1..25),
                             query in "[a-c]{1,6}") {
        let vocab = Vocabulary::from_tokens(tokens.iter().cloned());
        let trie = TokenTrie::new(&vocab);
        let aligned = trie.aligned_with(&query, true);
        let expected = TokenSet::from_ids(
            vocab.len(),
            vocab
                .regular_tokens()
                .filter(|(_, s)| query.starts_with(s) || s.starts_with(query.as_str()))
                .map(|(id, _)| id),
        );
        prop_assert_eq!(aligned, expected);
    }
}
