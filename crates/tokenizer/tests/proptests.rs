//! Property-based tests for the tokenizer crate.

// Property suites ride behind the default-off `slow-tests` feature:
// run them with `cargo test --features slow-tests`.
#![cfg(feature = "slow-tests")]

use lmql_tokenizer::{pretokenize, Bpe, BpeTrainer, TokenId, TokenSet, TokenTrie, Vocabulary};
use proptest::prelude::*;

fn ascii_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![proptest::char::range(' ', '~'), Just('\n'),],
        0..200,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Pretokenisation chunks always concatenate back to the input.
    #[test]
    fn pretokenize_is_partition(text in ascii_text()) {
        prop_assert_eq!(pretokenize(&text).concat(), text);
    }

    /// Char-level encoding round-trips any ASCII text.
    #[test]
    fn char_level_roundtrip(text in ascii_text()) {
        let bpe = Bpe::char_level("");
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    /// Trained BPE round-trips any ASCII text (alphabet covers ASCII).
    #[test]
    fn bpe_roundtrip(text in ascii_text()) {
        let bpe = BpeTrainer::new()
            .merges(40)
            .train("the quick brown fox jumps over the lazy dog. the end.");
        prop_assert_eq!(bpe.decode(&bpe.encode(&text)), text);
    }

    /// Token-set algebra: De Morgan over random id sets.
    #[test]
    fn token_set_de_morgan(ids_a in proptest::collection::btree_set(0u32..256, 0..40),
                           ids_b in proptest::collection::btree_set(0u32..256, 0..40)) {
        let a = TokenSet::from_ids(256, ids_a.iter().map(|&i| TokenId(i)));
        let b = TokenSet::from_ids(256, ids_b.iter().map(|&i| TokenId(i)));
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersection(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    /// Tail-word exactness for universes not divisible by 64: `full(len)`
    /// has exactly `len` tokens, and complement/union/intersection never
    /// set a bit at position `>= len`.
    #[test]
    fn token_set_tail_word_is_exact(len in 1usize..300,
                                    ids_a in proptest::collection::btree_set(0u32..300, 0..40),
                                    ids_b in proptest::collection::btree_set(0u32..300, 0..40)) {
        let clip = |ids: &std::collections::BTreeSet<u32>| {
            TokenSet::from_ids(len, ids.iter().filter(|&&i| (i as usize) < len).map(|&i| TokenId(i)))
        };
        let a = clip(&ids_a);
        let b = clip(&ids_b);
        let full = TokenSet::full(len);
        prop_assert_eq!(full.count(), len);
        for s in [a.complement(), a.union(&b), a.intersection(&b), a.union(&full), b.complement()] {
            let extra = s.words().len() * 64 - len;
            if extra > 0 {
                prop_assert_eq!(s.words().last().unwrap() & !(!0u64 >> extra), 0,
                                "a bit >= len={} is set", len);
            }
            prop_assert!(s.iter().all(|t| t.index() < len));
            prop_assert!(s.count() <= len);
        }
        prop_assert_eq!(a.complement().count(), len - a.count());
        // In-place ops agree with their allocating counterparts.
        let mut c = a.clone();
        c.complement_in_place();
        prop_assert_eq!(&c, &a.complement());
        c.fill_from(&a);
        c.subtract_with(&b);
        prop_assert_eq!(c, a.intersection(&b.complement()));
    }

    /// Trie queries agree with a naive scan over the vocabulary.
    #[test]
    fn trie_matches_naive(tokens in proptest::collection::btree_set("[a-c]{1,4}", 1..25),
                          query in "[a-c]{0,6}") {
        let vocab = Vocabulary::from_tokens(tokens.iter().cloned());
        let trie = TokenTrie::new(&vocab);

        let mut naive_prefixes: Vec<_> = vocab
            .regular_tokens()
            .filter(|(_, s)| !s.is_empty() && query.starts_with(s))
            .map(|(id, _)| id)
            .collect();
        naive_prefixes.sort();
        let mut got = trie.prefixes_of(&query);
        got.sort();
        prop_assert_eq!(got, naive_prefixes);

        let mut naive_ext: Vec<_> = vocab
            .regular_tokens()
            .filter(|(_, s)| s.starts_with(query.as_str()))
            .map(|(id, _)| id)
            .collect();
        naive_ext.sort();
        let mut got = trie.tokens_with_prefix(&query);
        got.sort();
        prop_assert_eq!(got, naive_ext);
    }

    /// `aligned_with` is exactly the union of prefixes and extensions.
    #[test]
    fn aligned_with_is_union(tokens in proptest::collection::btree_set("[a-c]{1,4}", 1..25),
                             query in "[a-c]{1,6}") {
        let vocab = Vocabulary::from_tokens(tokens.iter().cloned());
        let trie = TokenTrie::new(&vocab);
        let aligned = trie.aligned_with(&query, true);
        let expected = TokenSet::from_ids(
            vocab.len(),
            vocab
                .regular_tokens()
                .filter(|(_, s)| query.starts_with(s) || s.starts_with(query.as_str()))
                .map(|(id, _)| id),
        );
        prop_assert_eq!(aligned, expected);
    }
}
