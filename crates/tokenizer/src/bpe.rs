//! Byte-pair-encoding training, encoding and decoding.
//!
//! The trainer learns a merge table from a corpus; the encoder applies the
//! merges greedily by rank (GPT-2 style). Merges never cross
//! [`pretokenize`](crate::pretokenize) chunk boundaries, so decoded text is
//! byte-identical to the input for covered characters.

use crate::{pretokenize, TokenId, Vocabulary};
use std::collections::HashMap;
use std::sync::Mutex;

/// Character every out-of-alphabet character is replaced with on encode.
const UNKNOWN_CHAR: char = '?';

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(hash: u64, id: TokenId) -> u64 {
    id.0.to_le_bytes()
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// FNV-1a hash over the first `max_tokens` ids of an already-tokenized
/// context — the same key [`Bpe::prefix_fingerprint`] derives from text,
/// so text-routed queries and token-routed scoring requests with the
/// same prompt prefix land on the same shard. Zero allocation.
pub fn fingerprint_tokens(ids: &[TokenId], max_tokens: usize) -> u64 {
    ids.iter()
        .take(max_tokens)
        .fold(FNV_OFFSET, |h, &id| fnv_fold(h, id))
}

/// Configures and runs BPE training.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::BpeTrainer;
///
/// let bpe = BpeTrainer::new().merges(50).train("low lower lowest low low");
/// let ids = bpe.encode("lower");
/// assert_eq!(bpe.decode(&ids), "lower");
/// ```
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    merges: usize,
    min_pair_count: u64,
}

impl Default for BpeTrainer {
    fn default() -> Self {
        BpeTrainer {
            merges: 1000,
            min_pair_count: 2,
        }
    }
}

impl BpeTrainer {
    /// A trainer with default settings (1000 merges, pairs must occur twice).
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum number of merge rules to learn.
    pub fn merges(mut self, merges: usize) -> Self {
        self.merges = merges;
        self
    }

    /// Minimum weighted occurrence count for a pair to be merged.
    pub fn min_pair_count(mut self, n: u64) -> Self {
        self.min_pair_count = n.max(1);
        self
    }

    /// Trains a [`Bpe`] tokenizer on `corpus`.
    ///
    /// The base alphabet is printable ASCII plus `\n` plus every character
    /// occurring in the corpus, so any corpus text round-trips exactly.
    pub fn train(&self, corpus: &str) -> Bpe {
        // Word (chunk) frequency table.
        let mut word_counts: HashMap<&str, u64> = HashMap::new();
        for chunk in pretokenize(corpus) {
            *word_counts.entry(chunk).or_insert(0) += 1;
        }

        // Base alphabet.
        let mut alphabet: Vec<char> = (' '..='~').collect();
        alphabet.push('\n');
        for c in corpus.chars() {
            if !alphabet.contains(&c) {
                alphabet.push(c);
            }
        }

        // Each distinct word as a symbol sequence, plus its count.
        let mut words: Vec<(Vec<String>, u64)> = word_counts
            .into_iter()
            .map(|(w, c)| (w.chars().map(String::from).collect(), c))
            .collect();
        // Deterministic order regardless of hash-map iteration.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut merges: Vec<(String, String)> = Vec::new();
        for _ in 0..self.merges {
            // Count adjacent symbol pairs, weighted by word frequency.
            let mut pair_counts: HashMap<(&str, &str), u64> = HashMap::new();
            for (syms, count) in &words {
                for pair in syms.windows(2) {
                    *pair_counts
                        .entry((pair[0].as_str(), pair[1].as_str()))
                        .or_insert(0) += count;
                }
            }
            // Best pair: max count, ties broken lexicographically for
            // deterministic training.
            let best = pair_counts
                .into_iter()
                .filter(|&(_, c)| c >= self.min_pair_count)
                .map(|((a, b), c)| (c, a.to_owned(), b.to_owned()))
                .max_by(|x, y| {
                    x.0.cmp(&y.0).then_with(|| {
                        (y.1.as_str(), y.2.as_str()).cmp(&(x.1.as_str(), x.2.as_str()))
                    })
                });
            let Some((_, a, b)) = best else { break };

            // Apply the merge to every word.
            for (syms, _) in &mut words {
                apply_merge(syms, &a, &b);
            }
            merges.push((a, b));
        }

        Bpe::from_parts(alphabet, merges)
    }
}

fn apply_merge(syms: &mut Vec<String>, a: &str, b: &str) {
    let mut i = 0;
    while i + 1 < syms.len() {
        if syms[i] == a && syms[i + 1] == b {
            let merged = format!("{a}{b}");
            syms[i] = merged;
            syms.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

/// A trained byte-pair-encoding tokenizer.
///
/// Holds the [`Vocabulary`] (base characters + merge products + EOS) and the
/// merge table. Encoding is cached per pretokenisation chunk.
///
/// `Bpe` is `Send + Sync`; share it between threads via `Arc`.
#[derive(Debug)]
pub struct Bpe {
    vocab: Vocabulary,
    /// Merge priority: lower rank merges first.
    merge_rank: HashMap<(String, String), usize>,
    /// Per-chunk encode cache (chunk → token ids).
    cache: Mutex<HashMap<String, Vec<TokenId>>>,
}

impl Bpe {
    fn from_parts(alphabet: Vec<char>, merges: Vec<(String, String)>) -> Self {
        let mut token_strs: Vec<String> = alphabet.iter().map(|&c| String::from(c)).collect();
        let mut seen: HashMap<String, ()> = token_strs.iter().map(|s| (s.clone(), ())).collect();
        for (a, b) in &merges {
            let merged = format!("{a}{b}");
            if seen.insert(merged.clone(), ()).is_none() {
                token_strs.push(merged);
            }
        }
        let vocab = Vocabulary::from_tokens(token_strs);
        let merge_rank = merges
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        Bpe {
            vocab,
            merge_rank,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Serialises the tokenizer (alphabet + ordered merge table) to a
    /// line-oriented text format, so a trained tokenizer can be persisted
    /// and reloaded with [`Bpe::from_text`] without retraining.
    ///
    /// Characters are written as hex code points (`.`-joined within a
    /// merge piece), keeping the format safe for any alphabet.
    pub fn to_text(&self) -> String {
        let mut out = String::from("lmql-bpe-v1\n");
        // Alphabet in vocabulary-id order, so reloaded token ids match.
        let alphabet: Vec<char> = self
            .vocab
            .regular_tokens()
            .filter_map(|(_, s)| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .collect();
        out.push_str("alphabet");
        for c in alphabet {
            out.push_str(&format!(" {:x}", c as u32));
        }
        out.push('\n');

        let mut merges: Vec<(&(String, String), &usize)> = self.merge_rank.iter().collect();
        merges.sort_by_key(|(_, &rank)| rank);
        let piece = |s: &str| -> String {
            s.chars()
                .map(|c| format!("{:x}", c as u32))
                .collect::<Vec<_>>()
                .join(".")
        };
        for ((a, b), _) in merges {
            out.push_str(&format!("merge {} {}\n", piece(a), piece(b)));
        }
        out
    }

    /// Reconstructs a tokenizer from [`Bpe::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for unrecognised headers or
    /// malformed lines.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("lmql-bpe-v1") {
            return Err("missing lmql-bpe-v1 header".to_owned());
        }
        let parse_char = |hex: &str| -> Result<char, String> {
            u32::from_str_radix(hex, 16)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| format!("invalid code point {hex:?}"))
        };
        let parse_piece =
            |p: &str| -> Result<String, String> { p.split('.').map(parse_char).collect() };

        let alphabet_line = lines.next().ok_or("missing alphabet line")?;
        let mut parts = alphabet_line.split_whitespace();
        if parts.next() != Some("alphabet") {
            return Err("expected `alphabet` line".to_owned());
        }
        let alphabet: Vec<char> = parts.map(parse_char).collect::<Result<_, _>>()?;

        let mut merges = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("merge") {
                return Err(format!("expected `merge` line, got {line:?}"));
            }
            let a = parse_piece(parts.next().ok_or("merge missing first piece")?)?;
            let b = parse_piece(parts.next().ok_or("merge missing second piece")?)?;
            merges.push((a, b));
        }
        Ok(Bpe::from_parts(alphabet, merges))
    }

    /// Builds a character-level tokenizer (no merges) over the given
    /// alphabet plus printable ASCII. Useful for tests that need exact
    /// control over the vocabulary.
    pub fn char_level(extra: &str) -> Self {
        let mut alphabet: Vec<char> = (' '..='~').collect();
        alphabet.push('\n');
        for c in extra.chars() {
            if !alphabet.contains(&c) {
                alphabet.push(c);
            }
        }
        Bpe::from_parts(alphabet, Vec::new())
    }

    /// The tokenizer's vocabulary (including EOS).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Encodes text into token ids. Characters outside the alphabet are
    /// replaced by `'?'`.
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        for chunk in pretokenize(text) {
            if let Some(ids) = self.cache.lock().expect("bpe cache poisoned").get(chunk) {
                out.extend_from_slice(ids);
                continue;
            }
            let ids = self.encode_chunk(chunk);
            self.cache
                .lock()
                .expect("bpe cache poisoned")
                .insert(chunk.to_owned(), ids.clone());
            out.extend(ids);
        }
        out
    }

    fn encode_chunk(&self, chunk: &str) -> Vec<TokenId> {
        let mut syms: Vec<String> = chunk
            .chars()
            .map(|c| {
                if self.vocab.id_of(&String::from(c)).is_some() {
                    String::from(c)
                } else {
                    String::from(UNKNOWN_CHAR)
                }
            })
            .collect();
        loop {
            // Find the adjacent pair with the lowest merge rank.
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for i in 0..syms.len().saturating_sub(1) {
                if let Some(&rank) = self.merge_rank.get(&(syms[i].clone(), syms[i + 1].clone())) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((rank, _)) = best else { break };
            // Merge all occurrences of that exact pair.
            let (a, b) = self
                .merge_rank
                .iter()
                .find(|&(_, &r)| r == rank)
                .map(|(p, _)| p.clone())
                .expect("rank came from the table");
            apply_merge(&mut syms, &a, &b);
        }
        syms.iter()
            .map(|s| {
                self.vocab
                    .id_of(s)
                    .expect("every symbol is a base char or a merge product")
            })
            .collect()
    }

    /// FNV-1a hash over the first `max_tokens` token ids of `text`'s
    /// encoding — the routing key for prefix-affinity sharding.
    ///
    /// Equivalent to hashing `encode(text)` truncated to `max_tokens`,
    /// but derived without materialising a token `Vec`: chunks stream
    /// through [`chunks`](crate::chunks) (no per-call chunk list) and
    /// their ids are folded straight out of the shared encode cache. On
    /// the steady-state path — every chunk already cached, which is
    /// exactly the shared-prefix traffic affinity routing exists for —
    /// this performs **zero allocations**, pinned by the workspace
    /// `alloc_budget` tests. Only a chunk's first-ever sighting pays the
    /// encode (and caches it for `encode` to reuse, and vice versa).
    pub fn prefix_fingerprint(&self, text: &str, max_tokens: usize) -> u64 {
        let mut hash = FNV_OFFSET;
        if max_tokens == 0 {
            return hash;
        }
        let mut taken = 0usize;
        for chunk in crate::pretokenize::chunks(text) {
            let cache = self.cache.lock().expect("bpe cache poisoned");
            if let Some(ids) = cache.get(chunk) {
                for &id in ids {
                    hash = fnv_fold(hash, id);
                    taken += 1;
                    if taken == max_tokens {
                        return hash;
                    }
                }
            } else {
                drop(cache);
                let ids = self.encode_chunk(chunk);
                for &id in &ids {
                    hash = fnv_fold(hash, id);
                    taken += 1;
                    if taken == max_tokens {
                        break;
                    }
                }
                self.cache
                    .lock()
                    .expect("bpe cache poisoned")
                    .insert(chunk.to_owned(), ids);
                if taken == max_tokens {
                    return hash;
                }
            }
        }
        hash
    }

    /// Decodes token ids back to text (special tokens are skipped).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range for this tokenizer's vocabulary.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        self.vocab.decode(ids)
    }

    /// Number of tokens `text` encodes to — the unit in which API-gated
    /// models bill ("Billable Tokens" in the paper's §6 metrics).
    pub fn token_count(&self, text: &str) -> usize {
        self.encode(text).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "the cat sat on the mat. the cat sat on the hat. \
                          the bat sat on the cat. a cat and a bat and a hat.";

    #[test]
    fn roundtrip_on_corpus_text() {
        let bpe = BpeTrainer::new().merges(60).train(CORPUS);
        for text in [CORPUS, "the cat", "a hat.", " on the mat"] {
            assert_eq!(bpe.decode(&bpe.encode(text)), text);
        }
    }

    #[test]
    fn merges_compress() {
        let bpe = BpeTrainer::new().merges(60).train(CORPUS);
        let char_count = "the cat sat on the mat".chars().count();
        let tok_count = bpe.encode("the cat sat on the mat").len();
        assert!(
            tok_count < char_count,
            "expected compression: {tok_count} tokens vs {char_count} chars"
        );
    }

    #[test]
    fn common_words_become_single_tokens() {
        let bpe = BpeTrainer::new()
            .merges(200)
            .min_pair_count(2)
            .train(CORPUS);
        // "the" (with leading space) occurs many times; it should merge
        // into few tokens, usually one.
        let ids = bpe.encode(" the");
        assert!(ids.len() <= 2, "' the' encoded as {} tokens", ids.len());
    }

    #[test]
    fn unknown_chars_replaced() {
        let bpe = BpeTrainer::new().merges(10).train("plain ascii only");
        let decoded = bpe.decode(&bpe.encode("héllo"));
        assert_eq!(decoded, "h?llo");
    }

    #[test]
    fn char_level_has_no_merges() {
        let bpe = Bpe::char_level("");
        let ids = bpe.encode("abc");
        assert_eq!(ids.len(), 3);
        assert_eq!(bpe.decode(&ids), "abc");
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTrainer::new().merges(50).train(CORPUS);
        let b = BpeTrainer::new().merges(50).train(CORPUS);
        assert_eq!(a.encode(CORPUS), b.encode(CORPUS));
        assert_eq!(a.vocab().len(), b.vocab().len());
    }

    #[test]
    fn token_count_matches_encode_len() {
        let bpe = BpeTrainer::new().merges(30).train(CORPUS);
        assert_eq!(bpe.token_count("the cat"), bpe.encode("the cat").len());
    }

    /// The fingerprint is a pure function of the first `max_tokens` ids
    /// of the encoding: texts sharing that token prefix collide (that is
    /// the affinity-routing contract), texts differing within it do not.
    #[test]
    fn prefix_fingerprint_tracks_token_prefix() {
        let bpe = BpeTrainer::new().merges(60).train(CORPUS);
        let a = "the cat sat on the mat. first tail";
        let b = "the cat sat on the mat. second ending";
        let shared = bpe
            .encode(a)
            .iter()
            .zip(bpe.encode(b).iter())
            .take_while(|(x, y)| x == y)
            .count();
        assert!(shared >= 4, "test premise: prompts share a token prefix");
        assert_eq!(
            bpe.prefix_fingerprint(a, shared),
            bpe.prefix_fingerprint(b, shared),
            "same first {shared} tokens, same key"
        );
        assert_ne!(
            bpe.prefix_fingerprint("the cat sat", 8),
            bpe.prefix_fingerprint("a bat and", 8),
            "different prefixes get different keys"
        );
        // Stable across repeated calls (cold cache vs. warm cache).
        assert_eq!(bpe.prefix_fingerprint(a, 6), bpe.prefix_fingerprint(a, 6));
        // A text shorter than the budget hashes all of its tokens.
        let full = bpe.encode("the cat").len();
        assert_eq!(
            bpe.prefix_fingerprint("the cat", full),
            bpe.prefix_fingerprint("the cat", full + 100)
        );
        // Text-derived and token-derived keys agree, so scoring requests
        // carrying raw token contexts shard with their source queries.
        assert_eq!(
            bpe.prefix_fingerprint(a, 7),
            fingerprint_tokens(&bpe.encode(a), 7)
        );
    }

    #[test]
    fn chunk_iterator_matches_pretokenize() {
        for text in [
            "She sells, yes\n twice",
            "  double  spaces ",
            "line\nbreaks\n\nhere",
            "punct, and. more! <<3*4=12>>",
            "",
            " ",
            "\n",
            "a",
            "trailing space ",
        ] {
            let streamed: Vec<&str> = crate::chunks(text).collect();
            assert_eq!(streamed, crate::pretokenize(text), "case {text:?}");
        }
    }

    #[test]
    fn text_roundtrip_preserves_encoding() {
        let bpe = BpeTrainer::new().merges(80).train(CORPUS);
        let text = bpe.to_text();
        let reloaded = Bpe::from_text(&text).unwrap();
        for sample in [
            CORPUS,
            "the cat sat",
            "a hat. the bat",
            "unseen words zebra",
        ] {
            assert_eq!(bpe.encode(sample), reloaded.encode(sample), "{sample:?}");
        }
        assert_eq!(bpe.vocab().len(), reloaded.vocab().len());
        // The format is stable under a second roundtrip.
        assert_eq!(text, reloaded.to_text());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Bpe::from_text("not a tokenizer").is_err());
        assert!(Bpe::from_text("lmql-bpe-v1\nwrong 61\n").is_err());
        assert!(Bpe::from_text("lmql-bpe-v1\nalphabet 61\nmerge zz 61\n").is_err());
        assert!(Bpe::from_text("lmql-bpe-v1\nalphabet 61\nmerge 61\n").is_err());
    }

    #[test]
    fn multiple_factorizations_exist() {
        // After enough merges the vocabulary contains both "th" and "the"
        // style tokens, i.e. several factorizations of the same string —
        // the property §5.2's subtokenization handling relies on.
        let bpe = BpeTrainer::new().merges(200).train(CORPUS);
        let v = bpe.vocab();
        let multi: usize = v
            .regular_tokens()
            .filter(|(_, s)| s.chars().count() > 1)
            .count();
        assert!(multi > 5, "expected several multi-char tokens, got {multi}");
    }
}
