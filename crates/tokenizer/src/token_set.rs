//! A bitset over a vocabulary, used to represent decoding masks.

use crate::TokenId;
use std::fmt;

/// A set of token ids, stored as a bitset sized to one vocabulary.
///
/// This is the representation of the decoding mask `m ∈ {0,1}^|V|` from the
/// paper's Alg. 2: tokens in the set are *admissible* for the next decoding
/// step, tokens outside it are masked out.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::{TokenSet, TokenId};
///
/// let mut m = TokenSet::empty(8);
/// m.insert(TokenId(1));
/// m.insert(TokenId(3));
/// assert!(m.contains(TokenId(3)));
/// assert_eq!(m.count(), 2);
///
/// let all = TokenSet::full(8);
/// let inter = m.intersection(&all);
/// assert_eq!(inter, m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TokenSet {
    bits: Vec<u64>,
    len: usize,
}

impl TokenSet {
    /// An empty set over a vocabulary of `len` tokens.
    pub fn empty(len: usize) -> Self {
        TokenSet {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a vocabulary of `len` tokens.
    pub fn full(len: usize) -> Self {
        let mut s = TokenSet {
            bits: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    /// Builds a set from an iterator of ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= len`.
    pub fn from_ids<I: IntoIterator<Item = TokenId>>(len: usize, ids: I) -> Self {
        let mut s = TokenSet::empty(len);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of tokens in the underlying vocabulary (set capacity).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Clears bits beyond `len` so equality and counting stay exact.
    fn trim(&mut self) {
        let extra = self.bits.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// Removes every token, keeping the allocation (the zero-alloc
    /// counterpart of [`TokenSet::empty`]).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Adds every token, keeping the allocation (the zero-alloc
    /// counterpart of [`TokenSet::full`]).
    pub fn fill(&mut self) {
        self.bits.fill(!0u64);
        self.trim();
    }

    /// Overwrites this set with `other`'s contents, keeping the
    /// allocation (the zero-alloc counterpart of `clone_from`-into an
    /// existing buffer).
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn fill_from(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        self.bits.copy_from_slice(&other.bits);
    }

    /// Complements the set in place within the vocabulary universe (the
    /// zero-alloc counterpart of [`TokenSet::complement`]).
    pub fn complement_in_place(&mut self) {
        for w in &mut self.bits {
            *w = !*w;
        }
        self.trim();
    }

    /// In-place set difference: removes every token of `other` from
    /// `self` (`a &= !b`), without the intermediate complement
    /// allocation of `intersect_with(&other.complement())`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn subtract_with(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// The backing bit words, 64 tokens per word, least-significant bit
    /// first. Bits at positions `>= universe_len()` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Mutable access to the backing bit words, for chunked writers that
    /// fill disjoint word ranges (e.g. parallel vocabulary scans).
    ///
    /// Callers must keep bits at positions `>= universe_len()` zero;
    /// setting a tail bit breaks `count`/equality invariants.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Adds a token to the set.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn insert(&mut self, id: TokenId) {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] |= 1 << (id.index() % 64);
    }

    /// Removes a token from the set.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn remove(&mut self, id: TokenId) {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] &= !(1 << (id.index() % 64));
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn contains(&self, id: TokenId) -> bool {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] & (1 << (id.index() % 64)) != 0
    }

    /// Number of tokens in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no token is admissible (the "all-masked" stop condition of
    /// Alg. 2, line 4).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn intersection(&self, other: &TokenSet) -> TokenSet {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        TokenSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn union(&self, other: &TokenSet) -> TokenSet {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        TokenSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Complement within the vocabulary universe.
    pub fn complement(&self) -> TokenSet {
        let mut s = TokenSet {
            bits: self.bits.iter().map(|w| !w).collect(),
            len: self.len,
        };
        s.trim();
        s
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn intersect_with(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn union_with(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterates over the ids in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            cur: if self.bits.is_empty() {
                0
            } else {
                self.bits[0]
            },
        }
    }
}

impl fmt::Debug for TokenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenSet({}/{} tokens)", self.count(), self.len)
    }
}

impl<'a> IntoIterator for &'a TokenSet {
    type Item = TokenId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the ids contained in a [`TokenSet`].
pub struct Iter<'a> {
    set: &'a TokenSet,
    word: usize,
    cur: u64,
}

impl Iterator for Iter<'_> {
    type Item = TokenId;

    fn next(&mut self) -> Option<TokenId> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(TokenId((self.word * 64 + bit) as u32));
            }
            self.word += 1;
            if self.word >= self.set.bits.len() {
                return None;
            }
            self.cur = self.set.bits[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        let full = TokenSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(!full.is_empty());
        let empty = TokenSet::empty(70);
        assert_eq!(empty.count(), 0);
        assert!(empty.is_empty());
        assert_eq!(full.complement(), empty);
        assert_eq!(empty.complement(), full);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TokenSet::empty(130);
        s.insert(TokenId(0));
        s.insert(TokenId(64));
        s.insert(TokenId(129));
        assert!(s.contains(TokenId(64)));
        s.remove(TokenId(64));
        assert!(!s.contains(TokenId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = TokenSet::from_ids(10, [TokenId(1), TokenId(2), TokenId(3)]);
        let b = TokenSet::from_ids(10, [TokenId(3), TokenId(4)]);
        assert_eq!(a.intersection(&b), TokenSet::from_ids(10, [TokenId(3)]));
        assert_eq!(
            a.union(&b),
            TokenSet::from_ids(10, [TokenId(1), TokenId(2), TokenId(3), TokenId(4)])
        );
    }

    #[test]
    fn iter_in_order() {
        let ids = [TokenId(5), TokenId(63), TokenId(64), TokenId(99)];
        let s = TokenSet::from_ids(100, ids);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, ids);
    }

    /// Lengths that exercise the tail word: exact multiples of 64,
    /// one-off boundaries, and small sets.
    const TAIL_LENGTHS: &[usize] = &[1, 3, 63, 64, 65, 127, 128, 129, 130, 191];

    fn no_tail_bits(s: &TokenSet) -> bool {
        let extra = s.words().len() * 64 - s.universe_len();
        extra == 0 || s.words().last().unwrap() & !(!0u64 >> extra) == 0
    }

    #[test]
    fn full_tail_word_is_exact() {
        for &len in TAIL_LENGTHS {
            let full = TokenSet::full(len);
            assert_eq!(full.count(), len, "full({len}) has exactly len tokens");
            assert!(no_tail_bits(&full), "full({len}) keeps tail bits clear");
            assert_eq!(full.iter().count(), len);
            assert!(full.iter().all(|t| t.index() < len));
        }
    }

    #[test]
    fn algebra_never_sets_tail_bits() {
        for &len in TAIL_LENGTHS {
            let every_third =
                TokenSet::from_ids(len, (0..len).step_by(3).map(|i| TokenId(i as u32)));
            let full = TokenSet::full(len);
            for s in [
                every_third.complement(),
                every_third.union(&full),
                every_third.intersection(&full),
                full.complement().complement(),
            ] {
                assert!(no_tail_bits(&s), "len {len}: tail bits leaked");
                assert!(s.count() <= len);
                assert!(s.iter().all(|t| t.index() < len));
            }
            assert_eq!(every_third.complement().count(), len - every_third.count());
        }
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        for &len in TAIL_LENGTHS {
            let a = TokenSet::from_ids(len, (0..len).step_by(2).map(|i| TokenId(i as u32)));
            let b = TokenSet::from_ids(len, (0..len).step_by(3).map(|i| TokenId(i as u32)));

            let mut c = TokenSet::empty(len);
            c.fill();
            assert_eq!(c, TokenSet::full(len));
            c.clear();
            assert_eq!(c, TokenSet::empty(len));
            c.fill_from(&a);
            assert_eq!(c, a);
            c.complement_in_place();
            assert_eq!(c, a.complement());
            assert!(no_tail_bits(&c));
            c.fill_from(&a);
            c.subtract_with(&b);
            assert_eq!(c, a.intersection(&b.complement()));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = TokenSet::empty(4);
        s.insert(TokenId(4));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = TokenSet::empty(4);
        let b = TokenSet::empty(5);
        let _ = a.union(&b);
    }
}
