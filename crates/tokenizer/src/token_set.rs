//! A bitset over a vocabulary, used to represent decoding masks.

use crate::TokenId;
use std::fmt;

/// A set of token ids, stored as a bitset sized to one vocabulary.
///
/// This is the representation of the decoding mask `m ∈ {0,1}^|V|` from the
/// paper's Alg. 2: tokens in the set are *admissible* for the next decoding
/// step, tokens outside it are masked out.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::{TokenSet, TokenId};
///
/// let mut m = TokenSet::empty(8);
/// m.insert(TokenId(1));
/// m.insert(TokenId(3));
/// assert!(m.contains(TokenId(3)));
/// assert_eq!(m.count(), 2);
///
/// let all = TokenSet::full(8);
/// let inter = m.intersection(&all);
/// assert_eq!(inter, m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TokenSet {
    bits: Vec<u64>,
    len: usize,
}

impl TokenSet {
    /// An empty set over a vocabulary of `len` tokens.
    pub fn empty(len: usize) -> Self {
        TokenSet {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a vocabulary of `len` tokens.
    pub fn full(len: usize) -> Self {
        let mut s = TokenSet {
            bits: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    /// Builds a set from an iterator of ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= len`.
    pub fn from_ids<I: IntoIterator<Item = TokenId>>(len: usize, ids: I) -> Self {
        let mut s = TokenSet::empty(len);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of tokens in the underlying vocabulary (set capacity).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Clears bits beyond `len` so equality and counting stay exact.
    fn trim(&mut self) {
        let extra = self.bits.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// Adds a token to the set.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn insert(&mut self, id: TokenId) {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] |= 1 << (id.index() % 64);
    }

    /// Removes a token from the set.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn remove(&mut self, id: TokenId) {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] &= !(1 << (id.index() % 64));
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn contains(&self, id: TokenId) -> bool {
        assert!(id.index() < self.len, "token id {id} out of range");
        self.bits[id.index() / 64] & (1 << (id.index() % 64)) != 0
    }

    /// Number of tokens in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no token is admissible (the "all-masked" stop condition of
    /// Alg. 2, line 4).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn intersection(&self, other: &TokenSet) -> TokenSet {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        TokenSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn union(&self, other: &TokenSet) -> TokenSet {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        TokenSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Complement within the vocabulary universe.
    pub fn complement(&self) -> TokenSet {
        let mut s = TokenSet {
            bits: self.bits.iter().map(|w| !w).collect(),
            len: self.len,
        };
        s.trim();
        s
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn intersect_with(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn union_with(&mut self, other: &TokenSet) {
        assert_eq!(self.len, other.len, "token set universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterates over the ids in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            cur: if self.bits.is_empty() {
                0
            } else {
                self.bits[0]
            },
        }
    }
}

impl fmt::Debug for TokenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenSet({}/{} tokens)", self.count(), self.len)
    }
}

impl<'a> IntoIterator for &'a TokenSet {
    type Item = TokenId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the ids contained in a [`TokenSet`].
pub struct Iter<'a> {
    set: &'a TokenSet,
    word: usize,
    cur: u64,
}

impl Iterator for Iter<'_> {
    type Item = TokenId;

    fn next(&mut self) -> Option<TokenId> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(TokenId((self.word * 64 + bit) as u32));
            }
            self.word += 1;
            if self.word >= self.set.bits.len() {
                return None;
            }
            self.cur = self.set.bits[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        let full = TokenSet::full(70);
        assert_eq!(full.count(), 70);
        assert!(!full.is_empty());
        let empty = TokenSet::empty(70);
        assert_eq!(empty.count(), 0);
        assert!(empty.is_empty());
        assert_eq!(full.complement(), empty);
        assert_eq!(empty.complement(), full);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TokenSet::empty(130);
        s.insert(TokenId(0));
        s.insert(TokenId(64));
        s.insert(TokenId(129));
        assert!(s.contains(TokenId(64)));
        s.remove(TokenId(64));
        assert!(!s.contains(TokenId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a = TokenSet::from_ids(10, [TokenId(1), TokenId(2), TokenId(3)]);
        let b = TokenSet::from_ids(10, [TokenId(3), TokenId(4)]);
        assert_eq!(a.intersection(&b), TokenSet::from_ids(10, [TokenId(3)]));
        assert_eq!(
            a.union(&b),
            TokenSet::from_ids(10, [TokenId(1), TokenId(2), TokenId(3), TokenId(4)])
        );
    }

    #[test]
    fn iter_in_order() {
        let ids = [TokenId(5), TokenId(63), TokenId(64), TokenId(99)];
        let s = TokenSet::from_ids(100, ids);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, ids);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = TokenSet::empty(4);
        s.insert(TokenId(4));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = TokenSet::empty(4);
        let b = TokenSet::empty(5);
        let _ = a.union(&b);
    }
}
