//! The token vocabulary: an id ↔ string table with special tokens.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a token in a [`Vocabulary`].
///
/// A plain index newtype: `TokenId(i)` is the `i`-th token of the vocabulary
/// it was issued by. Ids from different vocabularies must not be mixed; all
/// APIs that could detect a mix-up panic on out-of-range ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A token vocabulary: a bijection between [`TokenId`]s and token strings,
/// plus a distinguished end-of-sequence token.
///
/// Token strings of *regular* tokens are the literal text the token expands
/// to (they may start with a space, GPT-2 style). *Special* tokens (only EOS
/// in this reproduction) carry a sentinel string and never appear inside
/// decoded text.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::Vocabulary;
///
/// let vocab = Vocabulary::from_tokens(["a", "b", " ab"]);
/// assert_eq!(vocab.len(), 4); // 3 regular tokens + EOS
/// let id = vocab.id_of(" ab").unwrap();
/// assert_eq!(vocab.token_str(id), " ab");
/// assert!(vocab.is_special(vocab.eos()));
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    /// Token strings, indexed by id. `strs[eos]` is the EOS sentinel.
    strs: Vec<String>,
    /// Reverse lookup for regular tokens.
    by_str: HashMap<String, TokenId>,
    /// Id of the end-of-sequence token.
    eos: TokenId,
}

/// Sentinel string for the end-of-sequence token.
pub(crate) const EOS_STR: &str = "<|eos|>";

impl Vocabulary {
    /// Builds a vocabulary from regular token strings; an EOS token is
    /// appended automatically.
    ///
    /// # Panics
    ///
    /// Panics if a token string is duplicated or equals the EOS sentinel.
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut strs: Vec<String> = Vec::new();
        let mut by_str = HashMap::new();
        for t in tokens {
            let t = t.into();
            assert_ne!(t, EOS_STR, "token string collides with the EOS sentinel");
            let id = TokenId(strs.len() as u32);
            let prev = by_str.insert(t.clone(), id);
            assert!(prev.is_none(), "duplicate token string {t:?}");
            strs.push(t);
        }
        let eos = TokenId(strs.len() as u32);
        strs.push(EOS_STR.to_owned());
        Vocabulary { strs, by_str, eos }
    }

    /// Total number of tokens, including EOS.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// `true` if the vocabulary holds no regular tokens (EOS always exists).
    pub fn is_empty(&self) -> bool {
        self.strs.len() <= 1
    }

    /// The end-of-sequence token id.
    pub fn eos(&self) -> TokenId {
        self.eos
    }

    /// `true` for special (non-text) tokens; currently only EOS.
    pub fn is_special(&self, id: TokenId) -> bool {
        id == self.eos
    }

    /// The literal text of a token. For EOS this is a sentinel that never
    /// occurs in decoded text.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this vocabulary.
    pub fn token_str(&self, id: TokenId) -> &str {
        &self.strs[id.index()]
    }

    /// Looks up the id of a regular token by its exact string.
    pub fn id_of(&self, s: &str) -> Option<TokenId> {
        self.by_str.get(s).copied()
    }

    /// Iterates over all ids, including EOS.
    pub fn ids(&self) -> impl Iterator<Item = TokenId> + '_ {
        (0..self.strs.len() as u32).map(TokenId)
    }

    /// Iterates over `(id, text)` pairs of regular (non-special) tokens.
    pub fn regular_tokens(&self) -> impl Iterator<Item = (TokenId, &str)> + '_ {
        self.ids()
            .filter(|&id| !self.is_special(id))
            .map(|id| (id, self.token_str(id)))
    }

    /// Decodes a token sequence to text, skipping special tokens.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut out = String::new();
        for &id in ids {
            if !self.is_special(id) {
                out.push_str(self.token_str(id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_lookup() {
        let v = Vocabulary::from_tokens(["he", "llo", " world"]);
        for (id, s) in v.regular_tokens() {
            assert_eq!(v.id_of(s), Some(id));
        }
    }

    #[test]
    fn eos_is_special_and_last() {
        let v = Vocabulary::from_tokens(["x"]);
        assert_eq!(v.eos(), TokenId(1));
        assert!(v.is_special(v.eos()));
        assert!(!v.is_special(TokenId(0)));
    }

    #[test]
    fn decode_skips_special() {
        let v = Vocabulary::from_tokens(["ab", "cd"]);
        let text = v.decode(&[TokenId(0), v.eos(), TokenId(1)]);
        assert_eq!(text, "abcd");
    }

    #[test]
    #[should_panic(expected = "duplicate token string")]
    fn duplicate_tokens_rejected() {
        let _ = Vocabulary::from_tokens(["a", "a"]);
    }

    #[test]
    fn id_of_unknown_is_none() {
        let v = Vocabulary::from_tokens(["a"]);
        assert_eq!(v.id_of("zz"), None);
        // the EOS sentinel is not a regular token
        assert_eq!(v.id_of(EOS_STR), None);
    }
}
