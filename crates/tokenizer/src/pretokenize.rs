//! GPT-2-style pretokenisation: splitting text into word-level chunks that
//! BPE merges never cross.
//!
//! Chunks keep their single leading space attached (`" word"`), mirroring the
//! `Ġ`-prefixed tokens of GPT-2 vocabularies that the paper's Fig. 2 shows
//! (`"_sells"`, `"_seas"`, …).

/// Splits `text` into pretokenisation chunks. Concatenating the chunks
/// yields `text` back exactly.
///
/// Rules, applied left to right:
/// - `\n` is always its own chunk;
/// - a chunk is an optional single leading space followed by a maximal run
///   of alphanumeric characters, or by a maximal run of
///   punctuation/symbol characters;
/// - a space not followed by a word character (another space, a newline, or
///   end of text) is its own chunk.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::pretokenize;
///
/// let chunks = pretokenize("She sells, yes\n twice");
/// assert_eq!(chunks, vec!["She", " sells", ",", " yes", "\n", " twice"]);
/// assert_eq!(chunks.concat(), "She sells, yes\n twice");
/// ```
pub fn pretokenize(text: &str) -> Vec<&str> {
    let mut chunks = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let n = bytes.len();
    let mut i = 0;

    let class = |c: char| -> u8 {
        if c == '\n' {
            0
        } else if c == ' ' {
            1
        } else if c.is_alphanumeric() {
            2
        } else {
            3 // punctuation / symbols / other whitespace
        }
    };

    while i < n {
        let (start_byte, c) = bytes[i];
        match class(c) {
            0 => {
                // newline: own chunk
                let end = byte_end(&bytes, i, text);
                chunks.push(&text[start_byte..end]);
                i += 1;
            }
            1 => {
                // A space: attach to following run if it is a word run.
                if i + 1 < n && matches!(class(bytes[i + 1].1), 2 | 3) {
                    let run_class = class(bytes[i + 1].1);
                    let mut j = i + 1;
                    while j < n && class(bytes[j].1) == run_class {
                        j += 1;
                    }
                    let end = if j < n { bytes[j].0 } else { text.len() };
                    chunks.push(&text[start_byte..end]);
                    i = j;
                } else {
                    // space before space/newline/EOT: own chunk
                    let end = byte_end(&bytes, i, text);
                    chunks.push(&text[start_byte..end]);
                    i += 1;
                }
            }
            run_class @ (2 | 3) => {
                let mut j = i;
                while j < n && class(bytes[j].1) == run_class {
                    j += 1;
                }
                let end = if j < n { bytes[j].0 } else { text.len() };
                chunks.push(&text[start_byte..end]);
                i = j;
            }
            _ => unreachable!("class() only returns 0..=3"),
        }
    }
    chunks
}

fn byte_end(bytes: &[(usize, char)], i: usize, text: &str) -> usize {
    if i + 1 < bytes.len() {
        bytes[i + 1].0
    } else {
        text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_is_identity() {
        let cases = [
            "hello world",
            "  double  spaces ",
            "line\nbreaks\n\nhere",
            "punct, and. more! <<3*4=12>>",
            "",
            " ",
            "\n",
            "a",
            "trailing space ",
        ];
        for text in cases {
            assert_eq!(pretokenize(text).concat(), text, "case {text:?}");
        }
    }

    #[test]
    fn leading_space_attaches_to_words() {
        assert_eq!(pretokenize("a b"), vec!["a", " b"]);
        assert_eq!(pretokenize(" x"), vec![" x"]);
    }

    #[test]
    fn punctuation_splits_from_words() {
        assert_eq!(pretokenize("end."), vec!["end", "."]);
        assert_eq!(pretokenize("a, b"), vec!["a", ",", " b"]);
    }

    #[test]
    fn newlines_are_isolated() {
        assert_eq!(pretokenize("a\nb"), vec!["a", "\n", "b"]);
        assert_eq!(pretokenize("a \n"), vec!["a", " ", "\n"]);
    }

    #[test]
    fn double_space_splits() {
        assert_eq!(pretokenize("a  b"), vec!["a", " ", " b"]);
    }

    #[test]
    fn space_then_punct_attaches() {
        assert_eq!(pretokenize("a <<"), vec!["a", " <<"]);
    }
}
