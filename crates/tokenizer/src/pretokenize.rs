//! GPT-2-style pretokenisation: splitting text into word-level chunks that
//! BPE merges never cross.
//!
//! Chunks keep their single leading space attached (`" word"`), mirroring the
//! `Ġ`-prefixed tokens of GPT-2 vocabularies that the paper's Fig. 2 shows
//! (`"_sells"`, `"_seas"`, …).

/// Splits `text` into pretokenisation chunks. Concatenating the chunks
/// yields `text` back exactly.
///
/// Rules, applied left to right:
/// - `\n` is always its own chunk;
/// - a chunk is an optional single leading space followed by a maximal run
///   of alphanumeric characters, or by a maximal run of
///   punctuation/symbol characters;
/// - a space not followed by a word character (another space, a newline, or
///   end of text) is its own chunk.
///
/// # Example
///
/// ```
/// use lmql_tokenizer::pretokenize;
///
/// let chunks = pretokenize("She sells, yes\n twice");
/// assert_eq!(chunks, vec!["She", " sells", ",", " yes", "\n", " twice"]);
/// assert_eq!(chunks.concat(), "She sells, yes\n twice");
/// ```
pub fn pretokenize(text: &str) -> Vec<&str> {
    chunks(text).collect()
}

/// Streaming variant of [`pretokenize`]: yields the same chunks in the
/// same order without allocating. This is the hot-path entry for callers
/// that only *consume* chunks (the router's prefix fingerprint, token
/// counting) and must not pay a `Vec` per call.
pub fn chunks(text: &str) -> Chunks<'_> {
    Chunks { text, pos: 0 }
}

fn class(c: char) -> u8 {
    if c == '\n' {
        0
    } else if c == ' ' {
        1
    } else if c.is_alphanumeric() {
        2
    } else {
        3 // punctuation / symbols / other whitespace
    }
}

/// Iterator over pretokenisation chunks; see [`chunks`].
#[derive(Debug, Clone)]
pub struct Chunks<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Iterator for Chunks<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let rest = &self.text[self.pos..];
        let mut it = rest.char_indices().peekable();
        let (_, c) = it.next()?;
        // Length of the chunk, relative to `rest`.
        let mut len = c.len_utf8();
        let run_class = match class(c) {
            0 => None, // newline: always its own chunk
            1 => match it.peek() {
                // A space attaches to a following word/punct run …
                Some(&(_, c2)) if matches!(class(c2), 2 | 3) => Some(class(c2)),
                // … and stands alone before space/newline/end of text.
                _ => None,
            },
            run_class => Some(run_class),
        };
        if let Some(run_class) = run_class {
            while let Some(&(off, c2)) = it.peek() {
                if class(c2) != run_class {
                    break;
                }
                len = off + c2.len_utf8();
                it.next();
            }
        }
        let start = self.pos;
        self.pos += len;
        Some(&self.text[start..start + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_is_identity() {
        let cases = [
            "hello world",
            "  double  spaces ",
            "line\nbreaks\n\nhere",
            "punct, and. more! <<3*4=12>>",
            "",
            " ",
            "\n",
            "a",
            "trailing space ",
        ];
        for text in cases {
            assert_eq!(pretokenize(text).concat(), text, "case {text:?}");
        }
    }

    #[test]
    fn leading_space_attaches_to_words() {
        assert_eq!(pretokenize("a b"), vec!["a", " b"]);
        assert_eq!(pretokenize(" x"), vec![" x"]);
    }

    #[test]
    fn punctuation_splits_from_words() {
        assert_eq!(pretokenize("end."), vec!["end", "."]);
        assert_eq!(pretokenize("a, b"), vec!["a", ",", " b"]);
    }

    #[test]
    fn newlines_are_isolated() {
        assert_eq!(pretokenize("a\nb"), vec!["a", "\n", "b"]);
        assert_eq!(pretokenize("a \n"), vec!["a", " ", "\n"]);
    }

    #[test]
    fn double_space_splits() {
        assert_eq!(pretokenize("a  b"), vec!["a", " ", " b"]);
    }

    #[test]
    fn space_then_punct_attaches() {
        assert_eq!(pretokenize("a <<"), vec!["a", " <<"]);
    }
}
