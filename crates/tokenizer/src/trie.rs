//! A prefix trie over the vocabulary, answering the queries mask generation
//! needs.
//!
//! Given a target continuation string `s` (e.g. the `"en Hawking"` remainder
//! in the paper's §5.2 example), the set of admissible next tokens is
//!
//! > every token `t` such that `t` is a prefix of `s`, **or** `s` is a prefix
//! > of `t` (when `s` is short enough that a single token may overshoot it —
//! > only valid when overshooting is allowed by the constraint).
//!
//! Both queries are answered by walking the trie along `s`:
//! [`TokenTrie::prefixes_of`] collects tokens at the nodes visited,
//! [`TokenTrie::tokens_with_prefix`] collects the whole subtree under the
//! node reached.

use crate::{TokenId, TokenSet, Vocabulary};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct Node {
    children: HashMap<char, usize>,
    /// Token ending exactly at this node, if any.
    token: Option<TokenId>,
    /// All tokens in this node's subtree (including `token`).
    subtree: Vec<TokenId>,
}

/// A character-level prefix trie over all regular tokens of a [`Vocabulary`].
///
/// # Example
///
/// ```
/// use lmql_tokenizer::{Vocabulary, TokenTrie};
///
/// let vocab = Vocabulary::from_tokens(["St", "Ste", "Stephen", "Steve", "x"]);
/// let trie = TokenTrie::new(&vocab);
///
/// // Tokens that are prefixes of "Stephen": "St", "Ste", "Stephen".
/// let p = trie.prefixes_of("Stephen");
/// assert_eq!(p.len(), 3);
///
/// // Tokens starting with "Ste": "Ste", "Stephen", "Steve".
/// let c = trie.tokens_with_prefix("Ste");
/// assert_eq!(c.len(), 3);
/// ```
#[derive(Debug)]
pub struct TokenTrie {
    nodes: Vec<Node>,
    vocab_len: usize,
}

impl TokenTrie {
    /// Builds the trie over all regular tokens of `vocab`.
    pub fn new(vocab: &Vocabulary) -> Self {
        let mut trie = TokenTrie {
            nodes: vec![Node::default()],
            vocab_len: vocab.len(),
        };
        for (id, s) in vocab.regular_tokens() {
            trie.insert(s, id);
        }
        // Populate subtree lists bottom-up via a post-order traversal.
        trie.build_subtrees(0);
        trie
    }

    fn insert(&mut self, s: &str, id: TokenId) {
        let mut cur = 0;
        for ch in s.chars() {
            cur = match self.nodes[cur].children.get(&ch) {
                Some(&next) => next,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(ch, next);
                    next
                }
            };
        }
        self.nodes[cur].token = Some(id);
    }

    fn build_subtrees(&mut self, node: usize) {
        // Iterative post-order to avoid deep recursion on long tokens.
        let mut stack = vec![(node, false)];
        while let Some((n, visited)) = stack.pop() {
            if visited {
                let mut acc: Vec<TokenId> = Vec::new();
                if let Some(t) = self.nodes[n].token {
                    acc.push(t);
                }
                let children: Vec<usize> = self.nodes[n].children.values().copied().collect();
                for c in children {
                    acc.extend_from_slice(&self.nodes[c].subtree);
                }
                self.nodes[n].subtree = acc;
            } else {
                stack.push((n, true));
                for &c in self.nodes[n].children.values() {
                    stack.push((c, false));
                }
            }
        }
    }

    /// Walks the trie along `s`; returns the node index reached, or `None`
    /// if the walk falls off the trie.
    fn walk(&self, s: &str) -> Option<usize> {
        let mut cur = 0;
        for ch in s.chars() {
            cur = *self.nodes[cur].children.get(&ch)?;
        }
        Some(cur)
    }

    /// All tokens `t` such that `t` is a non-empty prefix of `s`
    /// (`t` may equal `s`).
    pub fn prefixes_of(&self, s: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        let mut cur = 0;
        for ch in s.chars() {
            match self.nodes[cur].children.get(&ch) {
                Some(&next) => {
                    cur = next;
                    if let Some(t) = self.nodes[cur].token {
                        out.push(t);
                    }
                }
                None => break,
            }
        }
        out
    }

    /// All tokens that start with `s` (including a token equal to `s`).
    pub fn tokens_with_prefix(&self, s: &str) -> Vec<TokenId> {
        match self.walk(s) {
            Some(node) => self.nodes[node].subtree.clone(),
            None => Vec::new(),
        }
    }

    /// The mask-building primitive: all tokens `t` that *align with* the
    /// target continuation `s`, i.e. `t` is a prefix of `s` or `s` is a
    /// prefix of `t`.
    ///
    /// When `allow_overshoot` is `false`, tokens strictly longer than `s`
    /// are excluded (used when the constraint requires the value to stop
    /// exactly at the end of `s`).
    pub fn aligned_with(&self, s: &str, allow_overshoot: bool) -> TokenSet {
        let mut set = TokenSet::empty(self.vocab_len);
        for t in self.prefixes_of(s) {
            set.insert(t);
        }
        if allow_overshooting(allow_overshoot) {
            // `tokens_with_prefix(s)` includes a token equal to `s`, which
            // `prefixes_of` already added; the set union deduplicates.
            for t in self.tokens_with_prefix(s) {
                set.insert(t);
            }
        }
        set
    }

    /// Size of the vocabulary this trie was built over.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }
}

/// Tiny readability helper so the intent at the call site is explicit.
#[inline]
fn allow_overshooting(flag: bool) -> bool {
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vocabulary {
        Vocabulary::from_tokens(["a", "ab", "abc", "b", "bc", " a", "abd", "zz"])
    }

    #[test]
    fn prefixes_of_collects_along_path() {
        let v = sample_vocab();
        let trie = TokenTrie::new(&v);
        let got: Vec<&str> = trie
            .prefixes_of("abcde")
            .into_iter()
            .map(|t| v.token_str(t))
            .collect();
        assert_eq!(got, ["a", "ab", "abc"]);
    }

    #[test]
    fn tokens_with_prefix_collects_subtree() {
        let v = sample_vocab();
        let trie = TokenTrie::new(&v);
        let mut got: Vec<&str> = trie
            .tokens_with_prefix("ab")
            .into_iter()
            .map(|t| v.token_str(t))
            .collect();
        got.sort_unstable();
        assert_eq!(got, ["ab", "abc", "abd"]);
    }

    #[test]
    fn aligned_with_combines_both_directions() {
        let v = sample_vocab();
        let trie = TokenTrie::new(&v);
        let set = trie.aligned_with("ab", true);
        let mut got: Vec<&str> = set.iter().map(|t| v.token_str(t)).collect();
        got.sort_unstable();
        // prefixes of "ab": a, ab; extensions of "ab": ab, abc, abd
        assert_eq!(got, ["a", "ab", "abc", "abd"]);

        let exact = trie.aligned_with("ab", false);
        let mut got: Vec<&str> = exact.iter().map(|t| v.token_str(t)).collect();
        got.sort_unstable();
        assert_eq!(got, ["a", "ab"]);
    }

    #[test]
    fn missing_prefix_yields_empty() {
        let v = sample_vocab();
        let trie = TokenTrie::new(&v);
        assert!(trie.tokens_with_prefix("q").is_empty());
        assert!(trie.prefixes_of("q").is_empty());
        assert!(trie.aligned_with("q", true).is_empty());
    }

    #[test]
    fn eos_never_in_trie() {
        let v = sample_vocab();
        let trie = TokenTrie::new(&v);
        // EOS sentinel text must not be reachable: it is a special token.
        assert!(trie.tokens_with_prefix("<|eos|>").is_empty());
    }
}
