//! A from-scratch subword tokenizer for the LMQL reproduction.
//!
//! Language models operate on subword tokens, and LMQL's constraint-to-mask
//! translation ("Subtokenization", §5.2 of the paper) requires scanning a
//! real subword vocabulary for all tokens that are *prefixes of* or
//! *continuations of* a target string, because most vocabularies admit more
//! than one factorisation of a string into tokens.
//!
//! This crate provides:
//!
//! - [`Vocabulary`] — an id ↔ string table with special-token support,
//! - [`TokenSet`] — a bitset over the vocabulary used for decoding masks,
//! - [`TokenTrie`] — a prefix trie over the vocabulary answering the two
//!   queries mask generation needs (`tokens_with_prefix`, `prefixes_of`),
//! - [`Bpe`] — a byte-pair-encoding trainer/encoder/decoder
//!   ([`BpeTrainer`]) operating on character sequences with GPT-2 style
//!   leading-space pretokenisation ([`pretokenize`]).
//!
//! # Example
//!
//! ```
//! use lmql_tokenizer::{BpeTrainer, Bpe};
//!
//! let corpus = "she sells seashells by the seashore. she sells seashells.";
//! let bpe: Bpe = BpeTrainer::new().merges(40).train(corpus);
//! let ids = bpe.encode("she sells seashells");
//! assert_eq!(bpe.decode(&ids), "she sells seashells");
//! ```

mod bpe;
mod pretokenize;
mod token_set;
mod trie;
mod vocab;

pub use bpe::{fingerprint_tokens, Bpe, BpeTrainer};
pub use pretokenize::{chunks, pretokenize, Chunks};
pub use token_set::TokenSet;
pub use trie::TokenTrie;
pub use vocab::{TokenId, Vocabulary};
