//! Compiler from the eager `where`-clause subset to leaf DFAs.
//!
//! The compiler mirrors the constraint evaluator's structural walk
//! (`BoolOp` / `Not` recursion, everything else a leaf) and maps each
//! leaf to a character-level machine from [`crate::leaf`]. A clause
//! compiles only when *every* leaf does; any unsupported shape — custom
//! operators above all — aborts compilation so the caller falls back to
//! the FollowMap path. Rejection is always safe: the automaton is a pure
//! accelerator, never a semantics change.

use crate::leaf::{CharTrie, Hay, Kmp, LeafDfa};
use crate::{ScopeResolver, Unsupported};
use lmql_syntax::ast::{CmpOp, Expr};

/// Walks the conjunctive/negation skeleton, compiling each leaf.
pub(crate) fn compile_leaves(
    expr: &Expr,
    var: &str,
    scope: &dyn ScopeResolver,
    is_custom_op: &dyn Fn(&str) -> bool,
    out: &mut Vec<LeafDfa>,
) -> Result<(), Unsupported> {
    match expr {
        Expr::BoolOp { operands, .. } => {
            for o in operands {
                compile_leaves(o, var, scope, is_custom_op, out)?;
            }
            Ok(())
        }
        Expr::Not { operand, .. } => compile_leaves(operand, var, scope, is_custom_op, out),
        leaf => {
            out.push(compile_leaf(leaf, var, scope, is_custom_op)?);
            Ok(())
        }
    }
}

fn compile_leaf(
    e: &Expr,
    var: &str,
    scope: &dyn ScopeResolver,
    is_custom_op: &dyn Fn(&str) -> bool,
) -> Result<LeafDfa, Unsupported> {
    // Custom operators receive the raw hole value through their OpCtx
    // even when their arguments don't mention the variable, so their
    // presence anywhere in the leaf disqualifies it.
    if contains_custom_call(e, is_custom_op) {
        return Err(Unsupported {
            reason: "custom operator",
        });
    }
    // A leaf that never reads the hole variable evaluates identically
    // for every value: a single-state machine.
    if !references_var(e, var) {
        return Ok(LeafDfa::Const);
    }
    let is_var = |e: &Expr| matches!(e, Expr::Name { name, .. } if name == var);
    match e {
        Expr::Compare {
            op, left, right, ..
        } => {
            let (left, right) = (left.as_ref(), right.as_ref());
            // Length-metric bounds: `len(X) ⋈ n`, `len(words(X)) ⋈ n`,
            // also mirrored (`n ⋈ len(X)`). The bound side must be an
            // integer literal; the saturation cap `bound + 2` merges all
            // counts whose comparison outcome can no longer change.
            let metric_bound = match (len_metric_of(left, var), right) {
                (Some(m), Expr::Int { value, .. }) => Some((m, *value)),
                _ => match (left, len_metric_of(right, var)) {
                    (Expr::Int { value, .. }, Some(m)) => Some((m, *value)),
                    _ => None,
                },
            };
            if let Some((metric, bound)) = metric_bound {
                let cap = (bound.max(0) as u64).saturating_add(2);
                return Ok(match metric {
                    Metric::Chars => LeafDfa::CharLen { cap },
                    Metric::Words => LeafDfa::WordLen { cap },
                });
            }
            match op {
                CmpOp::In | CmpOp::NotIn if is_var(left) => {
                    if let Some(options) = const_str_list(right, var, scope) {
                        let trie = CharTrie::new(&options).ok_or(Unsupported {
                            reason: "option set too large",
                        })?;
                        Ok(LeafDfa::Options(trie))
                    } else if let Expr::Str { value: hay, .. } = right {
                        let hay = Hay::new(hay).ok_or(Unsupported {
                            reason: "haystack too long",
                        })?;
                        Ok(LeafDfa::Substring(hay))
                    } else {
                        Err(Unsupported {
                            reason: "membership target not a literal",
                        })
                    }
                }
                CmpOp::In | CmpOp::NotIn if is_var(right) => match left {
                    // Everything contains the empty needle: constant.
                    Expr::Str { value, .. } if value.is_empty() => Ok(LeafDfa::Const),
                    Expr::Str { value, .. } => Ok(LeafDfa::Needle(Kmp::new(value))),
                    _ => Err(Unsupported {
                        reason: "needle not a string literal",
                    }),
                },
                CmpOp::Eq | CmpOp::Ne => {
                    let other = if is_var(left) {
                        right
                    } else if is_var(right) {
                        left
                    } else {
                        return Err(Unsupported {
                            reason: "comparison too complex",
                        });
                    };
                    let Expr::Str { value, .. } = other else {
                        return Err(Unsupported {
                            reason: "equality target not a string literal",
                        });
                    };
                    let trie = CharTrie::new(&[value.as_str()]).ok_or(Unsupported {
                        reason: "equality target too long",
                    })?;
                    Ok(LeafDfa::Options(trie))
                }
                _ => Err(Unsupported {
                    reason: "comparison too complex",
                }),
            }
        }
        Expr::Call { func, args, .. } => {
            let Expr::Name { name, .. } = func.as_ref() else {
                return Err(Unsupported {
                    reason: "non-name call target",
                });
            };
            match name.as_str() {
                // `stops_at` never fails validation (its FINAL value is
                // always VAR(true)); its operational effect — the stop
                // check and containment masking — keys on the value's
                // suffix overlap with the phrase, i.e. the KMP state.
                // Only a literal second argument ever registers a stop
                // phrase, so every other shape is a constant.
                "stops_at" => match (args.first(), args.get(1), args.len()) {
                    (Some(a0), Some(Expr::Str { value, .. }), 2) if is_var(a0) => {
                        if value.is_empty() {
                            Ok(LeafDfa::Const)
                        } else {
                            Ok(LeafDfa::Stop(Kmp::new(value)))
                        }
                    }
                    _ => Ok(LeafDfa::Const),
                },
                "int" if args.len() == 1 && is_var(&args[0]) => Ok(LeafDfa::IntShape),
                _ => Err(Unsupported {
                    reason: "unsupported function on the hole variable",
                }),
            }
        }
        _ => Err(Unsupported {
            reason: "unsupported leaf shape",
        }),
    }
}

enum Metric {
    Chars,
    Words,
}

/// Matches `len(VAR)`, `len(characters(VAR))`, `len(words(VAR))` —
/// the same shapes the FollowMap length fast path recognises.
fn len_metric_of(e: &Expr, var: &str) -> Option<Metric> {
    let Expr::Call { func, args, .. } = e else {
        return None;
    };
    let Expr::Name { name, .. } = func.as_ref() else {
        return None;
    };
    if name != "len" {
        return None;
    }
    match args.first()? {
        Expr::Name { name, .. } if name == var => Some(Metric::Chars),
        Expr::Call { func, args, .. } => {
            let Expr::Name { name: inner, .. } = func.as_ref() else {
                return None;
            };
            let metric = match inner.as_str() {
                "characters" => Metric::Chars,
                "words" => Metric::Words,
                _ => return None,
            };
            match args.first()? {
                Expr::Name { name, .. } if name == var => Some(metric),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A list of option strings that is constant while the hole decodes:
/// a literal list of string literals, or a scope variable holding a
/// list of strings (previous holes and bindings are fixed).
fn const_str_list(e: &Expr, var: &str, scope: &dyn ScopeResolver) -> Option<Vec<String>> {
    match e {
        Expr::List { items, .. } => items
            .iter()
            .map(|i| match i {
                Expr::Str { value, .. } => Some(value.clone()),
                _ => None,
            })
            .collect(),
        Expr::Name { name, .. } if name != var => scope.str_list(name),
        _ => None,
    }
}

/// `true` if the expression reads the hole variable anywhere.
fn references_var(e: &Expr, var: &str) -> bool {
    match e {
        Expr::Str { .. }
        | Expr::Int { .. }
        | Expr::Float { .. }
        | Expr::Bool { .. }
        | Expr::None { .. } => false,
        Expr::Name { name, .. } => name == var,
        Expr::List { items, .. } => items.iter().any(|i| references_var(i, var)),
        Expr::Call { func, args, .. } => {
            references_var(func, var) || args.iter().any(|a| references_var(a, var))
        }
        Expr::Attribute { obj, .. } => references_var(obj, var),
        Expr::Index { obj, index, .. } => references_var(obj, var) || references_var(index, var),
        Expr::Slice { obj, lo, hi, .. } => {
            references_var(obj, var)
                || lo.as_ref().is_some_and(|e| references_var(e, var))
                || hi.as_ref().is_some_and(|e| references_var(e, var))
        }
        Expr::BinOp { left, right, .. } | Expr::Compare { left, right, .. } => {
            references_var(left, var) || references_var(right, var)
        }
        Expr::BoolOp { operands, .. } => operands.iter().any(|o| references_var(o, var)),
        Expr::Not { operand, .. } | Expr::Neg { operand, .. } => references_var(operand, var),
    }
}

/// `true` if any call in the expression targets a registered custom
/// operator.
fn contains_custom_call(e: &Expr, is_custom_op: &dyn Fn(&str) -> bool) -> bool {
    match e {
        Expr::Str { .. }
        | Expr::Int { .. }
        | Expr::Float { .. }
        | Expr::Bool { .. }
        | Expr::None { .. }
        | Expr::Name { .. } => false,
        Expr::List { items, .. } => items.iter().any(|i| contains_custom_call(i, is_custom_op)),
        Expr::Call { func, args, .. } => {
            if let Expr::Name { name, .. } = func.as_ref() {
                if is_custom_op(name) {
                    return true;
                }
            }
            contains_custom_call(func, is_custom_op)
                || args.iter().any(|a| contains_custom_call(a, is_custom_op))
        }
        Expr::Attribute { obj, .. } => contains_custom_call(obj, is_custom_op),
        Expr::Index { obj, index, .. } => {
            contains_custom_call(obj, is_custom_op) || contains_custom_call(index, is_custom_op)
        }
        Expr::Slice { obj, lo, hi, .. } => {
            contains_custom_call(obj, is_custom_op)
                || lo
                    .as_ref()
                    .is_some_and(|e| contains_custom_call(e, is_custom_op))
                || hi
                    .as_ref()
                    .is_some_and(|e| contains_custom_call(e, is_custom_op))
        }
        Expr::BinOp { left, right, .. } | Expr::Compare { left, right, .. } => {
            contains_custom_call(left, is_custom_op) || contains_custom_call(right, is_custom_op)
        }
        Expr::BoolOp { operands, .. } => operands
            .iter()
            .any(|o| contains_custom_call(o, is_custom_op)),
        Expr::Not { operand, .. } | Expr::Neg { operand, .. } => {
            contains_custom_call(operand, is_custom_op)
        }
    }
}
