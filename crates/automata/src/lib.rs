//! Compiled constraint automata (SGLang-style compressed FSMs) for
//! LMQL `where` clauses.
//!
//! The FollowMap masker recomputes a vocabulary scan on every decode
//! step because the hole value grows every step. This crate removes the
//! per-step scan for the *eager* constraint subset: the clause is
//! compiled once per `(query, hole, scope, vocabulary)` into a product
//! of small character-level DFAs ([`leaf`]) whose joint state provably
//! determines the constraint evaluator's entire mask outcome. Per-step
//! masking then becomes: advance the DFAs over the value's characters
//! and look the state up in a mask store. The first visit to a state
//! pays one FollowMap computation (performed by the caller — the
//! automaton never re-implements mask semantics, so its masks are
//! bit-identical to the fallback path *by construction*); every later
//! visit is a hash lookup. Interning collapses equivalent states to one
//! shared [`StateMask`].
//!
//! When a state's mask admits exactly one token and forbids EOS, the
//! decoder can *fast-forward*: append the forced token without querying
//! the language model (see `decode.rs` / `beam.rs` in the core crate).
//!
//! Compilation is best-effort: any unsupported leaf — custom operators,
//! non-literal needles, oversized option sets — yields
//! [`Unsupported`] and the caller keeps using the FollowMap path.

mod compile;
mod leaf;

use lmql_syntax::ast::Expr;
use lmql_tokenizer::TokenSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Resolves scope variables the constraint references (previous hole
/// values and bindings — constant for the duration of one hole decode).
pub trait ScopeResolver {
    /// The variable's value as a list of strings, if it is one.
    fn str_list(&self, name: &str) -> Option<Vec<String>>;
}

/// Why a clause did not compile. Never an error condition — the caller
/// falls back to the FollowMap path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported {
    /// Human-readable reason, for metrics and tracing.
    pub reason: &'static str,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint does not compile: {}", self.reason)
    }
}

/// The mask outcome cached for one automaton state: which tokens keep
/// the constraint satisfiable, whether EOS is admissible, and whether a
/// stop phrase fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMask {
    /// Tokens that may be appended.
    pub allowed: TokenSet,
    /// Whether the hole may end here.
    pub eos_allowed: bool,
    /// Whether a stop condition fired on the current value.
    pub must_stop: bool,
}

/// A compiled constraint clause: the leaf DFAs plus the per-state mask
/// store filled in lazily by the caller.
///
/// Thread-safe: the engine shares one automaton across worker runtimes,
/// so states discovered by one query warm all others.
pub struct Automaton {
    leaves: Vec<leaf::LeafDfa>,
    store: Mutex<MaskStore>,
}

#[derive(Default)]
struct MaskStore {
    /// Product state → interned mask.
    by_state: HashMap<Box<[u64]>, Arc<StateMask>>,
    /// Distinct masks, for interning: linear scan is fine because
    /// distinct masks are few (states collapse heavily).
    interned: Vec<Arc<StateMask>>,
}

/// Compiles the clause for hole variable `var`, or reports why it
/// cannot be compiled. `is_custom_op` must return `true` for every
/// registered custom operator name — custom operators observe the raw
/// value and always disqualify a leaf.
pub fn compile(
    expr: &Expr,
    var: &str,
    scope: &dyn ScopeResolver,
    is_custom_op: &dyn Fn(&str) -> bool,
) -> Result<Automaton, Unsupported> {
    let mut leaves = Vec::new();
    compile::compile_leaves(expr, var, scope, is_custom_op, &mut leaves)?;
    Ok(Automaton {
        leaves,
        store: Mutex::new(MaskStore::default()),
    })
}

impl Automaton {
    /// Computes the product state of `value`, writing one code per leaf
    /// into `key` (reused to keep the hot path allocation-free).
    pub fn state_of(&self, value: &str, key: &mut Vec<u64>) {
        key.clear();
        key.extend(self.leaves.iter().map(leaf::LeafDfa::start));
        for c in value.chars() {
            for (leaf, s) in self.leaves.iter().zip(key.iter_mut()) {
                *s = leaf.advance(*s, c);
            }
        }
    }

    /// The mask cached for a state, if this state was visited before.
    pub fn cached(&self, key: &[u64]) -> Option<Arc<StateMask>> {
        self.store.lock().unwrap().by_state.get(key).cloned()
    }

    /// Caches the mask computed for a state, interning equal masks.
    /// Returns the shared mask and whether the state was new.
    pub fn insert(&self, key: &[u64], mask: StateMask) -> (Arc<StateMask>, bool) {
        let mut store = self.store.lock().unwrap();
        if let Some(existing) = store.by_state.get(key) {
            return (Arc::clone(existing), false);
        }
        let shared = match store.interned.iter().find(|m| ***m == mask) {
            Some(m) => Arc::clone(m),
            None => {
                let m = Arc::new(mask);
                store.interned.push(Arc::clone(&m));
                m
            }
        };
        store
            .by_state
            .insert(key.to_vec().into_boxed_slice(), Arc::clone(&shared));
        (shared, true)
    }

    /// Number of leaf machines in the product.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of distinct states visited so far.
    pub fn state_count(&self) -> usize {
        self.store.lock().unwrap().by_state.len()
    }

    /// Number of distinct masks shared between those states.
    pub fn distinct_masks(&self) -> usize {
        self.store.lock().unwrap().interned.len()
    }
}

impl fmt::Debug for Automaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Automaton")
            .field("leaves", &self.leaves.len())
            .field("states", &self.state_count())
            .field("masks", &self.distinct_masks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_syntax::parse_expr;

    struct NoScope;
    impl ScopeResolver for NoScope {
        fn str_list(&self, _: &str) -> Option<Vec<String>> {
            None
        }
    }

    struct ListScope(&'static str, Vec<String>);
    impl ScopeResolver for ListScope {
        fn str_list(&self, name: &str) -> Option<Vec<String>> {
            (name == self.0).then(|| self.1.clone())
        }
    }

    fn compile_str(src: &str, var: &str) -> Result<Automaton, Unsupported> {
        let e = parse_expr(src).unwrap();
        compile(&e, var, &NoScope, &|_| false)
    }

    #[test]
    fn bench_constraint_compiles() {
        let aut = compile_str(
            "not \"\\n\" in X and stops_at(X, \".\") and len(words(X)) < 40",
            "X",
        )
        .unwrap();
        assert_eq!(aut.leaf_count(), 3);
        // The advancing workload's values all land in one state: no
        // newline seen, no partial ".", six words ending mid-word.
        let mut a = Vec::new();
        let mut b = Vec::new();
        aut.state_of("some reasoning text so far 1", &mut a);
        aut.state_of("some reasoning text so far 12345", &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_ops_are_rejected() {
        let e = parse_expr("len(X) < 5 and my_op(X)").unwrap();
        let err = compile(&e, "X", &NoScope, &|n| n == "my_op").unwrap_err();
        assert_eq!(err.reason, "custom operator");
        // …even when the operator's arguments don't mention the hole:
        // custom operators receive the raw value through their context.
        let e = parse_expr("my_op(42)").unwrap();
        assert!(compile(&e, "X", &NoScope, &|n| n == "my_op").is_err());
    }

    #[test]
    fn scope_option_lists_resolve() {
        let e = parse_expr("X in options").unwrap();
        let scope = ListScope("options", vec!["ab".into(), "abc".into()]);
        let aut = compile(&e, "X", &scope, &|_| false).unwrap();
        let (mut ab, mut abx) = (Vec::new(), Vec::new());
        aut.state_of("ab", &mut ab);
        aut.state_of("abx", &mut abx);
        assert_ne!(ab, abx);
        // Unresolvable scope names do not compile.
        assert!(compile(&e, "X", &NoScope, &|_| false).is_err());
    }

    #[test]
    fn unsupported_leaves_reject_the_whole_clause() {
        for src in [
            "len(X) + 1 < 5",    // arithmetic on the metric
            "X",                 // bare truthiness
            "upper(X) == \"A\"", // value transformation
            "X in Y",            // unresolvable membership target
        ] {
            assert!(compile_str(src, "X").is_err(), "{src}");
        }
        // …but clauses that never read the variable are constants.
        assert!(compile_str("len(OTHER) < 5 and True", "X").is_ok());
    }

    #[test]
    fn masks_intern_across_states() {
        let aut = compile_str("stops_at(X, \"ab\")", "X").unwrap();
        let mut k1 = Vec::new();
        let mut k2 = Vec::new();
        aut.state_of("x", &mut k1);
        aut.state_of("xa", &mut k2);
        assert_ne!(k1, k2);
        let mask = StateMask {
            allowed: TokenSet::empty(4),
            eos_allowed: true,
            must_stop: false,
        };
        let (m1, new1) = aut.insert(&k1, mask.clone());
        let (m2, new2) = aut.insert(&k2, mask);
        assert!(new1 && new2);
        assert_eq!(aut.state_count(), 2);
        assert_eq!(aut.distinct_masks(), 1);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert!(aut.cached(&k1).is_some());
        let mut k3 = Vec::new();
        aut.state_of("xab", &mut k3);
        assert_eq!(aut.cached(&k3), None);
    }
}
