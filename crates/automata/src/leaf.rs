//! Per-leaf character-level DFAs.
//!
//! Each supported `where`-clause leaf is abstracted into a small
//! deterministic automaton over *characters* of the hole value. The
//! invariant every machine must uphold (the compiler's soundness
//! contract, see DESIGN.md §12): **two values that reach the same state
//! are indistinguishable to the constraint evaluator** — FINAL semantics
//! and follow maps agree on them for every possible continuation. The
//! product of the leaf states therefore determines the token mask, which
//! is why masks can be cached per state.
//!
//! States are plain `u64` codes; `DEAD` is a conventional absorbing
//! sentinel used by machines that can reject permanently.

use std::collections::HashMap;

/// Absorbing sentinel state (also used as the "contained" sentinel by the
/// sticky needle machine — each leaf interprets its own codes).
pub(crate) const DEAD: u64 = u64::MAX;

/// One compiled constraint leaf.
pub(crate) enum LeafDfa {
    /// The leaf's FINAL evaluation does not depend on the hole value at
    /// all (no reference to the variable, or a shape — like `stops_at`
    /// with a non-literal phrase — whose evaluation is constant).
    Const,
    /// `X in [options…]` / `X == "s"` and their negations: state is the
    /// node reached in a prefix trie over the option strings.
    Options(CharTrie),
    /// `"needle" in X` (and `not in`): sticky containment via a KMP
    /// match-length automaton; once the needle occurred the state pins to
    /// [`DEAD`] (here meaning "contained", equally absorbing).
    Needle(Kmp),
    /// `stops_at(X, "phrase")`: non-sticky KMP match length. State `m`
    /// (full match) means the value currently *ends with* the phrase; the
    /// failure chain of the state encodes every prefix-suffix overlap the
    /// containment masking of stop phrases depends on.
    Stop(Kmp),
    /// `X in "haystack"`: bitmask of haystack positions where an
    /// occurrence of the value currently ends (haystack ≤ 63 chars).
    Substring(Hay),
    /// `len(X) ⋈ n` / `len(characters(X)) ⋈ n`: character count,
    /// saturated at `cap` (all counts ≥ cap are equivalent under `⋈ n`
    /// when `cap > n + 1`).
    CharLen { cap: u64 },
    /// `len(words(X)) ⋈ n`: `(word_count saturated at cap, ends in
    /// non-whitespace)` packed as `(wc << 1) | ends_nonws`.
    WordLen { cap: u64 },
    /// `int(X)`-style shape tracking: empty / whitespace-only / lone
    /// minus / digits / invalid.
    IntShape,
}

impl LeafDfa {
    /// State of the empty value.
    pub(crate) fn start(&self) -> u64 {
        match self {
            LeafDfa::Const => 0,
            LeafDfa::Options(_) => 0,
            LeafDfa::Needle(_) | LeafDfa::Stop(_) => 0,
            LeafDfa::Substring(h) => h.full,
            LeafDfa::CharLen { .. } => 0,
            LeafDfa::WordLen { .. } => 0,
            LeafDfa::IntShape => int_shape::EMPTY,
        }
    }

    /// Transition on one character of the hole value.
    pub(crate) fn advance(&self, state: u64, c: char) -> u64 {
        match self {
            LeafDfa::Const => 0,
            LeafDfa::Options(t) => t.advance(state, c),
            LeafDfa::Needle(k) => {
                if state == DEAD {
                    return DEAD; // needle already contained: sticky
                }
                let next = k.advance(state as usize, c);
                if next == k.len() {
                    DEAD
                } else {
                    next as u64
                }
            }
            LeafDfa::Stop(k) => k.advance(state as usize, c) as u64,
            LeafDfa::Substring(h) => h.advance(state, c),
            LeafDfa::CharLen { cap } => (state + 1).min(*cap),
            LeafDfa::WordLen { cap } => {
                let ends_nonws = state & 1 == 1;
                let wc = state >> 1;
                if c.is_whitespace() {
                    wc << 1
                } else if ends_nonws {
                    state
                } else {
                    ((wc + 1).min(*cap) << 1) | 1
                }
            }
            LeafDfa::IntShape => int_shape::advance(state, c),
        }
    }
}

/// Prefix trie over a finite option set, for `X in [...]` / `X == "s"`.
///
/// State is the trie node reached by the value's characters, or [`DEAD`]
/// once the value leaves the option language's prefix closure. Which
/// options remain reachable — and whether the current value *is* an
/// option — is a function of the node alone.
pub(crate) struct CharTrie {
    /// `next[node]` maps a character to the child node id.
    next: Vec<HashMap<char, u32>>,
}

/// Hard cap on trie size so pathological option lists fall back to the
/// FollowMap path instead of ballooning compile time.
pub(crate) const MAX_TRIE_NODES: usize = 4096;

impl CharTrie {
    /// Builds the trie; `None` if the option set exceeds [`MAX_TRIE_NODES`].
    pub(crate) fn new<S: AsRef<str>>(options: &[S]) -> Option<Self> {
        let mut next: Vec<HashMap<char, u32>> = vec![HashMap::new()];
        for opt in options {
            let mut node = 0usize;
            for c in opt.as_ref().chars() {
                node = match next[node].get(&c).copied() {
                    Some(child) => child as usize,
                    None => {
                        let id = next.len();
                        if id > MAX_TRIE_NODES {
                            return None;
                        }
                        next[node].insert(c, id as u32);
                        next.push(HashMap::new());
                        id
                    }
                };
            }
        }
        Some(CharTrie { next })
    }

    fn advance(&self, state: u64, c: char) -> u64 {
        if state == DEAD {
            return DEAD;
        }
        self.next[state as usize]
            .get(&c)
            .map_or(DEAD, |&n| u64::from(n))
    }
}

/// Knuth-Morris-Pratt match-length automaton for a fixed pattern.
///
/// The state `l ∈ 0..=m` is the length of the longest pattern prefix that
/// is a suffix of the value — exactly the quantity `ends_with` /
/// containment checks on a growing string depend on.
pub(crate) struct Kmp {
    pat: Vec<char>,
    /// `fail[l]`: longest proper prefix of `pat[..l]` that is also its
    /// suffix (`fail.len() == pat.len() + 1`).
    fail: Vec<u32>,
}

impl Kmp {
    /// Builds the automaton. The pattern must be non-empty (empty
    /// patterns are compiled as [`LeafDfa::Const`]).
    pub(crate) fn new(pattern: &str) -> Self {
        let pat: Vec<char> = pattern.chars().collect();
        assert!(!pat.is_empty(), "empty KMP pattern");
        let m = pat.len();
        let mut fail = vec![0u32; m + 1];
        let mut k = 0usize;
        for i in 1..m {
            while k > 0 && pat[i] != pat[k] {
                k = fail[k] as usize;
            }
            if pat[i] == pat[k] {
                k += 1;
            }
            fail[i + 1] = k as u32;
        }
        Kmp { pat, fail }
    }

    pub(crate) fn len(&self) -> usize {
        self.pat.len()
    }

    fn advance(&self, mut l: usize, c: char) -> usize {
        let m = self.pat.len();
        if l == m {
            l = self.fail[m] as usize;
        }
        loop {
            if self.pat[l] == c {
                return l + 1;
            }
            if l == 0 {
                return 0;
            }
            l = self.fail[l] as usize;
        }
    }
}

/// End-position bitmask automaton for `X in "haystack"`.
///
/// Bit `e` of the state is set iff an occurrence of the value ends just
/// before haystack position `e` (so the empty value sets bits `0..=n`).
/// A zero state means the value is not a substring — and never will be
/// again — so `0` doubles as the dead state.
pub(crate) struct Hay {
    /// `pos[c]`: bit `e` set iff `haystack[e] == c` (char index).
    pos: HashMap<char, u64>,
    /// Bits `0..=n` where `n` is the haystack length in chars.
    full: u64,
}

/// Haystacks longer than this don't fit the u64 end-position mask and
/// fall back to the FollowMap path.
pub(crate) const MAX_HAY_CHARS: usize = 63;

impl Hay {
    /// `None` if the haystack exceeds [`MAX_HAY_CHARS`].
    pub(crate) fn new(haystack: &str) -> Option<Self> {
        let chars: Vec<char> = haystack.chars().collect();
        if chars.len() > MAX_HAY_CHARS {
            return None;
        }
        let mut pos: HashMap<char, u64> = HashMap::new();
        for (e, c) in chars.iter().enumerate() {
            *pos.entry(*c).or_insert(0) |= 1u64 << e;
        }
        let full = ((1u128 << (chars.len() + 1)) - 1) as u64;
        Some(Hay { pos, full })
    }

    fn advance(&self, state: u64, c: char) -> u64 {
        (state & self.pos.get(&c).copied().unwrap_or(0)) << 1
    }
}

/// `int(X)` shape classes.
///
/// Whitespace-only is distinct from empty because the evaluator's
/// fast-path trims the value while the strict `is_int_string` check does
/// not — the two classes admit different continuations.
pub(crate) mod int_shape {
    pub(crate) const EMPTY: u64 = 0;
    pub(crate) const WS_ONLY: u64 = 1;
    pub(crate) const MINUS: u64 = 2;
    pub(crate) const DIGITS: u64 = 3;
    pub(crate) const INVALID: u64 = 4;

    pub(crate) fn advance(state: u64, c: char) -> u64 {
        match state {
            EMPTY => {
                if c == '-' {
                    MINUS
                } else if c.is_ascii_digit() {
                    DIGITS
                } else if c.is_whitespace() {
                    WS_ONLY
                } else {
                    INVALID
                }
            }
            WS_ONLY => {
                if c.is_whitespace() {
                    WS_ONLY
                } else {
                    INVALID
                }
            }
            MINUS | DIGITS => {
                if c.is_ascii_digit() {
                    DIGITS
                } else {
                    INVALID
                }
            }
            _ => INVALID,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(leaf: &LeafDfa, value: &str) -> u64 {
        let mut s = leaf.start();
        for c in value.chars() {
            s = leaf.advance(s, c);
        }
        s
    }

    #[test]
    fn kmp_state_is_longest_suffix_prefix() {
        let kmp = Kmp::new("abab");
        for value in ["", "a", "ab", "aba", "abab", "ababa", "xabay", "bbab"] {
            let mut l = 0usize;
            for c in value.chars() {
                l = kmp.advance(l, c);
            }
            // Reference: longest pattern prefix that suffixes the value.
            let expected = (0..=4)
                .rev()
                .find(|&k| {
                    let prefix: String = "abab".chars().take(k).collect();
                    value.ends_with(&prefix)
                })
                .unwrap();
            // KMP only tracks ≤ the first full match boundary the same
            // way; for these inputs no overshoot occurs except via the
            // failure restart, which the reference also reflects.
            assert_eq!(l, expected, "value {value:?}");
        }
    }

    #[test]
    fn needle_is_sticky_on_containment() {
        let leaf = LeafDfa::Needle(Kmp::new("ab"));
        assert_eq!(run(&leaf, "xaxbx"), 0);
        assert_eq!(run(&leaf, "xa"), 1);
        assert_eq!(run(&leaf, "xab"), DEAD);
        assert_eq!(run(&leaf, "xabzzz"), DEAD);
    }

    #[test]
    fn stop_state_marks_suffix_match() {
        let leaf = LeafDfa::Stop(Kmp::new("."));
        assert_eq!(run(&leaf, "done"), 0);
        assert_eq!(run(&leaf, "done."), 1);
        assert_eq!(run(&leaf, "done.x"), 0);
    }

    #[test]
    fn options_trie_tracks_prefix_membership() {
        let trie = CharTrie::new(&["ab", "abc", "x"]).unwrap();
        let leaf = LeafDfa::Options(trie);
        assert_ne!(run(&leaf, "ab"), DEAD);
        assert_ne!(run(&leaf, "abc"), DEAD);
        assert_eq!(run(&leaf, "abd"), DEAD);
        assert_eq!(run(&leaf, "y"), DEAD);
        // "a" and "ab" reach different nodes (different continuations).
        assert_ne!(run(&leaf, "a"), run(&leaf, "ab"));
    }

    #[test]
    fn substring_mask_matches_naive_containment() {
        let hay = "abracadabra";
        let leaf = LeafDfa::Substring(Hay::new(hay).unwrap());
        for value in ["", "a", "ab", "abra", "cad", "bb", "abracadabra", "ra"] {
            let alive = run(&leaf, value) != 0;
            assert_eq!(alive, hay.contains(value), "value {value:?}");
        }
        // End positions distinguish e.g. "abra" (two occurrences) from
        // "cada" (one): they admit different next characters.
        assert_ne!(run(&leaf, "abra"), run(&leaf, "cada"));
    }

    #[test]
    fn int_shape_classes() {
        let leaf = LeafDfa::IntShape;
        assert_eq!(run(&leaf, ""), int_shape::EMPTY);
        assert_eq!(run(&leaf, "  "), int_shape::WS_ONLY);
        assert_eq!(run(&leaf, "-"), int_shape::MINUS);
        assert_eq!(run(&leaf, "-42"), int_shape::DIGITS);
        assert_eq!(run(&leaf, "42"), int_shape::DIGITS);
        assert_eq!(run(&leaf, "4x"), int_shape::INVALID);
        assert_eq!(run(&leaf, " 4"), int_shape::INVALID);
        assert_eq!(run(&leaf, "--"), int_shape::INVALID);
    }

    #[test]
    fn word_len_counts_like_split_whitespace() {
        let leaf = LeafDfa::WordLen { cap: 64 };
        for value in ["", "a", "a b", " a  b ", "one two three", "  "] {
            let s = run(&leaf, value);
            assert_eq!(
                (s >> 1) as usize,
                value.split_whitespace().count(),
                "value {value:?}"
            );
            assert_eq!(
                s & 1 == 1,
                value.chars().last().is_some_and(|c| !c.is_whitespace()),
                "value {value:?}"
            );
        }
    }

    #[test]
    fn char_len_saturates_at_cap() {
        let leaf = LeafDfa::CharLen { cap: 4 };
        assert_eq!(run(&leaf, "abc"), 3);
        assert_eq!(run(&leaf, "abcd"), 4);
        assert_eq!(run(&leaf, "abcdefgh"), 4);
    }
}
