//! The BM25 index as a first-class LMQL tool.
//!
//! Queries `import retrieval` and call:
//!
//! - `retrieval.search(query)` — the top-k chunk texts joined by
//!   newlines, for splicing evidence into the prompt,
//! - `retrieval.spans(query)` — the candidate answer spans of the top-k
//!   chunks as a list of strings, for the dynamic-set constraint
//!   `where ANSWER in retrieved_spans` (assign the list to a scope
//!   variable; the FOLLOW machinery masks decoding to exactly those
//!   values),
//! - `retrieval.top(query, k)` — the top-`k` chunk texts as a list.
//!
//! The index is immutable after construction and BM25 ranking is
//! deterministic, so the tool meets the [`Tool`] determinism contract
//! by construction.

use crate::bm25::{answer_spans, Bm25Index};
use lmql::{Tool, ToolSchema, Value};
use std::sync::Arc;

/// A [`Bm25Index`] exposed to queries as the `retrieval` module.
#[derive(Debug, Clone)]
pub struct RetrievalTool {
    index: Arc<Bm25Index>,
    /// Hits consulted by `search`/`spans` (default 3).
    k: usize,
}

impl RetrievalTool {
    /// A tool over `index` consulting the top `k` hits per call.
    pub fn new(index: Arc<Bm25Index>, k: usize) -> Self {
        RetrievalTool { index, k: k.max(1) }
    }

    /// The underlying index.
    pub fn index(&self) -> &Bm25Index {
        &self.index
    }

    /// Top-k chunk texts for `query`, best first.
    fn texts(&self, query: &str, k: usize) -> Vec<&str> {
        self.index.search_texts(query, k)
    }

    /// Candidate answer spans of the top-k chunks, first-appearance
    /// order, deduplicated across chunks.
    pub fn spans(&self, query: &str) -> Vec<String> {
        let mut spans: Vec<String> = Vec::new();
        for text in self.texts(query, self.k) {
            for span in answer_spans(text) {
                if !spans.contains(&span) {
                    spans.push(span);
                }
            }
        }
        spans
    }
}

impl Tool for RetrievalTool {
    fn name(&self) -> &str {
        "retrieval"
    }

    fn schema(&self) -> ToolSchema {
        ToolSchema::new(
            "retrieval",
            "BM25 search over the configured corpus (DESIGN.md §16)",
        )
        .function(
            "search",
            &["query"],
            "top-k matching chunks joined by newlines (evidence for the prompt)",
        )
        .function(
            "spans",
            &["query"],
            "candidate answer spans of the top-k chunks, as a list for `ANSWER in spans`",
        )
        .function("top", &["query", "k"], "top-k chunk texts as a list")
    }

    fn invoke(&self, func: &str, args: &[Value]) -> Result<Value, String> {
        let query = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| format!("retrieval.{func} expects a query string"))?;
        match func {
            "search" => Ok(Value::Str(self.texts(query, self.k).join("\n"))),
            "spans" => Ok(Value::List(
                self.spans(query).into_iter().map(Value::Str).collect(),
            )),
            "top" => {
                let k = args
                    .get(1)
                    .and_then(Value::as_int)
                    .ok_or("retrieval.top expects (query, k)")?;
                let k = usize::try_from(k).map_err(|_| "k must be non-negative".to_owned())?;
                Ok(Value::List(
                    self.texts(query, k)
                        .into_iter()
                        .map(|t| Value::Str(t.to_owned()))
                        .collect(),
                ))
            }
            other => Err(format!("retrieval has no function `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::{Bm25Index, ChunkConfig, Document};
    use crate::corpus::FactCorpus;

    fn tool() -> RetrievalTool {
        let corpus = FactCorpus::generate(8, 5);
        let index = Bm25Index::build(&corpus.documents, ChunkConfig::default());
        RetrievalTool::new(Arc::new(index), 3)
    }

    #[test]
    fn search_returns_evidence_text() {
        let corpus = FactCorpus::generate(8, 5);
        let q = &corpus.questions[0];
        let out = tool()
            .invoke("search", &[Value::Str(q.question.clone())])
            .unwrap();
        let text = out.as_str().unwrap();
        assert!(text.contains(&q.answer), "{text} missing {}", q.answer);
    }

    #[test]
    fn spans_lists_the_gold_answer() {
        let corpus = FactCorpus::generate(8, 5);
        for q in corpus.questions.iter().take(6) {
            let out = tool()
                .invoke("spans", &[Value::Str(q.question.clone())])
                .unwrap();
            let Value::List(spans) = out else {
                panic!("spans must return a list")
            };
            assert!(
                spans.iter().any(|s| s.as_str() == Some(q.answer.as_str())),
                "{:?} missing from spans {spans:?}",
                q.answer
            );
        }
    }

    #[test]
    fn top_respects_k_and_rejects_bad_args() {
        let t = tool();
        let out = t
            .invoke("top", &[Value::Str("capital".into()), Value::Int(2)])
            .unwrap();
        let Value::List(items) = out else {
            panic!("top must return a list")
        };
        assert!(items.len() <= 2);
        assert!(t.invoke("top", &[Value::Str("x".into())]).is_err());
        assert!(t.invoke("nope", &[Value::Str("x".into())]).is_err());
    }

    #[test]
    fn empty_index_yields_empty_results() {
        let index = Bm25Index::build(&[] as &[Document], ChunkConfig::default());
        let t = RetrievalTool::new(Arc::new(index), 3);
        assert_eq!(
            t.invoke("search", &[Value::Str("q".into())]),
            Ok(Value::Str(String::new()))
        );
        assert_eq!(
            t.invoke("spans", &[Value::Str("q".into())]),
            Ok(Value::List(Vec::new()))
        );
    }
}
