//! Retrieval-augmented and long-context workloads (ROADMAP item 4,
//! DESIGN.md §16).
//!
//! The paper's augmented queries call *point* tools (a calculator, a
//! wiki lookup). This crate opens the next workload family: queries
//! over corpora too large to prompt wholesale, where the query body
//! *retrieves* evidence mid-decode and the `where` clause *constrains*
//! the answer to retrieved spans (`ANSWER in retrieved_spans` — the
//! dynamic-set constraint, masked by the unchanged FOLLOW machinery).
//!
//! - [`bm25`] — a chunked inverted index with BM25 ranking and strictly
//!   deterministic tie-breaks (same corpus + query ⇒ same ranking, on
//!   every platform; decoders replay tool calls, so this is a
//!   correctness requirement, not a nicety),
//! - [`corpus`] — a seeded synthetic fact corpus with gold QA pairs,
//!   plus a plain-text loader (`lmql-run --corpus`),
//! - [`niah`] — a needle-in-a-haystack generator for long-context
//!   search evals (filler haystack + planted needle facts),
//! - [`tool`] — [`RetrievalTool`]: the index as a first-class
//!   [`lmql::Tool`] exporting `retrieval.search` / `retrieval.spans`,
//! - [`session`] — a multi-turn chat store with a declarative
//!   retention/eviction policy, exposed as the `context` tool.

pub mod bm25;
pub mod corpus;
pub mod niah;
pub mod session;
pub mod tool;

pub use bm25::{Bm25Index, Chunk, ChunkConfig, Document, SearchHit};
pub use corpus::{load_plain_text, FactCorpus, QaInstance};
pub use niah::NiahCorpus;
pub use session::{ChatSession, RetentionPolicy, SessionTool, Turn};
pub use tool::RetrievalTool;
