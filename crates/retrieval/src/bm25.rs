//! A chunked inverted index with BM25 ranking.
//!
//! Documents are split into fixed-size word chunks (with overlap, so a
//! fact straddling a boundary is whole in at least one chunk), terms
//! are lowercased alphanumeric words, and queries rank chunks by the
//! classic BM25 weight. Everything about the ranking is deterministic:
//! scores compare by `f64::total_cmp` and ties break on ascending chunk
//! id, so the same corpus and query produce the same hit list on every
//! run and platform — decoders clone and replay executions, and a tool
//! that reordered equal-scored hits between replays would desynchronise
//! beams.

use std::collections::{BTreeMap, HashMap};

/// BM25 term-frequency saturation parameter (standard value).
const K1: f64 = 1.2;
/// BM25 length-normalisation parameter (standard value).
const B: f64 = 0.75;

/// One source document handed to [`Bm25Index::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Display title (searchable, prepended to the first chunk's text
    /// weight by being part of the document body is *not* done — titles
    /// are metadata only).
    pub title: String,
    /// Full text.
    pub text: String,
}

impl Document {
    /// A document.
    pub fn new(title: impl Into<String>, text: impl Into<String>) -> Self {
        Document {
            title: title.into(),
            text: text.into(),
        }
    }
}

/// Chunking tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Maximum words per chunk.
    pub chunk_words: usize,
    /// Words of overlap between consecutive chunks of one document.
    pub overlap_words: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig {
            chunk_words: 48,
            overlap_words: 8,
        }
    }
}

/// One indexed chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the source document in build order.
    pub doc: usize,
    /// Position of this chunk within its document (0-based).
    pub seq: usize,
    /// The chunk text (whitespace-normalised).
    pub text: String,
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`Bm25Index::chunks`].
    pub chunk: usize,
    /// BM25 relevance score (> 0; zero-scored chunks are not returned).
    pub score: f64,
}

/// The inverted index: chunked corpus + per-term postings with BM25
/// scoring.
#[derive(Debug, Clone)]
pub struct Bm25Index {
    chunks: Vec<Chunk>,
    /// term → (chunk id, term frequency), ascending chunk id. A
    /// `BTreeMap` keeps iteration order (and thus floating-point
    /// accumulation order) independent of hash seeding.
    postings: BTreeMap<String, Vec<(usize, u32)>>,
    /// Words per chunk, parallel to `chunks`.
    lengths: Vec<u32>,
    avg_len: f64,
}

/// Lowercased alphanumeric terms of `text`, in order.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms
}

/// Splits `text` into whitespace words, grouped into overlapping chunks.
fn chunk_words(text: &str, config: ChunkConfig) -> Vec<String> {
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.is_empty() {
        return Vec::new();
    }
    let size = config.chunk_words.max(1);
    let stride = size.saturating_sub(config.overlap_words).max(1);
    let mut chunks = Vec::new();
    let mut start = 0;
    loop {
        let end = (start + size).min(words.len());
        chunks.push(words[start..end].join(" "));
        if end == words.len() {
            return chunks;
        }
        start += stride;
    }
}

impl Bm25Index {
    /// Chunks and indexes `docs`.
    pub fn build(docs: &[Document], config: ChunkConfig) -> Self {
        let mut chunks = Vec::new();
        let mut postings: BTreeMap<String, Vec<(usize, u32)>> = BTreeMap::new();
        let mut lengths = Vec::new();
        for (doc_id, doc) in docs.iter().enumerate() {
            for (seq, text) in chunk_words(&doc.text, config).into_iter().enumerate() {
                let chunk_id = chunks.len();
                let terms = tokenize(&text);
                lengths.push(terms.len() as u32);
                let mut freqs: HashMap<String, u32> = HashMap::new();
                for term in terms {
                    *freqs.entry(term).or_insert(0) += 1;
                }
                for (term, tf) in freqs {
                    postings.entry(term).or_default().push((chunk_id, tf));
                }
                chunks.push(Chunk {
                    doc: doc_id,
                    seq,
                    text,
                });
            }
        }
        // Postings were appended in ascending chunk id per term already;
        // sort anyway so the invariant survives refactors of the loop.
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|(chunk, _)| *chunk);
        }
        let avg_len = if lengths.is_empty() {
            0.0
        } else {
            lengths.iter().map(|&l| l as f64).sum::<f64>() / lengths.len() as f64
        };
        Bm25Index {
            chunks,
            postings,
            lengths,
            avg_len,
        }
    }

    /// The indexed chunks, in document/chunk order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the index holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// The top-`k` chunks for `query` by BM25 score, descending;
    /// equal scores break on ascending chunk id. Only chunks matching
    /// at least one query term are returned, so fewer than `k` hits
    /// (or none) is possible.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.chunks.is_empty() {
            return Vec::new();
        }
        let n = self.chunks.len() as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        let mut query_terms = tokenize(query);
        // Score each distinct term once (duplicate query terms would
        // double-weight without changing the ranking semantics we want).
        query_terms.sort_unstable();
        query_terms.dedup();
        for term in &query_terms {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            let df = list.len() as f64;
            // BM25+-style floor: keep idf positive for very common terms.
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(chunk, tf) in list {
                let tf = tf as f64;
                let len_norm = 1.0 - B + B * (self.lengths[chunk] as f64 / self.avg_len.max(1.0));
                let weight = idf * (tf * (K1 + 1.0)) / (tf + K1 * len_norm);
                *scores.entry(chunk).or_insert(0.0) += weight;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(chunk, score)| SearchHit { chunk, score })
            .collect();
        hits.sort_unstable_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.chunk.cmp(&b.chunk))
        });
        hits.truncate(k);
        hits
    }

    /// The texts of the top-`k` chunks for `query`, best first.
    pub fn search_texts(&self, query: &str, k: usize) -> Vec<&str> {
        self.search(query, k)
            .into_iter()
            .map(|h| self.chunks[h.chunk].text.as_str())
            .collect()
    }
}

/// Candidate answer spans of `text`: maximal runs of capitalised words
/// (proper-noun phrases) plus standalone numbers, deduplicated in first-
/// appearance order. Sentence-initial function words are filtered by a
/// small stoplist, which is reliable on the controlled synthetic corpora
/// this crate bundles (it is a heuristic, not NLP).
pub fn answer_spans(text: &str) -> Vec<String> {
    const STOP: &[&str] = &[
        "A", "An", "The", "It", "Its", "In", "On", "At", "Of", "For", "And", "But", "This", "That",
        "These", "Those", "There", "Is", "Are", "Was", "Were", "Not", "No", "Yes",
    ];
    fn flush(run: &mut Vec<String>, spans: &mut Vec<String>) {
        if !run.is_empty() {
            let span = run.join(" ");
            if !spans.contains(&span) {
                spans.push(span);
            }
            run.clear();
        }
    }
    let mut spans: Vec<String> = Vec::new();
    let mut run: Vec<String> = Vec::new();
    for word in text.split_whitespace() {
        let clean = word.trim_matches(|c: char| !c.is_alphanumeric());
        let capitalised =
            clean.chars().next().is_some_and(char::is_uppercase) && !STOP.contains(&clean);
        let numeric = !clean.is_empty() && clean.chars().all(|c| c.is_ascii_digit());
        if capitalised || numeric {
            run.push(clean.to_owned());
        } else {
            flush(&mut run, &mut spans);
        }
        // A word ending a sentence ends its span run even if capitalised.
        if word.ends_with(['.', '!', '?', ';', ':']) {
            flush(&mut run, &mut spans);
        }
    }
    flush(&mut run, &mut spans);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Document> {
        vec![
            Document::new(
                "Aurelia",
                "The capital of Aurelia is Castellan. The currency of Aurelia is the florin.",
            ),
            Document::new(
                "Borenia",
                "The capital of Borenia is Veltara. Borenia exports timber and salt.",
            ),
            Document::new(
                "Filler",
                "Rivers flow through valleys. Markets open at dawn and close at dusk.",
            ),
        ]
    }

    #[test]
    fn search_finds_the_relevant_chunk() {
        let index = Bm25Index::build(&corpus(), ChunkConfig::default());
        let hits = index.search("capital of Aurelia", 2);
        assert!(!hits.is_empty());
        assert!(index.chunks()[hits[0].chunk].text.contains("Castellan"));
    }

    #[test]
    fn ranking_is_deterministic_across_rebuilds() {
        let a = Bm25Index::build(&corpus(), ChunkConfig::default());
        let b = Bm25Index::build(&corpus(), ChunkConfig::default());
        for query in ["capital", "Aurelia florin", "timber salt", "dawn"] {
            assert_eq!(a.search(query, 10), b.search(query, 10), "query {query}");
        }
    }

    #[test]
    fn equal_scores_break_on_chunk_id() {
        // Two identical documents: identical scores, ascending ids.
        let docs = vec![
            Document::new("x", "alpha beta gamma"),
            Document::new("y", "alpha beta gamma"),
        ];
        let index = Bm25Index::build(&docs, ChunkConfig::default());
        let hits = index.search("alpha", 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].score, hits[1].score);
        assert!(hits[0].chunk < hits[1].chunk);
    }

    #[test]
    fn chunking_overlaps_and_covers() {
        let words: Vec<String> = (0..100).map(|i| format!("w{i}")).collect();
        let text = words.join(" ");
        let cfg = ChunkConfig {
            chunk_words: 30,
            overlap_words: 10,
        };
        let chunks = chunk_words(&text, cfg);
        assert!(chunks.len() > 3);
        // Consecutive chunks share their overlap.
        for pair in chunks.windows(2) {
            let first: Vec<&str> = pair[0].split_whitespace().collect();
            let second: Vec<&str> = pair[1].split_whitespace().collect();
            assert_eq!(first[first.len() - 10..], second[..10]);
        }
        // Every word appears somewhere.
        let joined = chunks.join(" ");
        for w in &words {
            assert!(joined.contains(w.as_str()));
        }
    }

    #[test]
    fn unmatched_query_returns_no_hits() {
        let index = Bm25Index::build(&corpus(), ChunkConfig::default());
        assert!(index.search("zzz qqq", 5).is_empty());
    }

    #[test]
    fn answer_spans_extracts_proper_nouns_and_numbers() {
        let spans = answer_spans(
            "The capital of Aurelia is Castellan. It was founded in 1482 by Mira Voss.",
        );
        assert_eq!(spans, vec!["Aurelia", "Castellan", "1482", "Mira Voss"]);
    }
}
