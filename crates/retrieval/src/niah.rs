//! Needle-in-a-haystack corpus generation for long-context evals.
//!
//! The rustrlm repo's `generate_s_niah.py` pattern, Rust-native and
//! seeded: a haystack of repetitive filler documents with `needles` —
//! single planted fact sentences ("The access code for the Meridian
//! vault is 4172.") — inserted at seeded positions. A long-context
//! query cannot prompt the whole haystack; it must *find* the needle
//! (here: by iterative retrieval) and then answer under the
//! `ANSWER in retrieved_spans` constraint.

use crate::bm25::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Invented project names the needles attach to (capitalised, so the
/// needle subject — but not the filler — survives span extraction).
const PROJECTS: &[&str] = &[
    "Meridian",
    "Copperfield",
    "Halcyon",
    "Ironwood",
    "Larkspur",
    "Nocturne",
    "Palisade",
    "Quicksilver",
    "Riverbed",
    "Saffron",
    "Tallgrass",
    "Umberline",
    "Vantage",
    "Willowbark",
    "Yellowstone",
    "Zephyr",
];

/// Filler sentence stock — deliberately lowercase-content so filler
/// never contributes answer spans.
const FILLER: &[&str] = &[
    "the quarterly report restates figures from the previous appendix.",
    "meeting minutes were circulated to all departments for review.",
    "the maintenance window was extended by several hours overnight.",
    "inventory counts reconcile against the ledger at month end.",
    "the shuttle schedule changes during the holiday period.",
    "staff are reminded to renew their access badges before expiry.",
    "the cafeteria menu rotates on a two week cycle.",
    "archived records move to cold storage after five years.",
];

/// One planted needle: the fact sentence and its gold answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Needle {
    /// Project the fact is about (appears in the question).
    pub project: String,
    /// The gold answer (a 4-digit code: always a clean span).
    pub code: String,
    /// Index of the haystack document holding the needle.
    pub doc: usize,
}

/// A generated haystack with its planted needles.
#[derive(Debug, Clone)]
pub struct NiahCorpus {
    /// The haystack documents, needles embedded.
    pub documents: Vec<Document>,
    /// The planted needles, in plant order.
    pub needles: Vec<Needle>,
}

impl NiahCorpus {
    /// Generates `docs` filler documents of roughly `sentences_per_doc`
    /// sentences, planting one needle per entry of `needles` distinct
    /// projects, seeded.
    pub fn generate(docs: usize, sentences_per_doc: usize, needles: usize, seed: u64) -> Self {
        assert!(needles <= docs, "at most one needle per document");
        assert!(needles <= PROJECTS.len(), "project name stock exhausted");
        let mut rng = StdRng::seed_from_u64(seed);

        // Needle placement: distinct documents, seeded choice.
        let mut slots: Vec<usize> = (0..docs).collect();
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            slots.swap(i, j);
        }
        let mut planted = Vec::new();
        let mut documents = Vec::with_capacity(docs);
        for doc_id in 0..docs {
            let mut sentences: Vec<String> = (0..sentences_per_doc)
                .map(|_| FILLER[rng.gen_range(0..FILLER.len())].to_owned())
                .collect();
            if let Some(nth) = slots[..needles].iter().position(|&s| s == doc_id) {
                let project = PROJECTS[nth].to_owned();
                let code = format!("{}", rng.gen_range(1000..10_000));
                let sentence = format!("The access code for the {project} vault is {code}.");
                let at = rng.gen_range(0..sentences.len() + 1);
                sentences.insert(at, sentence);
                planted.push(Needle {
                    project,
                    code,
                    doc: doc_id,
                });
            }
            documents.push(Document::new(
                format!("memo-{doc_id:04}"),
                sentences.join(" "),
            ));
        }
        // Keep needles in project-stock order for stable iteration.
        planted.sort_by_key(|n| n.doc);
        NiahCorpus {
            documents,
            needles: planted,
        }
    }

    /// The question asking for `needle`'s code.
    pub fn question(needle: &Needle) -> String {
        format!("What is the access code for the {} vault?", needle.project)
    }

    /// Total corpus size in whitespace words — the "context length" a
    /// prompt-everything baseline would pay for.
    pub fn total_words(&self) -> usize {
        self.documents
            .iter()
            .map(|d| d.text.split_whitespace().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::{answer_spans, Bm25Index, ChunkConfig};

    #[test]
    fn generation_is_seeded() {
        let a = NiahCorpus::generate(20, 12, 4, 11);
        let b = NiahCorpus::generate(20, 12, 4, 11);
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.needles, b.needles);
        assert_eq!(a.needles.len(), 4);
    }

    #[test]
    fn needles_sit_in_distinct_documents() {
        let corpus = NiahCorpus::generate(16, 10, 6, 3);
        let mut docs: Vec<usize> = corpus.needles.iter().map(|n| n.doc).collect();
        docs.dedup();
        assert_eq!(docs.len(), 6);
        for n in &corpus.needles {
            assert!(corpus.documents[n.doc].text.contains(&n.code));
        }
    }

    #[test]
    fn retrieval_surfaces_each_needle_code_as_a_span() {
        let corpus = NiahCorpus::generate(24, 14, 5, 9);
        let index = Bm25Index::build(&corpus.documents, ChunkConfig::default());
        for needle in &corpus.needles {
            let texts = index.search_texts(&NiahCorpus::question(needle), 3);
            let spans: Vec<String> = texts.iter().flat_map(|t| answer_spans(t)).collect();
            assert!(
                spans.iter().any(|s| s == &needle.code),
                "needle {needle:?} not found in {spans:?}"
            );
        }
    }
}
