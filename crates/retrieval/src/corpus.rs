//! Seeded synthetic corpora with gold QA labels.
//!
//! Real retrieval corpora (Wikipedia dumps, HotpotQA contexts) are not
//! available offline, so — like `lmql-datasets` — this module generates
//! a seeded synthetic world: invented countries, capitals, currencies
//! and founders, written up as short encyclopedia articles padded with
//! filler prose. Every fact is unique (one country per capital, one
//! capital per country), so each question has exactly one defensible
//! answer and graders need no fuzzy matching.

use crate::bm25::Document;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Name fragments for invented countries (prefix + suffix).
const COUNTRY_PRE: &[&str] = &[
    "Aur", "Bor", "Cal", "Dren", "Els", "Fen", "Gal", "Hest", "Ish", "Jor", "Kel", "Lum", "Mar",
    "Nor", "Ost", "Pel", "Quil", "Ros", "Sel", "Tor", "Umb", "Vel", "Wen", "Yor", "Zan",
];
const COUNTRY_SUF: &[&str] = &[
    "elia", "enia", "andor", "avia", "ovia", "istan", "land", "mark",
];

/// Name fragments for invented capitals.
const CITY_PRE: &[&str] = &[
    "Cast", "Velt", "Mor", "Sar", "Tal", "Bren", "Kor", "Lis", "Nav", "Or", "Pas", "Rin", "Sol",
    "Thal", "Vor", "Wick", "Zel", "Ald", "Bel", "Cor", "Dal", "Er", "Fal", "Gren", "Hal",
];
const CITY_SUF: &[&str] = &[
    "ellan", "ara", "heim", "grad", "mouth", "iko", "essa", "una",
];

/// Currencies (unique per country by indexed suffixing when exhausted).
const CURRENCIES: &[&str] = &[
    "florin", "crown", "mark", "dinar", "peso", "thaler", "ducat", "shilling", "rand", "krona",
    "lira", "guilder", "real", "rupee", "dirham", "kip", "baht", "leu", "zloty", "forint",
];

/// Founder given/family names.
const GIVEN: &[&str] = &[
    "Mira", "Anselm", "Petra", "Havel", "Ilsa", "Roderic", "Sanna", "Teodor", "Vera", "Casimir",
    "Livia", "Marek", "Odile", "Pavel", "Runa", "Stellan", "Tamsin", "Ulric", "Wanda", "Yusuf",
];
const FAMILY: &[&str] = &[
    "Voss", "Harlan", "Quist", "Merrow", "Stroud", "Calder", "Venn", "Ashford", "Brandt", "Corvi",
    "Dane", "Eklund", "Farrow", "Grieve", "Holt", "Ivers", "Kessler", "Lorne", "Moray", "Nyberg",
];

/// Filler sentences with no capitalised content words: they pad articles
/// without ever contributing a candidate answer span.
const FILLER: &[&str] = &[
    "markets open at dawn and close well after dusk.",
    "terraced fields climb from the river toward the hills.",
    "ferries cross the strait twice a day in summer.",
    "the old quarter keeps its narrow lanes and tiled roofs.",
    "winters are mild along the coast and harsh inland.",
    "trade caravans once paused here on the long road east.",
    "orchards and vineyards ring the outer districts.",
    "fishing boats crowd the harbour before every storm.",
];

/// One country's fact bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Country {
    name: String,
    capital: String,
    currency: String,
    founder: String,
    year: u32,
}

/// One gold-labelled question over the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaInstance {
    /// The natural-language question.
    pub question: String,
    /// The unique correct answer (always one retrievable span).
    pub answer: String,
    /// A plausible wrong answer of the same kind (another country's
    /// value) — what a confused model would say.
    pub distractor: String,
}

impl QaInstance {
    /// Whether `answer` matches the gold label (exact, trimmed).
    pub fn is_correct(&self, answer: &str) -> bool {
        answer.trim() == self.answer
    }
}

/// A generated fact corpus: articles plus gold QA pairs over them.
#[derive(Debug, Clone)]
pub struct FactCorpus {
    /// One article per country.
    pub documents: Vec<Document>,
    /// Gold QA pairs, in generation order.
    pub questions: Vec<QaInstance>,
}

/// Picks `n` distinct `pre`+`suf` combinations.
fn distinct_names(rng: &mut StdRng, pre: &[&str], suf: &[&str], n: usize) -> Vec<String> {
    let mut all: Vec<String> = pre
        .iter()
        .flat_map(|p| suf.iter().map(move |s| format!("{p}{s}")))
        .collect();
    all.shuffle(rng);
    all.truncate(n);
    assert_eq!(all.len(), n, "name space too small for {n} entities");
    all
}

impl FactCorpus {
    /// Generates a corpus of `countries` articles and one question per
    /// fact kind per country (capital, currency, founder), seeded.
    pub fn generate(countries: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = distinct_names(&mut rng, COUNTRY_PRE, COUNTRY_SUF, countries);
        let capitals = distinct_names(&mut rng, CITY_PRE, CITY_SUF, countries);
        let world: Vec<Country> = names
            .into_iter()
            .zip(capitals)
            .enumerate()
            .map(|(i, (name, capital))| {
                let currency = if i < CURRENCIES.len() {
                    CURRENCIES[i].to_owned()
                } else {
                    format!(
                        "{} {}",
                        CURRENCIES[i % CURRENCIES.len()],
                        i / CURRENCIES.len() + 1
                    )
                };
                let founder = format!(
                    "{} {}",
                    GIVEN[rng.gen_range(0..GIVEN.len())],
                    FAMILY[i % FAMILY.len()]
                );
                Country {
                    name,
                    capital,
                    currency,
                    founder,
                    year: rng.gen_range(1200..1900),
                }
            })
            .collect();

        let mut documents = Vec::with_capacity(world.len());
        for c in &world {
            let mut paragraphs = vec![
                format!("The capital of {} is {}.", c.name, c.capital),
                format!("The currency of {} is the {}.", c.name, c.currency),
                format!("{} was founded by {} in {}.", c.name, c.founder, c.year),
            ];
            // Pad with filler so retrieval has to rank, not just match.
            for _ in 0..3 {
                let f = FILLER[rng.gen_range(0..FILLER.len())];
                paragraphs.push(format!("In {} {f}", c.name));
            }
            paragraphs.shuffle(&mut rng);
            documents.push(Document::new(c.name.clone(), paragraphs.join(" ")));
        }

        let mut questions = Vec::new();
        for (i, c) in world.iter().enumerate() {
            let other = &world[(i + 1) % world.len()];
            questions.push(QaInstance {
                question: format!("What is the capital of {}?", c.name),
                answer: c.capital.clone(),
                distractor: other.capital.clone(),
            });
            questions.push(QaInstance {
                question: format!("Who founded {}?", c.name),
                answer: c.founder.clone(),
                distractor: other.founder.clone(),
            });
        }
        questions.shuffle(&mut rng);
        FactCorpus {
            documents,
            questions,
        }
    }
}

/// Loads a plain-text corpus file: blank-line-separated paragraphs
/// become documents (the first sentence doubles as the title). This is
/// the `lmql-run --corpus <path>` format.
pub fn load_plain_text(content: &str) -> Vec<Document> {
    content
        .split("\n\n")
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| {
            let text = p.split_whitespace().collect::<Vec<_>>().join(" ");
            let title = text.split(['.', '!', '?']).next().unwrap_or("").to_owned();
            Document { title, text }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm25::{answer_spans, Bm25Index, ChunkConfig};

    #[test]
    fn generation_is_seeded_and_unique() {
        let a = FactCorpus::generate(12, 7);
        let b = FactCorpus::generate(12, 7);
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.questions, b.questions);
        let mut capitals: Vec<&str> = a
            .questions
            .iter()
            .filter(|q| q.question.contains("capital"))
            .map(|q| q.answer.as_str())
            .collect();
        capitals.sort_unstable();
        capitals.dedup();
        assert_eq!(capitals.len(), 12, "capitals must be unique");
    }

    #[test]
    fn every_answer_is_retrievable_as_a_span() {
        let corpus = FactCorpus::generate(10, 3);
        let index = Bm25Index::build(&corpus.documents, ChunkConfig::default());
        for q in &corpus.questions {
            let texts = index.search_texts(&q.question, 3);
            let spans: Vec<String> = texts.iter().flat_map(|t| answer_spans(t)).collect();
            assert!(
                spans.iter().any(|s| s == &q.answer),
                "answer {:?} for {:?} not in spans {:?}",
                q.answer,
                q.question,
                spans
            );
        }
    }

    #[test]
    fn plain_text_loader_splits_paragraphs() {
        let docs = load_plain_text("First doc. More text.\n\n  \nSecond doc here.\n");
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].title, "First doc");
        assert_eq!(docs[1].text, "Second doc here.");
    }
}
