//! Multi-turn chat context as a queryable store (SPL's motivation in
//! PAPERS.md): declarative retention/eviction instead of hand-tuned
//! prompt windows.
//!
//! A [`ChatSession`] accumulates turns under a [`RetentionPolicy`]: the
//! pinned head (system prompt) and the most recent `window` turns stay
//! verbatim in the rendered context; everything older is *evicted* from
//! the prompt but kept in an archive the query can search — the
//! [`SessionTool`] exports `context.recall(query)`, BM25 over evicted
//! turns. A query thus pays prompt tokens for the window plus only the
//! archived turns it actually needs, instead of the whole history.
//!
//! Determinism: tools must be pure during a decode. The session is
//! mutated *between* queries ([`ChatSession::push`]); during a decode
//! the tool only reads a snapshot, so replayed invocations agree.

use crate::bm25::{Bm25Index, ChunkConfig, Document};
use lmql::{Tool, ToolSchema, Value};
use std::sync::{Arc, RwLock};

/// One chat turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Turn {
    /// Speaker: `"system"`, `"user"` or `"assistant"`.
    pub role: String,
    /// The turn text.
    pub text: String,
}

/// Declarative retention rules for a [`ChatSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Most recent turns kept verbatim in the rendered context.
    pub window: usize,
    /// Keep the first turn (system prompt) pinned regardless of the
    /// window.
    pub pin_first: bool,
    /// Archived turns surfaced per `context.recall` call.
    pub recall_k: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            window: 4,
            pin_first: true,
            recall_k: 2,
        }
    }
}

/// An accumulating chat transcript under a retention policy.
#[derive(Debug, Clone, Default)]
pub struct ChatSession {
    turns: Vec<Turn>,
    policy: RetentionPolicy,
}

impl ChatSession {
    /// An empty session under `policy`.
    pub fn new(policy: RetentionPolicy) -> Self {
        ChatSession {
            turns: Vec::new(),
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RetentionPolicy {
        self.policy
    }

    /// Appends a turn (between queries — see the module docs).
    pub fn push(&mut self, role: impl Into<String>, text: impl Into<String>) {
        self.turns.push(Turn {
            role: role.into(),
            text: text.into(),
        });
    }

    /// All turns, oldest first.
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Indices of turns currently *retained* in the rendered context:
    /// the pinned head (if any) plus the trailing window.
    fn retained(&self) -> Vec<usize> {
        let n = self.turns.len();
        let window_start = n.saturating_sub(self.policy.window);
        let mut keep: Vec<usize> = Vec::new();
        if self.policy.pin_first && n > 0 && window_start > 0 {
            keep.push(0);
        }
        keep.extend(window_start..n);
        keep
    }

    /// Turns evicted from the rendered context (archived, recallable).
    pub fn evicted(&self) -> Vec<&Turn> {
        let retained = self.retained();
        self.turns
            .iter()
            .enumerate()
            .filter(|(i, _)| !retained.contains(i))
            .map(|(_, t)| t)
            .collect()
    }

    /// The rendered active context: retained turns as `role: text`
    /// lines, oldest first.
    pub fn render(&self) -> String {
        self.retained()
            .into_iter()
            .map(|i| format!("{}: {}", self.turns[i].role, self.turns[i].text))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The full-history rendering (what a no-eviction baseline pays
    /// for).
    pub fn render_full(&self) -> String {
        self.turns
            .iter()
            .map(|t| format!("{}: {}", t.role, t.text))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// BM25 recall over evicted turns: the `recall_k` most relevant,
    /// rendered as `role: text` lines (empty string when nothing
    /// archived matches).
    pub fn recall(&self, query: &str) -> String {
        let evicted = self.evicted();
        if evicted.is_empty() {
            return String::new();
        }
        let docs: Vec<Document> = evicted
            .iter()
            .map(|t| Document::new(t.role.clone(), t.text.clone()))
            .collect();
        // One chunk per turn: turns are short; eviction-archive recall
        // ranks whole turns.
        let index = Bm25Index::build(
            &docs,
            ChunkConfig {
                chunk_words: 1 << 20,
                overlap_words: 0,
            },
        );
        index
            .search(query, self.policy.recall_k)
            .into_iter()
            .map(|hit| {
                let turn = evicted[index.chunks()[hit.chunk].doc];
                format!("{}: {}", turn.role, turn.text)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The session as the `context` tool module: `context.recall(query)`
/// searches evicted turns, `context.window()` returns the rendered
/// active context.
#[derive(Debug, Clone)]
pub struct SessionTool {
    session: Arc<RwLock<ChatSession>>,
}

impl SessionTool {
    /// A tool over a shared session handle. The caller keeps the handle
    /// and pushes turns between queries.
    pub fn new(session: Arc<RwLock<ChatSession>>) -> Self {
        SessionTool { session }
    }
}

impl Tool for SessionTool {
    fn name(&self) -> &str {
        "context"
    }

    fn schema(&self) -> ToolSchema {
        ToolSchema::new(
            "context",
            "the chat session as a queryable store: declarative retention/eviction (DESIGN.md §16)",
        )
        .function(
            "recall",
            &["query"],
            "most relevant evicted turns for `query` (BM25 over the archive)",
        )
        .function("window", &[], "the rendered retained context")
    }

    fn invoke(&self, func: &str, args: &[Value]) -> Result<Value, String> {
        let session = self.session.read().expect("session lock poisoned");
        match func {
            "recall" => {
                let query = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or("context.recall expects a query string")?;
                Ok(Value::Str(session.recall(query)))
            }
            "window" => Ok(Value::Str(session.render())),
            other => Err(format!("context has no function `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> ChatSession {
        let mut s = ChatSession::new(RetentionPolicy {
            window: 2,
            pin_first: true,
            recall_k: 1,
        });
        s.push("system", "You are a terse assistant.");
        s.push("user", "My locker combination is 7415.");
        s.push("assistant", "Noted.");
        s.push("user", "What's the weather like?");
        s.push("assistant", "Sunny.");
        s
    }

    #[test]
    fn window_retains_pin_plus_recent() {
        let s = session();
        let rendered = s.render();
        assert!(rendered.contains("terse assistant"), "{rendered}");
        assert!(rendered.contains("Sunny"), "{rendered}");
        assert!(
            !rendered.contains("7415"),
            "evicted turn leaked: {rendered}"
        );
        assert_eq!(s.evicted().len(), 2);
    }

    #[test]
    fn recall_finds_evicted_fact() {
        let s = session();
        let recalled = s.recall("locker combination");
        assert!(recalled.contains("7415"), "{recalled}");
        assert_eq!(s.recall("zzz nothing matches"), "");
    }

    #[test]
    fn session_tool_exports_recall_and_window() {
        let tool = SessionTool::new(Arc::new(RwLock::new(session())));
        let out = tool
            .invoke("recall", &[Value::Str("locker combination".into())])
            .unwrap();
        assert!(out.as_str().unwrap().contains("7415"));
        let win = tool.invoke("window", &[]).unwrap();
        assert!(win.as_str().unwrap().contains("Sunny"));
        assert!(tool.invoke("nope", &[]).is_err());
    }

    #[test]
    fn short_sessions_evict_nothing() {
        let mut s = ChatSession::new(RetentionPolicy::default());
        s.push("user", "hello");
        assert!(s.evicted().is_empty());
        assert_eq!(s.render(), "user: hello");
        assert_eq!(s.recall("hello"), "");
    }
}
