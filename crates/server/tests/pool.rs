//! Replica-pool server acceptance: with `replicas > 1`, `SCORE`,
//! `BATCH` and `STREAM` frames route through the prefix-affinity
//! [`Router`](lmql_engine::Router) instead of a single shared
//! scheduler — and the wire results stay byte-identical to the
//! single-scheduler server, because routing never changes what a query
//! computes.

use lmql::Runtime;
use lmql_lm::{Episode, LanguageModel, ScriptedLm};
use lmql_server::{InferenceServer, RemoteLm, ServerConfig};
use lmql_tokenizer::Bpe;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

const QUERY: &str = r#"
argmax
    "Q: Where is Apple Computers headquartered?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#;

fn scripted(bpe: &Arc<Bpe>) -> Arc<ScriptedLm> {
    Arc::new(ScriptedLm::new(
        Arc::clone(bpe),
        [Episode::plain(
            "Q: Where is Apple Computers headquartered?\nA:",
            " Apple Computers is headquartered in Cupertino, California. And more trivia.",
        )],
    ))
}

fn pooled_server(replicas: usize) -> (lmql_server::ServerHandle, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn_with(
        lm,
        Arc::clone(&bpe),
        ServerConfig {
            replicas,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, bpe)
}

#[test]
fn pooled_scoring_frames_are_bit_identical_to_local() {
    let (server, bpe) = pooled_server(4);
    let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();
    let reference = scripted(&bpe);
    for prompt in ["Q:", "Q: Where", "A: Apple"] {
        let ctx = remote_bpe.encode(prompt);
        // SCORE frame.
        let remote_logits = remote.score(&ctx);
        assert_eq!(remote_logits, reference.score(&ctx), "{prompt:?} SCORE");
    }
    // BATCH frame: one decoder step's worth of contexts in one round trip.
    let contexts: Vec<Vec<lmql_tokenizer::TokenId>> = ["Q:", "A:", "Q: W"]
        .iter()
        .map(|p| remote_bpe.encode(p))
        .collect();
    let refs: Vec<&[lmql_tokenizer::TokenId]> = contexts.iter().map(Vec::as_slice).collect();
    let batched = remote.score_batch(&refs);
    for (ctx, got) in refs.iter().zip(&batched) {
        assert_eq!(*got, reference.score(ctx), "BATCH item diverged");
    }
    server.shutdown();
}

#[test]
fn pooled_stream_frame_matches_local_run() {
    let (server, bpe) = pooled_server(4);
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();
    let local = Runtime::new(scripted(&bpe) as Arc<dyn LanguageModel>, Arc::clone(&bpe))
        .run(QUERY)
        .unwrap();
    let rebuilt = remote
        .stream_query(QUERY, TIMEOUT)
        .unwrap()
        .into_result()
        .unwrap();
    assert!(rebuilt.error.is_none());
    assert_eq!(rebuilt.runs.len(), local.runs.len());
    for (got, want) in rebuilt.runs.iter().zip(&local.runs) {
        assert_eq!(got.trace, want.trace);
        assert_eq!(got.log_prob.to_bits(), want.log_prob.to_bits());
    }
    // The pool actually served it: router metrics are in the snapshot.
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("router.queries"), Some(1));
    server.shutdown();
}

#[test]
fn pooled_admission_cap_answers_busy() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn_with(
        lm,
        Arc::clone(&bpe),
        ServerConfig {
            replicas: 2,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // One frame at a time is fine (the cap is on *concurrent* frames).
    let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();
    let ctx = remote_bpe.encode("Q:");
    let reference = scripted(&bpe);
    assert_eq!(remote.score(&ctx), reference.score(&ctx));
    assert_eq!(server.metrics_snapshot().counter("router.shed"), Some(0));
    server.shutdown();
}
