//! Server-side streaming acceptance: a `STREAM` frame runs the whole
//! query on the server, `EVENT` lines reassemble client-side
//! byte-identically to a local run, and the terminal `DONE`/`RETRY`/`ERR`
//! frames carry the error taxonomy across the hop.

use lmql::{QueryEvent, Runtime};
use lmql_lm::{Episode, FaultKind, LanguageModel, LmError, LmResult, Logits, ScriptedLm};
use lmql_server::{InferenceServer, RemoteLm, ServerConfig, ServerError};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

const QUERY: &str = r#"
argmax
    "Q: Where is Apple Computers headquartered?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#;

const BEAM_QUERY: &str = r#"
beam(n=2)
    "Q: Where is Apple Computers headquartered?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#;

fn scripted(bpe: &Arc<Bpe>) -> Arc<ScriptedLm> {
    Arc::new(ScriptedLm::new(
        Arc::clone(bpe),
        [Episode::plain(
            "Q: Where is Apple Computers headquartered?\nA:",
            " Apple Computers is headquartered in Cupertino, California. And more trivia.",
        )],
    ))
}

#[test]
fn streamed_remote_query_matches_local_bit_for_bit() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);

    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();
    for query in [QUERY, BEAM_QUERY] {
        let local = Runtime::new(scripted(&bpe) as Arc<dyn LanguageModel>, Arc::clone(&bpe))
            .run(query)
            .unwrap();
        let stream = remote.stream_query(query, TIMEOUT).unwrap();
        let rebuilt = stream.into_result().unwrap();

        assert!(rebuilt.error.is_none());
        assert_eq!(rebuilt.runs.len(), local.runs.len());
        for (got, want) in rebuilt.runs.iter().zip(&local.runs) {
            assert_eq!(got.trace, want.trace, "{query:?}: trace differs");
            let want_holes: Vec<(String, String)> = want
                .hole_records
                .iter()
                .map(|r| (r.var.clone(), r.value.clone()))
                .collect();
            assert_eq!(got.holes, want_holes);
            assert_eq!(
                got.log_prob.to_bits(),
                want.log_prob.to_bits(),
                "{query:?}: log-prob not bit-exact"
            );
        }
    }
    server.shutdown();
}

#[test]
fn streamed_events_arrive_incrementally() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();

    let stream = remote.stream_query(QUERY, TIMEOUT).unwrap();
    let events: Vec<QueryEvent> = stream.map(|e| e.expect("clean stream")).collect();

    assert!(
        events
            .iter()
            .any(|e| matches!(e, QueryEvent::TokenDelta { .. })),
        "no token deltas crossed the wire"
    );
    assert!(matches!(
        events.first(),
        Some(QueryEvent::PromptChunk { .. })
    ));
    assert!(matches!(events.last(), Some(QueryEvent::Done { .. })));
    server.shutdown();
}

#[test]
fn malformed_query_gets_err_frame() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();

    let stream = remote
        .stream_query("argmax this is not lmql", TIMEOUT)
        .unwrap();
    let err = stream.into_result().unwrap_err();
    assert!(
        matches!(&err, ServerError::Query(_)),
        "parse failure should be a non-retryable query error, got {err:?}"
    );
    assert!(!err.is_transient());

    // The connection-level protocol survives: the same server still
    // answers a well-formed streamed query afterwards.
    let ok = remote
        .stream_query(QUERY, TIMEOUT)
        .unwrap()
        .into_result()
        .unwrap();
    assert!(ok.error.is_none());
    assert!(!ok.runs.is_empty());
    server.shutdown();
}

/// A model that fails every call with a transient fault — what a flaky
/// remote backend looks like to the server's scheduler.
struct FlakyLm {
    inner: Arc<dyn LanguageModel>,
}

impl LanguageModel for FlakyLm {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }

    fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context)
            .unwrap_or_else(|e| panic!("unreachable: {e}"))
    }

    fn try_score(&self, _context: &[TokenId]) -> LmResult<Logits> {
        Err(LmError::transient(FaultKind::Other, "backend flaked"))
    }
}

#[test]
fn exhausted_transient_fault_gets_retry_frame() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(FlakyLm {
        inner: scripted(&bpe),
    });
    let config = ServerConfig {
        retry: lmql_lm::RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            ..lmql_lm::RetryPolicy::default()
        },
        ..ServerConfig::default()
    };
    let server = InferenceServer::spawn_with(lm, Arc::clone(&bpe), config).unwrap();
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();

    let stream = remote.stream_query(QUERY, TIMEOUT).unwrap();
    let err = stream.into_result().unwrap_err();
    assert!(
        matches!(&err, ServerError::Model(e) if e.is_transient()),
        "exhausted transient fault should arrive as a RETRY frame, got {err:?}"
    );
    assert!(err.is_transient());
    server.shutdown();
}

#[test]
fn dropped_remote_stream_leaves_server_healthy() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, _bpe) = RemoteLm::connect(server.addr()).unwrap();

    // Read a couple of events, then hang up mid-query. Server-side this
    // turns into a write failure, which cancels the query cooperatively.
    let mut stream = remote.stream_query(QUERY, TIMEOUT).unwrap();
    let first = stream.next().expect("at least one event").unwrap();
    assert!(matches!(first, QueryEvent::PromptChunk { .. }));
    drop(stream);

    // The server keeps serving both protocols after the abandonment.
    let rebuilt = remote
        .stream_query(QUERY, TIMEOUT)
        .unwrap()
        .into_result()
        .unwrap();
    let local = Runtime::new(scripted(&bpe) as Arc<dyn LanguageModel>, Arc::clone(&bpe))
        .run(QUERY)
        .unwrap();
    assert_eq!(rebuilt.runs[0].trace, local.best().trace);
    server.shutdown();
}
