//! End-to-end tests: full LMQL queries over the client–server split,
//! checked bit-identical to local execution.

use lmql::Runtime;
use lmql_lm::{Episode, LanguageModel, ScriptedLm};
use lmql_server::{InferenceServer, RemoteLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn scripted(bpe: &Arc<Bpe>) -> Arc<ScriptedLm> {
    Arc::new(ScriptedLm::new(
        Arc::clone(bpe),
        [Episode::plain(
            "Q: Where is Apple Computers headquartered?\nA:",
            " Apple Computers is headquartered in Cupertino, California. And more trivia.",
        )],
    ))
}

const QUERY: &str = r#"
argmax
    "Q: Where is Apple Computers headquartered?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".") and len(words(ANSWER)) < 20
"#;

#[test]
fn remote_query_matches_local_bit_for_bit() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);

    // Local run.
    let local_rt = Runtime::new(lm.clone(), Arc::clone(&bpe));
    let local = local_rt.run(QUERY).unwrap();

    // Remote run: only the forward pass crosses the network.
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();
    let remote_rt = Runtime::new(Arc::new(remote), remote_bpe);
    let remote_result = remote_rt.run(QUERY).unwrap();

    assert_eq!(local.best().trace, remote_result.best().trace);
    assert_eq!(
        local.best().var_str("ANSWER"),
        remote_result.best().var_str("ANSWER")
    );
    assert_eq!(local.best().log_prob, remote_result.best().log_prob);
    server.shutdown();
}

#[test]
fn tokenizer_ships_to_client() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (_remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();
    for text in ["hello world", "A: answer.", ""] {
        assert_eq!(remote_bpe.encode(text), bpe.encode(text));
    }
    server.shutdown();
}

#[test]
fn multiple_clients_share_one_server() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();

    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let (remote, remote_bpe) = RemoteLm::connect(addr).unwrap();
                let ctx = remote_bpe.encode("Q: Where is Apple Computers headquartered?\nA:");
                let next = remote.score(&ctx).softmax(1.0).argmax();
                remote.quit();
                remote_bpe.vocab().token_str(next).to_owned()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), " ");
    }
    server.shutdown();
}

#[test]
fn bad_requests_get_err_replies() {
    use std::io::{BufRead, BufReader, Write};
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for (req, fragment) in [
        ("NONSENSE\n", "unknown command"),
        ("SCORE 2 1\n", "declared 2"),
        ("SCORE x\n", "not a number"),
    ] {
        stream.write_all(req.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR "), "got {line:?}");
        assert!(line.contains(fragment), "got {line:?}");
    }
    server.shutdown();
}
