//! The `STATS` wire frame end to end: a client fetches the server's
//! metrics snapshot and sees its own requests counted.

use lmql_lm::{Episode, LanguageModel, ScriptedLm};
use lmql_server::{InferenceServer, RemoteLm};
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn spawn_scripted() -> (lmql_server::ServerHandle, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Q:", " ok.")],
    ));
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    (server, bpe)
}

/// Parses `counter NAME VALUE` / `gauge NAME VALUE` lines out of the
/// rendered snapshot the `STATS` frame carries.
fn metric_value(text: &str, kind: &str, name: &str) -> Option<u64> {
    let prefix = format!("{kind} {name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
}

#[test]
fn stats_frame_reports_server_and_engine_metrics() {
    let (server, _bpe) = spawn_scripted();
    let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();

    // Generate traffic: TOKENIZER (at connect) + two SCOREs.
    let ctx = remote_bpe.encode("Q:");
    let _ = remote.score(&ctx);
    let _ = remote.score(&ctx);

    let text = remote.stats().unwrap();
    // The connection that asks is itself counted and still active.
    assert_eq!(
        metric_value(&text, "counter", "server.connections"),
        Some(1)
    );
    assert_eq!(
        metric_value(&text, "gauge", "server.connections_active"),
        Some(1)
    );
    // TOKENIZER + SCORE + SCORE answered before the STATS line itself
    // (the request counter increments after the reply is written, so the
    // in-flight STATS request is not yet included).
    assert_eq!(metric_value(&text, "counter", "server.requests"), Some(3));
    // The shared scheduler's metrics ride in the same registry. The two
    // identical SCOREs are one miss then one hit.
    assert_eq!(metric_value(&text, "counter", "engine.cache.hits"), Some(1));
    assert_eq!(
        metric_value(&text, "counter", "engine.cache.misses"),
        Some(1)
    );
    assert!(
        text.contains("histogram server.request_latency_us"),
        "latency histogram rendered: {text}"
    );
    assert!(
        text.contains("histogram engine.batch.size"),
        "engine batch histogram rendered: {text}"
    );

    remote.quit();
    server.shutdown();
}

#[test]
fn stats_counts_accumulate_across_connections() {
    let (server, _bpe) = spawn_scripted();

    let (first, bpe) = RemoteLm::connect(server.addr()).unwrap();
    let ctx = bpe.encode("Q:");
    let _ = first.score(&ctx);
    first.quit();
    drop(first);

    let (second, _) = RemoteLm::connect(server.addr()).unwrap();
    let text = second.stats().unwrap();
    assert_eq!(
        metric_value(&text, "counter", "server.connections"),
        Some(2)
    );
    // First connection: TOKENIZER + SCORE + QUIT; second: TOKENIZER.
    assert_eq!(metric_value(&text, "counter", "server.requests"), Some(4));

    // The handle's own snapshot agrees with what went over the wire; the
    // STATS request itself is counted once its reply has been written, so
    // by now the total may already include it.
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("server.connections"), Some(2));
    let total = snap.counter("server.requests").unwrap();
    assert!((4..=5).contains(&total), "requests = {total}");

    second.quit();
    server.shutdown();
}

#[test]
fn unknown_command_is_counted_but_not_fatal() {
    let (server, _bpe) = spawn_scripted();
    let (remote, _) = RemoteLm::connect(server.addr()).unwrap();
    // An ERR reply must not kill the connection or skew later metrics
    // parsing: the next STATS still round-trips.
    // (RemoteLm has no raw-line API, so drive the socket directly.)
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "NONSENSE").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR "), "got {reply:?}");

    let text = remote.stats().unwrap();
    assert_eq!(
        metric_value(&text, "counter", "server.connections"),
        Some(2)
    );
    remote.quit();
    server.shutdown();
}
