//! Fault-tolerance integration tests: the server misbehaves on purpose
//! (deterministically, by request ordinal) and the client must recover —
//! reconnecting, retrying, and ending up with bit-identical logits.
//!
//! Request ordinals are global and 1-based; the `TOKENIZER` handshake of
//! the first client is always ordinal 1, so the first `SCORE` is 2.

use lmql_lm::{FaultKind, LanguageModel, LmError, LmResult, Logits, RetryPolicy, UniformLm};
use lmql_server::{
    FaultHook, InferenceServer, RemoteClientConfig, RemoteLm, ServerConfig, ServerHandle,
};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_client() -> RemoteClientConfig {
    RemoteClientConfig {
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter: 0.0,
            seed: 0,
            deadline: None,
        },
        read_timeout: Duration::from_millis(80),
        breaker: None,
    }
}

fn spawn_uniform(config: ServerConfig) -> (ServerHandle, Arc<UniformLm>, Arc<Bpe>) {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(UniformLm::new(Arc::clone(&bpe)));
    let server = InferenceServer::spawn_with(lm.clone(), Arc::clone(&bpe), config).unwrap();
    (server, lm, bpe)
}

/// Polls until the server's active-connection gauge drains to `want`
/// (handler threads exit asynchronously after a connection closes).
fn wait_for_active(server: &ServerHandle, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let active = server
            .metrics_snapshot()
            .gauge("server.connections_active")
            .unwrap();
        if active == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connections_active stuck at {active}, want {want} — leaked connection counter"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn kill_mid_request_reconnects_and_succeeds() {
    let (server, lm, _bpe) = spawn_uniform(ServerConfig {
        faults: FaultHook {
            drop_on_requests: vec![2], // first SCORE after the handshake
            ..FaultHook::default()
        },
        ..ServerConfig::default()
    });
    let (remote, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    let ctx = [TokenId(1), TokenId(2)];
    let logits = remote.try_score(&ctx).expect("retry must recover");
    assert_eq!(logits, lm.score(&ctx), "recovered reply is bit-identical");
    assert_eq!(remote.reconnects(), 1, "exactly one re-dial");
    assert!(remote.metrics().retries.get() >= 1);

    // No leaked connection accounting: once the client quits, the gauge
    // must drain to zero.
    remote.quit();
    wait_for_active(&server, 0);
    assert_eq!(
        server.metrics_snapshot().counter("server.faults_injected"),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn stalled_reply_times_out_and_retry_succeeds() {
    let (server, lm, _bpe) = spawn_uniform(ServerConfig {
        faults: FaultHook {
            stall: Duration::from_millis(400),
            stall_on_requests: vec![2],
            ..FaultHook::default()
        },
        ..ServerConfig::default()
    });
    let (remote, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    let ctx = [TokenId(3)];
    let start = Instant::now();
    let logits = remote.try_score(&ctx).expect("timeout then retry");
    assert_eq!(logits, lm.score(&ctx));
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "client timed out at its own read_timeout, not the stall length"
    );
    assert!(remote.metrics().retries.get() >= 1);
    assert_eq!(remote.reconnects(), 1, "timed-out stream is not reusable");
    server.shutdown();
}

#[test]
fn garbled_reply_is_retried_on_a_fresh_connection() {
    let (server, lm, _bpe) = spawn_uniform(ServerConfig {
        faults: FaultHook {
            garble_on_requests: vec![2],
            ..FaultHook::default()
        },
        ..ServerConfig::default()
    });
    let (remote, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    let ctx = [TokenId(4), TokenId(5)];
    let logits = remote.try_score(&ctx).expect("garble then retry");
    assert_eq!(logits, lm.score(&ctx));
    assert!(remote.metrics().faults.get() >= 1);
    assert_eq!(
        remote.reconnects(),
        1,
        "a garbled stream is desynced and must be re-dialled"
    );
    server.shutdown();
}

#[test]
fn busy_shed_turns_extra_clients_away() {
    let (server, _lm, _bpe) = spawn_uniform(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // First client occupies the only slot (its handshake proves the
    // server registered the connection).
    let (first, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    // Second client is shed with the typed BUSY frame at the handshake.
    let err = RemoteLm::connect_with(server.addr(), fast_client()).unwrap_err();
    assert!(err.to_string().contains("busy"), "got: {err}");
    assert_eq!(server.metrics_snapshot().counter("server.shed"), Some(1));

    // Once the first client leaves, the slot frees up and a new client
    // is served again.
    first.quit();
    wait_for_active(&server, 0);
    let (third, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    assert!(third.try_score(&[TokenId(1)]).is_ok());
    server.shutdown();
}

/// A model that fails its first `n` fallible calls with a transient
/// error, then behaves like [`UniformLm`].
#[derive(Debug)]
struct FlakyUniform {
    inner: UniformLm,
    calls: AtomicU64,
    fail_first: u64,
}

impl LanguageModel for FlakyUniform {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context).expect("flaky model call failed")
    }
    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
            return Err(LmError::transient(FaultKind::Injected, "flaky backend"));
        }
        Ok(self.inner.score(context))
    }
}

#[test]
fn server_side_model_fault_becomes_retry_frame() {
    let bpe = Arc::new(Bpe::char_level(""));
    // Two consecutive faults: one for the batch dispatch and one for the
    // scheduler's direct-scoring fallback — with RetryPolicy::none() the
    // server then gives up and the fault reaches the wire as a RETRY
    // frame; the client's retry re-sends the request and succeeds.
    let lm = Arc::new(FlakyUniform {
        inner: UniformLm::new(Arc::clone(&bpe)),
        calls: AtomicU64::new(0),
        fail_first: 2,
    });
    let server = InferenceServer::spawn_with(
        lm.clone(),
        Arc::clone(&bpe),
        ServerConfig {
            retry: RetryPolicy::none(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (remote, _) = RemoteLm::connect_with(server.addr(), fast_client()).unwrap();
    let ctx = [TokenId(2)];
    let logits = remote.try_score(&ctx).expect("client retry absorbs it");
    assert_eq!(logits, lm.inner.score(&ctx));
    assert!(remote.metrics().retries.get() >= 1);
    assert_eq!(
        remote.reconnects(),
        0,
        "a RETRY frame leaves the connection synced — no re-dial"
    );
    server.shutdown();
}
