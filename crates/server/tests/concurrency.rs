//! Concurrent clients against one server: results stay bit-identical to
//! local execution, each distinct context reaches the model exactly once
//! (shared cache + single-flight), idle connections time out, and
//! shutdown drains in-flight work.

use lmql::Runtime;
use lmql_lm::{Episode, LanguageModel, Logits, ScriptedLm};
use lmql_server::{InferenceServer, RemoteLm, ServerConfig};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counts every `score` call that actually reaches the model — with the
/// default `score_batch` looping, this counts per-context forward passes.
#[derive(Debug)]
struct CountingLm<L> {
    inner: L,
    calls: Arc<AtomicU64>,
}

impl<L: LanguageModel> LanguageModel for CountingLm<L> {
    fn vocab(&self) -> &Vocabulary {
        self.inner.vocab()
    }
    fn score(&self, context: &[TokenId]) -> Logits {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.score(context)
    }
}

fn counting_scripted(bpe: &Arc<Bpe>) -> (Arc<dyn LanguageModel>, Arc<AtomicU64>) {
    let calls = Arc::new(AtomicU64::new(0));
    let lm = CountingLm {
        inner: ScriptedLm::new(
            Arc::clone(bpe),
            [Episode::plain(
                "Q: Where is Apple Computers headquartered?\nA:",
                " Apple Computers is headquartered in Cupertino, California. And more trivia.",
            )],
        ),
        calls: Arc::clone(&calls),
    };
    (Arc::new(lm), calls)
}

// beam(n=2) exercises the BATCH frame: every search step ships its
// extending beams' contexts as one request.
const QUERY: &str = r#"
beam(n=2)
    "Q: Where is Apple Computers headquartered?\n"
    "A:[ANSWER]"
from "remote-model"
where stops_at(ANSWER, ".")
"#;

#[test]
fn concurrent_clients_match_local_and_share_the_model() {
    let bpe = Arc::new(Bpe::char_level(""));

    // Local reference run; its call counter tells us how many distinct
    // contexts the query needs (the runtime's own cache dedups repeats).
    let (local_lm, local_calls) = counting_scripted(&bpe);
    let local = Runtime::new(local_lm, Arc::clone(&bpe)).run(QUERY).unwrap();
    let distinct_contexts = local_calls.load(Ordering::SeqCst);

    let (server_lm, server_calls) = counting_scripted(&bpe);
    let server = InferenceServer::spawn(server_lm, Arc::clone(&bpe)).unwrap();
    let addr = server.addr();

    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let (remote, remote_bpe) = RemoteLm::connect(addr).unwrap();
                    Runtime::new(Arc::new(remote), remote_bpe)
                        .run(QUERY)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.best().trace, local.best().trace, "client {i} trace");
        assert_eq!(
            r.best().log_prob.to_bits(),
            local.best().log_prob.to_bits(),
            "client {i} log-prob bits"
        );
    }
    // Shared cache + single-flight: four clients asking the same question
    // cost exactly one forward pass per distinct context, same as one
    // local run — regardless of thread timing.
    assert_eq!(
        server_calls.load(Ordering::SeqCst),
        distinct_contexts,
        "each distinct context must reach the model exactly once"
    );
    assert!(server.cache_stats().entries > 0, "cache retains the work");
    server.shutdown();
}

#[test]
fn remote_batch_is_bit_identical_to_local_scores() {
    let bpe = Arc::new(Bpe::char_level(""));
    let (lm, _) = counting_scripted(&bpe);
    let reference = Arc::clone(&lm);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
    let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();

    let c1 = remote_bpe.encode("Q: Where is");
    let c2 = remote_bpe.encode("");
    let c3 = remote_bpe.encode("Q: Where is Apple");
    let batch: Vec<&[TokenId]> = vec![&c1, &c2, &c3, &c1];
    let got = remote.score_batch(&batch);
    assert_eq!(got.len(), batch.len());
    for (ctx, logits) in batch.iter().zip(&got) {
        let want = reference.score(ctx);
        for (a, b) in logits.scores().iter().zip(want.scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "batched logits must be bit-exact");
        }
    }
    remote.quit();
    server.shutdown();
}

#[test]
fn second_client_hits_the_shared_prefix_cache() {
    let bpe = Arc::new(Bpe::char_level(""));
    let (lm, calls) = counting_scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();

    let ctx = bpe.encode("Q: Where is Apple Computers headquartered?\nA:");
    let (a, bpe_a) = RemoteLm::connect(server.addr()).unwrap();
    let first = a.score(&ctx);
    a.quit();
    let (b, _) = RemoteLm::connect(server.addr()).unwrap();
    let second = b.score(&ctx);
    b.quit();
    drop(bpe_a);

    assert_eq!(first, second);
    assert_eq!(calls.load(Ordering::SeqCst), 1, "one forward pass for both");
    assert!(server.cache_stats().hits >= 1);
    server.shutdown();
}

#[test]
fn out_of_range_token_ids_get_err_not_a_dead_server() {
    use std::io::{BufRead, BufReader, Write};
    let bpe = Arc::new(Bpe::char_level(""));
    let (lm, _) = counting_scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();

    // An id far past the vocabulary must bounce at the protocol boundary:
    // if it reached the model it would panic the shared dispatcher and
    // hang every client from then on.
    writeln!(stream, "SCORE 1 999999").unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR "), "got {reply:?}");
    assert!(reply.contains("out of range"), "got {reply:?}");

    reply.clear();
    writeln!(stream, "BATCH 2 1 0 1 999999").unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR "), "got {reply:?}");

    // The scheduler is still alive: valid requests keep working.
    reply.clear();
    writeln!(stream, "SCORE 1 0").unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("LOGITS "), "got {reply:?}");
    server.shutdown();
}

#[test]
fn idle_connections_are_dropped_after_read_timeout() {
    use std::io::Read;
    let bpe = Arc::new(Bpe::char_level(""));
    let (lm, _) = counting_scripted(&bpe);
    let server = InferenceServer::spawn_with(
        lm,
        Arc::clone(&bpe),
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Send nothing: the server must hang up on us.
    let mut buf = [0u8; 1];
    let n = stream
        .read(&mut buf)
        .expect("server should close, not stall");
    assert_eq!(n, 0, "idle connection gets EOF");
    server.shutdown();
}

#[test]
fn shutdown_drains_with_connections_still_open() {
    use std::io::{BufRead, BufReader, Read, Write};
    let bpe = Arc::new(Bpe::char_level(""));
    let (lm, _) = counting_scripted(&bpe);
    let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let ctx = bpe.encode("Q:");
    write!(stream, "SCORE {}", ctx.len()).unwrap();
    for t in &ctx {
        write!(stream, " {}", t.0).unwrap();
    }
    writeln!(stream).unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("LOGITS "), "got {reply:?}");

    // Shut down while the connection is still open: must return promptly
    // (in-flight work is drained), and the handler closes the socket on
    // its next stop-flag poll — observed here as EOF.
    server.shutdown();
    let mut rest = Vec::new();
    reader
        .read_to_end(&mut rest)
        .expect("handler closes the socket instead of stalling");
    assert!(rest.is_empty(), "no stray bytes after shutdown");
}
