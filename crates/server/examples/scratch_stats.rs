//! Scratch: spawn a server and print its address (deleted before commit).

use lmql_lm::{Episode, ScriptedLm};
use lmql_server::InferenceServer;
use lmql_tokenizer::Bpe;
use std::sync::Arc;

fn main() {
    let bpe = Arc::new(Bpe::char_level(""));
    let lm = Arc::new(ScriptedLm::new(
        Arc::clone(&bpe),
        [Episode::plain("Q:", " ok.")],
    ));
    let server = InferenceServer::spawn(lm, bpe).unwrap();
    println!("ADDR {}", server.addr());
    std::thread::sleep(std::time::Duration::from_secs(60));
    drop(server);
}
