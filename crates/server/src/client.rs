//! The client side: a [`LanguageModel`] whose forward pass runs remotely.
//!
//! [`RemoteLm`] is fault-tolerant: every wire failure is classified into
//! the [`LmError`] taxonomy (timeouts, dropped connections, `BUSY` load
//! shedding, garbled frames), transient failures are retried with backoff
//! under a [`RetryPolicy`], and a dead connection is re-dialled
//! transparently before the next attempt. An optional circuit breaker
//! fails fast while the server stays down.

use crate::error::ServerError;
use crate::protocol::{
    read_batch_logits, read_logits, read_stats, read_tokenizer, write_batch_request,
    write_score_request,
};
use lmql::{QueryEvent, ReassembledQuery, Reassembler};
use lmql_lm::{
    call_with_retry, context_token, BreakerConfig, CircuitBreaker, FaultKind, LanguageModel,
    LmError, LmResult, Logits, RetryMetrics, RetryPolicy,
};
use lmql_obs::{Counter, Registry};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Client-side robustness tuning.
#[derive(Debug, Clone)]
pub struct RemoteClientConfig {
    /// Retry policy for transient wire failures (each attempt re-dials
    /// if the previous one lost the connection).
    pub retry: RetryPolicy,
    /// Socket read timeout per reply; a server stalled past this is a
    /// transient [`FaultKind::Timeout`].
    pub read_timeout: Duration,
    /// When set, a circuit breaker fails calls fast after this many
    /// consecutive failures instead of hammering a down server.
    pub breaker: Option<BreakerConfig>,
}

impl Default for RemoteClientConfig {
    fn default() -> Self {
        RemoteClientConfig {
            retry: RetryPolicy::default(),
            read_timeout: Duration::from_secs(5),
            breaker: None,
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A remote model: `score()` round-trips to an [`InferenceServer`]
/// (the Appendix A.2 split — the decoding loop stays local).
///
/// [`InferenceServer`]: crate::InferenceServer
pub struct RemoteLm {
    addr: SocketAddr,
    config: RemoteClientConfig,
    /// `None` between a wire failure and the next (re-)dial.
    conn: Mutex<Option<Conn>>,
    bpe: Arc<Bpe>,
    metrics: RetryMetrics,
    reconnects: Counter,
    breaker: Option<CircuitBreaker>,
}

impl std::fmt::Debug for RemoteLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLm")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl RemoteLm {
    /// Connects with the default [`RemoteClientConfig`] and fetches the
    /// server's tokenizer, so client and server agree on the vocabulary
    /// by construction.
    ///
    /// # Errors
    ///
    /// Socket and protocol errors.
    pub fn connect(addr: SocketAddr) -> io::Result<(Self, Arc<Bpe>)> {
        Self::connect_with(addr, RemoteClientConfig::default())
    }

    /// Like [`connect`](Self::connect) with explicit retry, timeout and
    /// breaker configuration.
    ///
    /// # Errors
    ///
    /// Socket and protocol errors (the initial dial and tokenizer
    /// handshake are not retried — callers decide whether a server that
    /// is down at startup is fatal).
    pub fn connect_with(
        addr: SocketAddr,
        config: RemoteClientConfig,
    ) -> io::Result<(Self, Arc<Bpe>)> {
        let mut conn = Self::dial(addr, config.read_timeout)?;
        writeln!(conn.writer, "TOKENIZER")?;
        conn.writer.flush()?;
        let serialized = read_tokenizer(&mut conn.reader)?;
        let bpe = Arc::new(
            Bpe::from_text(&serialized)
                .map_err(|e| io::Error::other(format!("bad tokenizer payload: {e}")))?,
        );
        let breaker = config.breaker.map(CircuitBreaker::new);
        Ok((
            RemoteLm {
                addr,
                config,
                conn: Mutex::new(Some(conn)),
                bpe: Arc::clone(&bpe),
                metrics: RetryMetrics::default(),
                reconnects: Counter::new(),
                breaker,
            },
            bpe,
        ))
    }

    fn dial(addr: SocketAddr, read_timeout: Duration) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Retry/fault counters for this client's wire calls.
    pub fn metrics(&self) -> &RetryMetrics {
        &self.metrics
    }

    /// How many times the client re-dialled after losing its connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// The circuit breaker, when one was configured.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Registers the client's retry counters, reconnect counter (as
    /// `<prefix>.reconnects`) and breaker-state gauge (when a breaker is
    /// configured) into `registry` under `<prefix>.*` names.
    ///
    /// # Panics
    ///
    /// Panics if any of the names is already registered.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        self.metrics.register_into(registry, prefix);
        registry.register_counter(&format!("{prefix}.reconnects"), self.reconnects.clone());
        if let Some(b) = &self.breaker {
            registry.register_gauge(&format!("{prefix}.breaker_state"), b.gauge().clone());
        }
    }

    /// Classifies a wire error and decides whether the connection is
    /// still usable. In-band replies (`ERR …`, `RETRY …`) leave the
    /// stream synced on a frame boundary; everything else — timeouts,
    /// resets, unparseable frames — leaves it in an unknown state, so
    /// the connection must be dropped and re-dialled.
    fn classify(e: &io::Error) -> (LmError, bool) {
        let msg = e.to_string();
        if let Some(detail) = msg.strip_prefix("server error: ") {
            return (LmError::fatal(format!("server error: {detail}")), true);
        }
        if msg.starts_with("server retry: ") {
            return (LmError::transient(FaultKind::Other, msg), true);
        }
        if e.kind() == io::ErrorKind::ConnectionRefused {
            // The typed BUSY shed frame (or a refused dial): the server
            // exists but is over budget right now.
            return (LmError::transient(FaultKind::Busy, msg), false);
        }
        let err = match LmError::from_io(e) {
            // Parse failures on a live stream (garbled frames) are
            // classified fatal by `from_io`; on the wire they are a
            // transient truncation — re-dialling gets a clean stream.
            LmError::Fatal { message } => LmError::transient(FaultKind::Truncated, message),
            other => other,
        };
        (err, false)
    }

    /// One attempt: ensure a live connection, run `f` on it, classify
    /// any failure (dropping the connection when it is no longer safe to
    /// reuse).
    fn call_once<T>(&self, f: impl FnOnce(&mut Conn) -> io::Result<T>) -> LmResult<T> {
        let mut guard = self.conn.lock().expect("remote connection poisoned");
        if guard.is_none() {
            match Self::dial(self.addr, self.config.read_timeout) {
                Ok(c) => {
                    self.reconnects.inc();
                    *guard = Some(c);
                }
                Err(e) => return Err(Self::classify(&e).0),
            }
        }
        let conn = guard.as_mut().expect("connection just ensured");
        match f(conn) {
            Ok(v) => Ok(v),
            Err(e) => {
                let (err, keep_conn) = Self::classify(&e);
                if !keep_conn {
                    *guard = None;
                }
                Err(err)
            }
        }
    }

    fn validated(&self, logits: Logits) -> LmResult<Logits> {
        let want = self.bpe.vocab().len();
        if logits.len() == want {
            Ok(logits)
        } else {
            Err(LmError::transient(
                FaultKind::Truncated,
                format!("reply has {} logits, vocabulary has {want}", logits.len()),
            ))
        }
    }

    /// Fetches the server's metrics snapshot as rendered text: one
    /// `counter`/`gauge`/`histogram` line per metric, covering the
    /// shared engine (`engine.*`), the model meter (`lm.*` when
    /// registered) and the server itself (`server.*`).
    ///
    /// # Errors
    ///
    /// Socket and protocol errors.
    pub fn stats(&self) -> io::Result<String> {
        self.call_once(|conn| {
            writeln!(conn.writer, "STATS")?;
            conn.writer.flush()?;
            read_stats(&mut conn.reader)
        })
        .map_err(io::Error::other)
    }

    /// Tells the server this client is done (also happens implicitly on
    /// drop via connection close).
    pub fn quit(&self) {
        if let Ok(mut guard) = self.conn.lock() {
            if let Some(conn) = guard.as_mut() {
                let _ = writeln!(conn.writer, "QUIT");
                let _ = conn.writer.flush();
            }
            *guard = None;
        }
    }

    /// Submits `source` for **server-side** execution, streaming its
    /// [`QueryEvent`]s back as they happen. The opposite split from
    /// `score()`: here the whole decoding loop runs on the server and
    /// only events cross the wire.
    ///
    /// Runs on a fresh dedicated connection, so in-flight `SCORE`/`BATCH`
    /// traffic on this client is undisturbed. Dropping the returned
    /// stream mid-query disconnects, which cancels the remote query
    /// cooperatively (its scheduler slots are released server-side).
    ///
    /// Streaming uses `timeout` as the per-read budget — pass something
    /// comfortably larger than one decode step, not larger than the
    /// whole query.
    ///
    /// # Errors
    ///
    /// Dial and write failures.
    pub fn stream_query(
        &self,
        source: &str,
        timeout: Duration,
    ) -> Result<RemoteQueryStream, ServerError> {
        let mut conn = Self::dial(self.addr, timeout)?;
        write!(conn.writer, "STREAM {}\n{source}", source.len())?;
        conn.writer.flush()?;
        Ok(RemoteQueryStream {
            conn,
            finished: false,
        })
    }
}

/// A streamed remote query (see [`RemoteLm::stream_query`]): iterate for
/// live [`QueryEvent`]s, or [`into_result`](Self::into_result) to block
/// until completion and reassemble the final result.
pub struct RemoteQueryStream {
    conn: Conn,
    finished: bool,
}

impl std::fmt::Debug for RemoteQueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteQueryStream")
            .field("finished", &self.finished)
            .finish()
    }
}

impl RemoteQueryStream {
    /// Reads the next event; `None` after the terminal `DONE` frame. A
    /// `RETRY`/`ERR`/`BUSY` frame (or a wire failure) ends the stream
    /// with one final error item.
    fn read_event(&mut self) -> Option<Result<QueryEvent, ServerError>> {
        if self.finished {
            return None;
        }
        let mut line = String::new();
        match self.conn.reader.read_line(&mut line) {
            Ok(0) => {
                self.finished = true;
                return Some(Err(ServerError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-stream",
                ))));
            }
            Ok(_) => {}
            Err(e) => {
                self.finished = true;
                return Some(Err(ServerError::Io(e)));
            }
        }
        let line = line.trim_end();
        if let Some(wire) = line.strip_prefix("EVENT ") {
            return Some(QueryEvent::from_wire(wire).map_err(ServerError::from));
        }
        self.finished = true;
        if line == "DONE" {
            return None;
        }
        if line == "BUSY" {
            return Some(Err(ServerError::Model(LmError::transient(
                FaultKind::Busy,
                "server busy (load shed)",
            ))));
        }
        if let Some(msg) = line.strip_prefix("RETRY ") {
            return Some(Err(ServerError::Model(LmError::transient(
                FaultKind::Other,
                msg.to_owned(),
            ))));
        }
        if let Some(msg) = line.strip_prefix("ERR ") {
            return Some(Err(ServerError::Query(msg.to_owned())));
        }
        Some(Err(ServerError::Protocol(format!(
            "unexpected stream frame {line:?}"
        ))))
    }

    /// Drains the stream and reassembles the query's final result from
    /// its events — byte-identical to running the same query locally
    /// (`tests/streaming.rs` holds the proof).
    ///
    /// # Errors
    ///
    /// Wire failures, protocol violations, and remote query errors.
    pub fn into_result(mut self) -> Result<ReassembledQuery, ServerError> {
        let mut r = Reassembler::new();
        while let Some(event) = self.read_event() {
            r.apply(&event?)?;
        }
        Ok(r.finish())
    }
}

impl Iterator for RemoteQueryStream {
    type Item = Result<QueryEvent, ServerError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_event()
    }
}

impl LanguageModel for RemoteLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    /// # Panics
    ///
    /// Panics when the retry budget is exhausted or the failure is
    /// fatal; use [`try_score`](LanguageModel::try_score) to handle the
    /// error.
    fn score(&self, context: &[TokenId]) -> Logits {
        self.try_score(context)
            .unwrap_or_else(|e| panic!("remote score failed: {e}"))
    }

    fn try_score(&self, context: &[TokenId]) -> LmResult<Logits> {
        call_with_retry(
            &self.config.retry,
            &self.metrics,
            self.breaker.as_ref(),
            context_token(context),
            || {
                self.call_once(|conn| {
                    write_score_request(&mut conn.writer, context)?;
                    read_logits(&mut conn.reader)
                })
                .and_then(|l| self.validated(l))
            },
        )
    }

    /// Ships the whole batch as one `BATCH` frame: a single round trip
    /// instead of one per context, and the server can answer it with a
    /// single microbatched forward pass.
    ///
    /// # Panics
    ///
    /// Panics when the retry budget is exhausted or the failure is
    /// fatal; use [`try_score_batch`](LanguageModel::try_score_batch) to
    /// handle the error.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        self.try_score_batch(contexts)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("remote batch score failed: {e}")))
            .collect()
    }

    /// The wire frame is all-or-nothing, so attempts retry the whole
    /// batch; on final failure every item reports the same error.
    fn try_score_batch(&self, contexts: &[&[TokenId]]) -> Vec<LmResult<Logits>> {
        if contexts.is_empty() {
            return Vec::new();
        }
        let token = contexts
            .iter()
            .fold(0u64, |h, c| h.rotate_left(7) ^ context_token(c));
        let result: LmResult<Vec<Logits>> = call_with_retry(
            &self.config.retry,
            &self.metrics,
            self.breaker.as_ref(),
            token,
            || {
                self.call_once(|conn| {
                    write_batch_request(&mut conn.writer, contexts)?;
                    read_batch_logits(&mut conn.reader)
                })
                .and_then(|out| {
                    if out.len() != contexts.len() {
                        return Err(LmError::transient(
                            FaultKind::Truncated,
                            format!(
                                "server answered {} contexts, asked for {}",
                                out.len(),
                                contexts.len()
                            ),
                        ));
                    }
                    out.into_iter().map(|l| self.validated(l)).collect()
                })
            },
        );
        match result {
            Ok(all) => all.into_iter().map(Ok).collect(),
            Err(e) => contexts.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}
