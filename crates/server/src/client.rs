//! The client side: a [`LanguageModel`] whose forward pass runs remotely.

use crate::protocol::{
    read_batch_logits, read_logits, read_stats, read_tokenizer, write_batch_request,
    write_score_request,
};
use lmql_lm::{LanguageModel, Logits};
use lmql_tokenizer::{Bpe, TokenId, Vocabulary};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// A remote model: `score()` round-trips to an [`InferenceServer`]
/// (the Appendix A.2 split — the decoding loop stays local).
///
/// [`InferenceServer`]: crate::InferenceServer
pub struct RemoteLm {
    conn: Mutex<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
    bpe: Arc<Bpe>,
}

impl std::fmt::Debug for RemoteLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLm").finish_non_exhaustive()
    }
}

impl RemoteLm {
    /// Connects and fetches the server's tokenizer, so client and server
    /// agree on the vocabulary by construction.
    ///
    /// # Errors
    ///
    /// Socket and protocol errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<(Self, Arc<Bpe>)> {
        let stream = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);

        writeln!(writer, "TOKENIZER")?;
        writer.flush()?;
        let serialized = read_tokenizer(&mut reader)?;
        let bpe = Arc::new(
            Bpe::from_text(&serialized)
                .map_err(|e| std::io::Error::other(format!("bad tokenizer payload: {e}")))?,
        );

        Ok((
            RemoteLm {
                conn: Mutex::new((reader, writer)),
                bpe: Arc::clone(&bpe),
            },
            bpe,
        ))
    }

    /// Fetches the server's metrics snapshot as rendered text: one
    /// `counter`/`gauge`/`histogram` line per metric, covering the
    /// shared engine (`engine.*`), the model meter (`lm.*` when
    /// registered) and the server itself (`server.*`).
    ///
    /// # Errors
    ///
    /// Socket and protocol errors.
    pub fn stats(&self) -> std::io::Result<String> {
        let mut conn = self.conn.lock().expect("remote connection poisoned");
        let (reader, writer) = &mut *conn;
        writeln!(writer, "STATS")?;
        writer.flush()?;
        read_stats(reader)
    }

    /// Tells the server this client is done (also happens implicitly on
    /// drop via connection close).
    pub fn quit(&self) {
        if let Ok(mut conn) = self.conn.lock() {
            let _ = writeln!(conn.1, "QUIT");
            let _ = conn.1.flush();
        }
    }
}

impl LanguageModel for RemoteLm {
    fn vocab(&self) -> &Vocabulary {
        self.bpe.vocab()
    }

    /// # Panics
    ///
    /// Panics if the connection drops mid-query: `score()` is infallible
    /// by trait contract, and a half-decoded hole cannot be recovered
    /// meaningfully here.
    fn score(&self, context: &[TokenId]) -> Logits {
        let mut conn = self.conn.lock().expect("remote connection poisoned");
        let (reader, writer) = &mut *conn;
        write_score_request(writer, context).expect("writing score request");
        read_logits(reader).expect("reading logits reply")
    }

    /// Ships the whole batch as one `BATCH` frame: a single round trip
    /// instead of one per context, and the server can answer it with a
    /// single microbatched forward pass.
    fn score_batch(&self, contexts: &[&[TokenId]]) -> Vec<Logits> {
        if contexts.is_empty() {
            return Vec::new();
        }
        let mut conn = self.conn.lock().expect("remote connection poisoned");
        let (reader, writer) = &mut *conn;
        write_batch_request(writer, contexts).expect("writing batch request");
        let out = read_batch_logits(reader).expect("reading batch logits reply");
        assert_eq!(
            out.len(),
            contexts.len(),
            "server answered a different batch size"
        );
        out
    }
}
