//! The serving layer's unified error type.
//!
//! Before this module existed, the client surfaced raw [`io::Error`]s
//! with stringly-typed prefixes ("server error: …"), stream parsing had
//! its own failure shape, and callers had to pattern-match message text
//! to tell a dead socket from a rejected query. [`ServerError`] folds
//! all of it into one taxonomy that plugs into the rest of the
//! workspace: model-layer faults keep their [`LmError`] classification
//! (so retry layers keep working), and everything converts into the
//! root [`lmql::Error`] for callers living at the query level.

use lmql_lm::LmError;
use std::fmt;
use std::io;

/// Any failure crossing the client–server boundary.
#[derive(Debug)]
pub enum ServerError {
    /// The socket died (dial failure, reset, EOF mid-frame).
    Io(io::Error),
    /// The peer sent bytes that don't parse as the protocol (a garbled
    /// frame, an unknown tag, a malformed streamed event).
    Protocol(String),
    /// A classified model-layer failure ([`LmError`] taxonomy: transient
    /// vs fatal vs cancelled), e.g. relayed by a `RETRY` frame.
    Model(LmError),
    /// The remote query itself failed (the server answered `ERR`): the
    /// wire worked, the query did not.
    Query(String),
}

impl ServerError {
    /// Whether retrying the whole operation may succeed (transport
    /// failures and transient model faults; protocol violations, fatal
    /// faults and query errors are not retryable).
    pub fn is_transient(&self) -> bool {
        match self {
            ServerError::Io(_) => true,
            ServerError::Protocol(_) | ServerError::Query(_) => false,
            ServerError::Model(e) => e.is_transient(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server connection failed: {e}"),
            ServerError::Protocol(msg) => write!(f, "server protocol violation: {msg}"),
            ServerError::Model(e) => write!(f, "{e}"),
            ServerError::Query(msg) => write!(f, "remote query failed: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<LmError> for ServerError {
    fn from(e: LmError) -> Self {
        ServerError::Model(e)
    }
}

impl From<lmql::WireError> for ServerError {
    fn from(e: lmql::WireError) -> Self {
        ServerError::Protocol(e.to_string())
    }
}

/// Serving failures surface at the query level as the root error's
/// model-failure arm (the query was sound, the serving layer was not) —
/// except cancellation, which keeps its own variant.
impl From<ServerError> for lmql::Error {
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Model(LmError::Cancelled) => lmql::Error::Cancelled,
            other => lmql::Error::Model {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmql_lm::FaultKind;

    #[test]
    fn display_and_source() {
        let e = ServerError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.is_transient());

        let e = ServerError::Protocol("bad tag".into());
        assert!(e.to_string().contains("protocol"));
        assert!(!e.is_transient());
    }

    #[test]
    fn model_errors_keep_their_classification() {
        let e = ServerError::from(LmError::transient(FaultKind::Busy, "shed"));
        assert!(e.is_transient());
        let e = ServerError::from(LmError::fatal("no such model"));
        assert!(!e.is_transient());
    }

    #[test]
    fn converts_into_root_error() {
        let root: lmql::Error = ServerError::Query("bad query".into()).into();
        assert!(matches!(&root, lmql::Error::Model { message } if message.contains("bad query")));
        let root: lmql::Error = ServerError::Model(LmError::Cancelled).into();
        assert_eq!(root, lmql::Error::Cancelled);
    }
}
