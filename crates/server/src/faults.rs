//! Server-side fault injection for chaos testing.
//!
//! A [`FaultHook`] makes the server misbehave at *chosen request
//! ordinals*: requests are numbered globally (1-based, across all
//! connections, in arrival order), and the hook can drop the connection,
//! stall the reply past the client's read timeout, or garble the reply
//! bytes for specific ordinals. Because the trigger is the ordinal — not
//! a clock or a random draw — a single-client test replays the exact
//! same fault schedule every run.
//!
//! This is the server-side complement of [`lmql_lm::ChaosLm`] (which
//! injects faults inside the model): together they cover "the backend
//! computes wrong/slow/nothing" and "the wire loses/corrupts the reply".

use std::time::Duration;

/// What the server does to selected requests. Default: no faults.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    /// Close the connection instead of replying to these request
    /// ordinals (1-based, global across connections). The client sees a
    /// clean EOF mid-request — the "server died under me" case.
    pub drop_on_requests: Vec<u64>,
    /// Sleep this long before replying to the ordinals in
    /// [`stall_on_requests`](Self::stall_on_requests) — long enough to
    /// trip a client read timeout without closing anything.
    pub stall: Duration,
    /// Request ordinals whose replies are delayed by [`stall`](Self::stall).
    pub stall_on_requests: Vec<u64>,
    /// Replace the reply to these ordinals with a syntactically broken
    /// frame (unparseable logit bits) — the "corrupted wire" case.
    pub garble_on_requests: Vec<u64>,
}

impl FaultHook {
    /// True when the hook never fires (the default for production paths).
    pub fn is_inert(&self) -> bool {
        self.drop_on_requests.is_empty()
            && self.stall_on_requests.is_empty()
            && self.garble_on_requests.is_empty()
    }

    /// The action for request `ordinal`, if any. Drop wins over stall
    /// and garble when an ordinal is listed in several.
    pub fn action(&self, ordinal: u64) -> Option<FaultAction> {
        if self.drop_on_requests.contains(&ordinal) {
            return Some(FaultAction::Drop);
        }
        if self.stall_on_requests.contains(&ordinal) {
            return Some(FaultAction::Stall(self.stall));
        }
        if self.garble_on_requests.contains(&ordinal) {
            return Some(FaultAction::Garble);
        }
        None
    }
}

/// A fault the server applies to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Close the connection without replying.
    Drop,
    /// Delay the reply by the given duration, then answer normally.
    Stall(Duration),
    /// Reply with an unparseable frame.
    Garble,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let hook = FaultHook::default();
        assert!(hook.is_inert());
        assert_eq!(hook.action(1), None);
    }

    #[test]
    fn ordinals_select_actions() {
        let hook = FaultHook {
            drop_on_requests: vec![2],
            stall: Duration::from_millis(100),
            stall_on_requests: vec![3],
            garble_on_requests: vec![4],
        };
        assert!(!hook.is_inert());
        assert_eq!(hook.action(1), None);
        assert_eq!(hook.action(2), Some(FaultAction::Drop));
        assert_eq!(
            hook.action(3),
            Some(FaultAction::Stall(Duration::from_millis(100)))
        );
        assert_eq!(hook.action(4), Some(FaultAction::Garble));
    }

    #[test]
    fn drop_wins_over_other_actions() {
        let hook = FaultHook {
            drop_on_requests: vec![5],
            stall: Duration::from_millis(1),
            stall_on_requests: vec![5],
            garble_on_requests: vec![5],
        };
        assert_eq!(hook.action(5), Some(FaultAction::Drop));
    }
}
