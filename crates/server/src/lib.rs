//! Client–server inference (the paper's Appendix A.2).
//!
//! "LMQL relies on a client-server-architecture. The server is responsible
//! for inference, loading and managing the model. […] The client parses
//! the user-provided LMQL code, constructs the computational graph, and
//! also runs the decoding loop. Only the forward pass of the underlying
//! model is outsourced to the server."
//!
//! This crate implements exactly that split over plain TCP (std only):
//!
//! - [`InferenceServer`] hosts any [`LanguageModel`] and ships its
//!   tokenizer to connecting clients. All connections score through one
//!   shared [`lmql_engine::Scheduler`], so concurrent clients coalesce
//!   into microbatches and share a prefix cache,
//! - [`RemoteLm`] implements [`LanguageModel`] over the wire, so the
//!   `lmql` runtime decodes locally while `score()` round-trips to the
//!   server — the runtime cannot tell the difference. Its `score_batch`
//!   ships a whole decoder step as one `BATCH` frame (one round trip).
//!
//! The wire protocol is line-based with exact-bits float encoding, so a
//! remote run is bit-identical to a local one (tested in
//! `tests/remote.rs`), batched or not.
//!
//! The protocol also supports the *opposite* split: a `STREAM` frame
//! submits a whole query for server-side execution, and the server
//! streams [`lmql::QueryEvent`]s back as `EVENT` lines (terminated by
//! `DONE`, or `RETRY`/`ERR` carrying the taxonomy across the hop).
//! [`RemoteLm::stream_query`] runs one on a dedicated connection and
//! [`RemoteQueryStream::into_result`] reassembles the final result
//! byte-identically to a local run; disconnecting mid-stream cancels
//! the remote query cooperatively, releasing its scheduler slots.
//! Failures on any client path surface as the unified [`ServerError`]
//! taxonomy, which converts into the root [`lmql::Error`].
//!
//! Robustness: idle connections are dropped after
//! [`ServerConfig::read_timeout`], and [`ServerHandle::shutdown`] drains
//! in-flight batches before returning. Beyond that the split is fault
//! tolerant (DESIGN.md §9): transient model failures are answered with a
//! `RETRY` frame (the connection stays synced; fatal ones get `ERR`),
//! the server sheds load with a typed `BUSY` frame once
//! [`ServerConfig::max_connections`] is reached, and [`RemoteLm`]
//! retries under a [`RetryPolicy`] — reconnecting with backoff when the
//! stream dies or desyncs, so a server kill mid-request costs one
//! re-dial, not the query. A deterministic [`FaultHook`] can drop, stall
//! or garble chosen requests to reproduce all of it in tests
//! (`tests/fault_tolerance.rs`).
//!
//! # Example
//!
//! ```
//! use lmql_lm::{Episode, LanguageModel, ScriptedLm};
//! use lmql_server::{InferenceServer, RemoteLm};
//! use lmql_tokenizer::Bpe;
//! use std::sync::Arc;
//!
//! let bpe = Arc::new(Bpe::char_level(""));
//! let lm = Arc::new(ScriptedLm::new(Arc::clone(&bpe), [Episode::plain("Q:", " A.")]));
//! let server = InferenceServer::spawn(lm, Arc::clone(&bpe)).unwrap();
//!
//! let (remote, remote_bpe) = RemoteLm::connect(server.addr()).unwrap();
//! let ctx = remote_bpe.encode("Q:");
//! let local_ctx = bpe.encode("Q:");
//! assert_eq!(ctx, local_ctx, "tokenizer shipped intact");
//! let next = remote.score(&ctx).softmax(1.0).argmax();
//! // char-level tokenizer: the script " A." starts with a space token
//! assert_eq!(remote_bpe.vocab().token_str(next), " ");
//! server.shutdown();
//! ```

mod client;
mod error;
mod faults;
mod protocol;
mod server;

pub use client::{RemoteClientConfig, RemoteLm, RemoteQueryStream};
pub use error::ServerError;
pub use faults::{FaultAction, FaultHook};
pub use lmql_engine::{BatchPolicy, RadixCacheConfig, RadixStats};
pub use lmql_lm::{BreakerConfig, BreakerState, FaultKind, LanguageModel, LmError, RetryPolicy};
pub use lmql_obs::{MetricsSnapshot, Registry};
pub use server::{InferenceServer, ServerConfig, ServerHandle};
