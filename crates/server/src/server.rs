//! The inference server: hosts a model, answers `SCORE` requests.

use crate::protocol::{parse_score_request, write_logits, write_tokenizer};
use lmql_lm::LanguageModel;
use lmql_tokenizer::Bpe;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Constructor namespace for spawning inference servers.
#[derive(Debug)]
pub struct InferenceServer;

impl InferenceServer {
    /// Binds `127.0.0.1:0` and serves `lm` (with `bpe`'s tokenizer) on a
    /// background thread, one handler thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let serialized = Arc::new(bpe.to_text());

        let handle = std::thread::spawn(move || {
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let lm = Arc::clone(&lm);
                        let serialized = Arc::clone(&serialized);
                        // Handlers are detached: a worker blocked reading
                        // from a still-connected client must not hold up
                        // shutdown; it exits when its peer disconnects.
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &*lm, &serialized);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ServerHandle {
            addr,
            stop,
            handle: Some(handle),
        })
    }
}

fn handle_connection(
    stream: TcpStream,
    lm: &dyn LanguageModel,
    serialized_tokenizer: &str,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // peer closed
        }
        let line = line.trim_end();
        if line == "QUIT" {
            return Ok(());
        }
        if line == "TOKENIZER" {
            write_tokenizer(&mut writer, serialized_tokenizer)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("SCORE ") {
            match parse_score_request(rest) {
                Ok(ids) => {
                    let logits = lm.score(&ids);
                    write_logits(&mut writer, &logits)?;
                }
                Err(msg) => {
                    writeln!(writer, "ERR {msg}")?;
                    writer.flush()?;
                }
            }
            continue;
        }
        writeln!(writer, "ERR unknown command {line:?}")?;
        writer.flush()?;
    }
}

/// A running server: its address and a way to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Open
    /// connections finish their current request and close on next read.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
