//! The inference server: hosts a model behind the shared batching engine,
//! answers `SCORE` and `BATCH` requests.
//!
//! Every connection scores through one shared [`Scheduler`], so concurrent
//! clients coalesce into microbatches and share a prefix cache — the
//! server side of the paper's Appendix A.2 split, where "the server is
//! responsible for inference, loading and managing the model".

use crate::protocol::{
    parse_batch_request, parse_score_request, write_batch_logits, write_logits, write_stats,
    write_tokenizer,
};
use lmql_engine::{BatchPolicy, RadixCacheConfig, RadixStats, Scheduler, SchedulerObs};
use lmql_lm::LanguageModel;
use lmql_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use lmql_tokenizer::{Bpe, TokenId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the stop flag and the idle
/// clock.
const READ_POLL: Duration = Duration::from_millis(50);

/// Server tuning: connection robustness plus the engine's batching and
/// caching knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections idle (no complete request) this long are dropped.
    pub read_timeout: Duration,
    /// Microbatch formation policy for the shared scheduler.
    pub policy: BatchPolicy,
    /// Budgets for the shared prefix cache.
    pub cache: RadixCacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            policy: BatchPolicy::default(),
            cache: RadixCacheConfig::default(),
        }
    }
}

/// The server's metric handles, registered under `server.*` in the
/// shared registry (which also carries the scheduler's `engine.*`
/// metrics). Incremented from every connection-handler thread.
#[derive(Debug, Clone)]
struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    connections: Counter,
    /// Connections currently being served.
    connections_active: Gauge,
    /// Request lines answered (across all connections and commands).
    requests: Counter,
    /// Per-request handling latency, in microseconds (read to reply).
    request_latency_us: Histogram,
}

impl ServerMetrics {
    fn registered(registry: &Registry) -> Self {
        ServerMetrics {
            connections: registry.counter("server.connections"),
            connections_active: registry.gauge("server.connections_active"),
            requests: registry.counter("server.requests"),
            request_latency_us: registry.histogram("server.request_latency_us"),
        }
    }
}

/// Constructor namespace for spawning inference servers.
#[derive(Debug)]
pub struct InferenceServer;

impl InferenceServer {
    /// Binds `127.0.0.1:0` and serves `lm` (with `bpe`'s tokenizer) on a
    /// background thread, one handler thread per connection, all scoring
    /// through a shared [`Scheduler`] with default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>) -> std::io::Result<ServerHandle> {
        Self::spawn_with(lm, bpe, ServerConfig::default())
    }

    /// Like [`spawn`](Self::spawn) with explicit batching, caching and
    /// timeout configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn_with(
        lm: Arc<dyn LanguageModel>,
        bpe: Arc<Bpe>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let serialized = Arc::new(bpe.to_text());
        let registry = Registry::new();
        let metrics = ServerMetrics::registered(&registry);
        let sched = Arc::new(Scheduler::with_obs(
            Box::new(lm),
            config.policy,
            config.cache,
            SchedulerObs {
                registry: Some(registry.clone()),
                ..SchedulerObs::default()
            },
        ));
        let sched_accept = Arc::clone(&sched);
        let registry_accept = registry.clone();
        let read_timeout = config.read_timeout.max(Duration::from_millis(1));

        let handle = std::thread::spawn(move || {
            while !stop_accept.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let sched = Arc::clone(&sched_accept);
                        let serialized = Arc::clone(&serialized);
                        let stop = Arc::clone(&stop_accept);
                        let registry = registry_accept.clone();
                        let metrics = metrics.clone();
                        metrics.connections.inc();
                        // Handlers are detached: a worker blocked reading
                        // from a still-connected client must not hold up
                        // shutdown; it polls the stop flag and exits.
                        std::thread::spawn(move || {
                            metrics.connections_active.add(1);
                            let _ = handle_connection(
                                stream,
                                &sched,
                                &serialized,
                                &stop,
                                read_timeout,
                                &registry,
                                &metrics,
                            );
                            metrics.connections_active.sub(1);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ServerHandle {
            addr,
            stop,
            sched,
            registry,
            handle: Some(handle),
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    sched: &Scheduler,
    serialized_tokenizer: &str,
    stop: &AtomicBool,
    read_timeout: Duration,
    registry: &Registry,
    metrics: &ServerMetrics,
) -> std::io::Result<()> {
    // Short socket timeout so reads poll the stop flag; `read_timeout` is
    // enforced on top as an idle budget between complete requests.
    stream.set_read_timeout(Some(READ_POLL.min(read_timeout)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let mut idle = Duration::ZERO;
    loop {
        let before = Instant::now();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {
                idle = Duration::ZERO;
                let start = Instant::now();
                let done = respond(
                    line.trim_end(),
                    &mut writer,
                    sched,
                    serialized_tokenizer,
                    registry,
                )?;
                metrics.requests.inc();
                metrics
                    .request_latency_us
                    .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                line.clear();
                if done {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timed-out reads keep any partial line buffered in
                // `line`; the next pass appends the rest.
                if stop.load(Ordering::SeqCst) {
                    return Ok(()); // server shutting down
                }
                idle += before.elapsed();
                if idle >= read_timeout {
                    return Ok(()); // idle connection dropped
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Rejects token ids outside the model's vocabulary. Network input must
/// never reach the model with ids `score` is not defined on — a panic in
/// the shared dispatcher would take the whole server down.
fn check_ids(ids: &[TokenId], vocab_len: usize) -> Result<(), String> {
    match ids.iter().find(|t| t.0 as usize >= vocab_len) {
        Some(t) => Err(format!(
            "token id {} out of range (vocab size {vocab_len})",
            t.0
        )),
        None => Ok(()),
    }
}

/// Answers one request line. Returns `true` when the client said `QUIT`.
fn respond<W: Write>(
    line: &str,
    writer: &mut W,
    sched: &Scheduler,
    serialized_tokenizer: &str,
    registry: &Registry,
) -> std::io::Result<bool> {
    if line == "QUIT" {
        return Ok(true);
    }
    if line == "TOKENIZER" {
        write_tokenizer(writer, serialized_tokenizer)?;
        return Ok(false);
    }
    if line == "STATS" {
        write_stats(writer, &registry.snapshot().render_text())?;
        return Ok(false);
    }
    if let Some(rest) = line.strip_prefix("SCORE ") {
        match parse_score_request(rest).and_then(|ids| {
            check_ids(&ids, sched.vocab().len())?;
            Ok(ids)
        }) {
            Ok(ids) => {
                let logits = sched.score(&ids);
                write_logits(writer, &logits)?;
            }
            Err(msg) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
            }
        }
        return Ok(false);
    }
    if let Some(rest) = line.strip_prefix("BATCH ") {
        match parse_batch_request(rest).and_then(|contexts| {
            for ctx in &contexts {
                check_ids(ctx, sched.vocab().len())?;
            }
            Ok(contexts)
        }) {
            Ok(contexts) => {
                let refs: Vec<&[TokenId]> = contexts.iter().map(Vec::as_slice).collect();
                let all = sched.score_many(&refs);
                write_batch_logits(writer, &all)?;
            }
            Err(msg) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
            }
        }
        return Ok(false);
    }
    writeln!(writer, "ERR unknown command {line:?}")?;
    writer.flush()?;
    Ok(false)
}

/// A running server: its address and a way to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sched: Arc<Scheduler>,
    registry: Registry,
    handle: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters of the shared prefix cache all connections score through.
    pub fn cache_stats(&self) -> RadixStats {
        self.sched.cache_stats()
    }

    /// The server's metrics registry: `server.*` connection/request
    /// counters plus the shared scheduler's `engine.*` metrics. The same
    /// data clients fetch with a `STATS` frame.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A frozen snapshot of every server and engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Stops accepting connections, joins the accept thread, and shuts the
    /// scheduler down — draining every in-flight batch, so requests being
    /// processed still get their replies. Handler threads notice the stop
    /// flag on their next read poll and close their connections.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Drain queued and in-flight work; late scores from still-running
        // handlers fall back to inline scoring inside the scheduler.
        self.sched.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
