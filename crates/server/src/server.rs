//! The inference server: hosts a model behind the shared batching engine,
//! answers `SCORE` and `BATCH` requests.
//!
//! Every connection scores through one shared [`Scheduler`], so concurrent
//! clients coalesce into microbatches and share a prefix cache — the
//! server side of the paper's Appendix A.2 split, where "the server is
//! responsible for inference, loading and managing the model".

use crate::faults::{FaultAction, FaultHook};
use crate::protocol::{
    parse_batch_request, parse_score_request, write_batch_logits, write_busy, write_logits,
    write_stats, write_tokenizer,
};
use lmql::{QueryEvent, Runtime, StreamSink, ToolRegistry};
use lmql_engine::{
    router, BatchPolicy, BatchedLm, EngineConfig, RadixCacheConfig, RadixStats, Router,
    RouterConfig, RouterObs, Scheduler, SchedulerObs,
};
use lmql_lm::{LanguageModel, LmError, LmResult, Logits, RetryPolicy};
use lmql_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry, StreamMetrics};
use lmql_tokenizer::{Bpe, TokenId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the stop flag and the idle
/// clock.
const READ_POLL: Duration = Duration::from_millis(50);

/// Server tuning: connection robustness plus the engine's batching and
/// caching knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections idle (no complete request) this long are dropped.
    pub read_timeout: Duration,
    /// Microbatch formation policy for the shared scheduler.
    pub policy: BatchPolicy,
    /// Budgets for the shared prefix cache.
    pub cache: RadixCacheConfig,
    /// Retry/deadline policy for the shared scheduler's dispatch-time
    /// fault recovery (matters when the hosted model is itself fallible,
    /// e.g. a chaos wrapper).
    pub retry: RetryPolicy,
    /// Load shedding: connections over this budget receive a typed
    /// `BUSY` frame and are closed immediately (counted in
    /// `server.shed`). `usize::MAX` (the default) disables shedding.
    pub max_connections: usize,
    /// Deterministic fault injection for chaos tests (inert by default).
    pub faults: FaultHook,
    /// Worker groups behind this server. `1` (the default) keeps the
    /// classic single shared scheduler; `> 1` puts a prefix-affinity
    /// [`Router`] in front of that many replica engines, each with its
    /// own scheduler and radix cache (DESIGN.md §15).
    pub replicas: usize,
    /// Prefix-affinity routing across replicas (`replicas > 1` only);
    /// `false` deals queries round-robin — the cache-oblivious baseline.
    pub affinity: bool,
    /// Router-level admission cap on concurrently served frames
    /// (`replicas > 1` only); over budget, frames get a `BUSY` reply.
    /// `0` (the default) disables query-level shedding.
    pub max_inflight: usize,
    /// First-class tools installed on every server-side query runtime
    /// (DESIGN.md §16): `STREAM` queries can `import` and call these.
    /// Clones share call counters, so usage rolls up server-wide.
    pub tools: ToolRegistry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            policy: BatchPolicy::default(),
            cache: RadixCacheConfig::default(),
            retry: RetryPolicy::default(),
            max_connections: usize::MAX,
            faults: FaultHook::default(),
            replicas: 1,
            affinity: true,
            max_inflight: 0,
            tools: ToolRegistry::new(),
        }
    }
}

/// The server's metric handles, registered under `server.*` in the
/// shared registry (which also carries the scheduler's `engine.*`
/// metrics). Incremented from every connection-handler thread.
#[derive(Debug, Clone)]
struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    connections: Counter,
    /// Connections currently being served.
    connections_active: Gauge,
    /// Request lines answered (across all connections and commands).
    requests: Counter,
    /// Per-request handling latency, in microseconds (read to reply).
    request_latency_us: Histogram,
    /// Connections turned away with a `BUSY` frame (load shedding).
    shed: Counter,
    /// Faults injected by the configured [`FaultHook`].
    faults_injected: Counter,
}

impl ServerMetrics {
    fn registered(registry: &Registry) -> Self {
        ServerMetrics {
            connections: registry.counter("server.connections"),
            connections_active: registry.gauge("server.connections_active"),
            requests: registry.counter("server.requests"),
            request_latency_us: registry.histogram("server.request_latency_us"),
            shed: registry.counter("server.shed"),
            faults_injected: registry.counter("server.faults_injected"),
        }
    }
}

/// What serves the model calls behind the wire: the classic single
/// shared scheduler, or a prefix-affinity replica pool.
enum Backend {
    Single(Arc<Scheduler>),
    Pool(Arc<Router>),
}

impl Backend {
    /// Scores one context; `None` means the frame was shed (pool at its
    /// admission cap) and the caller must answer `BUSY`.
    fn try_score(&self, ids: &[TokenId]) -> Option<LmResult<Logits>> {
        match self {
            Backend::Single(sched) => Some(sched.try_score(ids)),
            Backend::Pool(pool) => {
                let _permit = pool.admit()?;
                Some(pool.try_score(ids))
            }
        }
    }

    /// Scores a batch of contexts; `None` means the frame was shed.
    fn try_score_many(&self, contexts: &[&[TokenId]]) -> Option<Vec<LmResult<Logits>>> {
        match self {
            Backend::Single(sched) => Some(sched.try_score_many(contexts)),
            Backend::Pool(pool) => {
                let _permit = pool.admit()?;
                Some(pool.try_score_many(contexts))
            }
        }
    }
}

/// Everything a connection handler needs, shared across all handlers.
struct ConnShared {
    backend: Backend,
    serialized_tokenizer: Arc<String>,
    /// The hosted tokenizer itself — `STREAM` queries decode server-side
    /// and need to encode/mask against it.
    bpe: Arc<Bpe>,
    stop: Arc<AtomicBool>,
    registry: Registry,
    metrics: ServerMetrics,
    /// Streaming delivery counters (`stream.*`): events shipped,
    /// time-to-first-token, abandoned streams.
    stream_metrics: StreamMetrics,
    /// Global request ordinal (1-based, arrival order) — the fault
    /// hook's deterministic trigger.
    next_request: AtomicU64,
    faults: FaultHook,
    read_timeout: Duration,
    /// Tools installed on the single-backend `STREAM` runtime (the
    /// pooled path carries them inside each replica's [`EngineConfig`]).
    tools: ToolRegistry,
}

/// Constructor namespace for spawning inference servers.
#[derive(Debug)]
pub struct InferenceServer;

impl InferenceServer {
    /// Binds `127.0.0.1:0` and serves `lm` (with `bpe`'s tokenizer) on a
    /// background thread, one handler thread per connection, all scoring
    /// through a shared [`Scheduler`] with default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn(lm: Arc<dyn LanguageModel>, bpe: Arc<Bpe>) -> std::io::Result<ServerHandle> {
        Self::spawn_with(lm, bpe, ServerConfig::default())
    }

    /// Like [`spawn`](Self::spawn) with explicit batching, caching and
    /// timeout configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn spawn_with(
        lm: Arc<dyn LanguageModel>,
        bpe: Arc<Bpe>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let serialized = Arc::new(bpe.to_text());
        let registry = Registry::new();
        let metrics = ServerMetrics::registered(&registry);
        // One replica keeps the classic shared scheduler (its `engine.*`
        // metrics land in the server registry); more puts the router in
        // front, whose `router.*` metrics land there instead.
        let backend = if config.replicas > 1 {
            Backend::Pool(Arc::new(Router::new_with_obs(
                lm,
                Arc::clone(&bpe),
                RouterConfig {
                    replicas: config.replicas,
                    affinity: config.affinity,
                    max_inflight: config.max_inflight,
                    engine: EngineConfig {
                        policy: config.policy,
                        cache: config.cache,
                        retry: config.retry,
                        tools: config.tools.clone(),
                        ..EngineConfig::default()
                    },
                    ..RouterConfig::default()
                },
                RouterObs {
                    registry: Some(registry.clone()),
                    ..RouterObs::default()
                },
            )))
        } else {
            Backend::Single(Arc::new(Scheduler::with_retry(
                Box::new(lm),
                config.policy,
                config.cache,
                config.retry,
                SchedulerObs {
                    registry: Some(registry.clone()),
                    ..SchedulerObs::default()
                },
            )))
        };
        let shared = Arc::new(ConnShared {
            backend,
            serialized_tokenizer: serialized,
            bpe,
            stop: Arc::clone(&stop),
            registry: registry.clone(),
            metrics,
            stream_metrics: StreamMetrics::registered(&registry),
            next_request: AtomicU64::new(0),
            faults: config.faults,
            read_timeout: config.read_timeout.max(Duration::from_millis(1)),
            tools: config.tools,
        });
        let max_connections = config.max_connections;

        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            while !accept_shared.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let m = &accept_shared.metrics;
                        // Shed before spawning a handler: over-budget
                        // connections get the typed BUSY frame and are
                        // closed, protecting the connections already
                        // being served.
                        if m.connections_active.get() as usize >= max_connections {
                            m.shed.inc();
                            let mut w = BufWriter::new(stream);
                            let _ = write_busy(&mut w);
                            continue; // dropping `w` closes the socket
                        }
                        m.connections.inc();
                        // The gauge moves in the accept loop (not the
                        // handler) so the shed check above never races a
                        // handler that has not started yet.
                        m.connections_active.add(1);
                        let shared = Arc::clone(&accept_shared);
                        // Handlers are detached: a worker blocked reading
                        // from a still-connected client must not hold up
                        // shutdown; it polls the stop flag and exits.
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &shared);
                            shared.metrics.connections_active.sub(1);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ServerHandle {
            addr,
            stop,
            shared,
            registry,
            handle: Some(handle),
        })
    }
}

fn handle_connection(stream: TcpStream, shared: &ConnShared) -> std::io::Result<()> {
    // Short socket timeout so reads poll the stop flag; `read_timeout` is
    // enforced on top as an idle budget between complete requests.
    stream.set_read_timeout(Some(READ_POLL.min(shared.read_timeout)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let mut idle = Duration::ZERO;
    loop {
        let before = Instant::now();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {
                idle = Duration::ZERO;
                let start = Instant::now();
                let ordinal = shared.next_request.fetch_add(1, Ordering::SeqCst) + 1;
                match shared.faults.action(ordinal) {
                    Some(FaultAction::Drop) => {
                        shared.metrics.faults_injected.inc();
                        return Ok(()); // close without replying
                    }
                    Some(FaultAction::Stall(d)) => {
                        shared.metrics.faults_injected.inc();
                        std::thread::sleep(d);
                    }
                    Some(FaultAction::Garble) => {
                        shared.metrics.faults_injected.inc();
                        // A frame that parses as no known reply: the
                        // client must treat the stream as unusable.
                        writeln!(writer, "LOGITS 1 not-hex")?;
                        writer.flush()?;
                        line.clear();
                        continue;
                    }
                    None => {}
                }
                // STREAM is the one request that needs the reader (its
                // source payload follows the header line), so it is
                // handled here rather than in `respond`.
                if let Some(rest) = line.trim_end().strip_prefix("STREAM ") {
                    match rest.parse::<usize>() {
                        Ok(n) => {
                            let mut buf = vec![0u8; n];
                            read_exact_polling(&mut reader, &mut buf, shared)?;
                            match String::from_utf8(buf) {
                                Ok(source) => serve_stream(&source, &mut writer, shared)?,
                                Err(_) => {
                                    writeln!(writer, "ERR STREAM payload not UTF-8")?;
                                    writer.flush()?;
                                }
                            }
                        }
                        Err(_) => {
                            writeln!(writer, "ERR STREAM length not a number")?;
                            writer.flush()?;
                        }
                    }
                    shared.metrics.requests.inc();
                    shared
                        .metrics
                        .request_latency_us
                        .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    line.clear();
                    continue;
                }
                let done = respond(line.trim_end(), &mut writer, shared)?;
                shared.metrics.requests.inc();
                shared
                    .metrics
                    .request_latency_us
                    .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                line.clear();
                if done {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timed-out reads keep any partial line buffered in
                // `line`; the next pass appends the rest.
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(()); // server shutting down
                }
                idle += before.elapsed();
                if idle >= shared.read_timeout {
                    return Ok(()); // idle connection dropped
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads exactly `buf.len()` bytes, tolerating the short socket-timeout
/// polls `handle_connection` configures (a `STREAM` payload may arrive
/// split across reads) while honouring the stop flag and idle budget.
fn read_exact_polling(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    shared: &ConnShared,
) -> std::io::Result<()> {
    let mut filled = 0;
    let mut idle = Duration::ZERO;
    while filled < buf.len() {
        let before = Instant::now();
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-payload",
                ))
            }
            Ok(n) => {
                filled += n;
                idle = Duration::ZERO;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Err(std::io::Error::other("server shutting down"));
                }
                idle += before.elapsed();
                if idle >= shared.read_timeout {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "payload stalled past the read timeout",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Executes one streamed query: events ship as `EVENT <wire>` lines
/// (flushed per event, so the client sees tokens as they decode), then
/// a terminal frame — `DONE` on success, `RETRY <msg>` for transient
/// serving faults (same client semantics as a scoring `RETRY`), `ERR
/// <msg>` otherwise.
///
/// A client that disconnects mid-stream cancels the query cooperatively:
/// the first failed event write fires the [`CancelToken`] wired into
/// both the runtime's sink and its scheduler handle, so the decode loop
/// stops at its next step and queued scheduler work is released.
///
/// [`CancelToken`]: lmql_lm::CancelToken
fn serve_stream<W: Write>(
    source: &str,
    writer: &mut W,
    shared: &ConnShared,
) -> std::io::Result<()> {
    let sched = match &shared.backend {
        Backend::Single(sched) => sched,
        Backend::Pool(pool) => return serve_stream_pooled(source, writer, shared, pool),
    };
    let (sink, events, cancel) = StreamSink::channel();
    let lm = BatchedLm::with_cancel(Arc::clone(sched), cancel.clone());
    let bpe = Arc::clone(&shared.bpe);
    let registry = shared.registry.clone();
    let tools = shared.tools.clone();
    let started = Instant::now();

    let result = std::thread::scope(|s| {
        let producer = s.spawn(move || {
            let mut rt = Runtime::new(Arc::new(lm), bpe);
            rt.set_metrics_registry(registry);
            if !tools.is_empty() {
                rt.set_tools(tools);
            }
            // Contain model panics to this query, as the engine does.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.run_streamed(source, sink)
            }))
            .unwrap_or_else(|payload| {
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("stream worker panicked")
                    .to_owned();
                Err(lmql::Error::Model { message })
            })
        });

        let mut saw_token = false;
        let mut write_failed = false;
        for event in events {
            shared.stream_metrics.events.inc();
            if !saw_token && matches!(event, QueryEvent::TokenDelta { .. }) {
                saw_token = true;
                shared
                    .stream_metrics
                    .first_token_us
                    .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            if write_failed {
                continue; // drain so the producer's sends keep landing
            }
            let ok = writeln!(writer, "EVENT {}", event.to_wire())
                .and_then(|()| writer.flush())
                .is_ok();
            if !ok {
                // The client is gone: stop the query instead of
                // decoding for nobody.
                cancel.cancel();
                write_failed = true;
            }
        }
        producer.join().unwrap_or_else(|_| {
            Err(lmql::Error::Model {
                message: "stream worker panicked".to_owned(),
            })
        })
    });

    match result {
        Ok(_) => writeln!(writer, "DONE")?,
        Err(e) => {
            if matches!(e, lmql::Error::Cancelled) {
                shared.stream_metrics.cancelled.inc();
            }
            let msg = e.to_string();
            // Preserve the taxonomy across the hop: transient model
            // faults (including expired deadlines) are retryable, the
            // rest — including cancellation — are terminal.
            let transient = msg.contains("transient model error")
                || msg.contains("model call deadline exceeded");
            if transient {
                writeln!(writer, "RETRY {}", msg.replace('\n', " "))?;
            } else {
                writeln!(writer, "ERR {}", msg.replace('\n', " "))?;
            }
        }
    }
    writer.flush()
}

/// The replica-pool variant of [`serve_stream`]: the query routes
/// through the [`Router`] (prefix affinity, health fail-over, admission
/// control) and its events forward to the wire. A shed query answers
/// with the typed `BUSY` frame. On a replica failure mid-stream the
/// router retries on a healthy replica and replays the stream from the
/// start, so the client may see the leading events twice — the terminal
/// result is byte-identical either way.
fn serve_stream_pooled<W: Write>(
    source: &str,
    writer: &mut W,
    shared: &ConnShared,
    pool: &Router,
) -> std::io::Result<()> {
    let started = Instant::now();
    let stream = pool.stream_query(source);
    let mut saw_token = false;
    let mut write_failed = false;
    for event in stream.events() {
        shared.stream_metrics.events.inc();
        if !saw_token && matches!(event, QueryEvent::TokenDelta { .. }) {
            saw_token = true;
            shared
                .stream_metrics
                .first_token_us
                .record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
        if write_failed {
            continue; // drain so the router's sends keep landing
        }
        let ok = writeln!(writer, "EVENT {}", event.to_wire())
            .and_then(|()| writer.flush())
            .is_ok();
        if !ok {
            // The client is gone: stop the query instead of decoding
            // for nobody.
            stream.cancel();
            write_failed = true;
        }
    }
    match stream.wait() {
        Ok(_) => writeln!(writer, "DONE")?,
        Err(e) if router::is_busy(&e) => write_busy(writer)?,
        Err(e) => {
            if matches!(e, lmql::Error::Cancelled) {
                shared.stream_metrics.cancelled.inc();
            }
            let msg = e.to_string();
            let transient = msg.contains("transient model error")
                || msg.contains("model call deadline exceeded");
            if transient {
                writeln!(writer, "RETRY {}", msg.replace('\n', " "))?;
            } else {
                writeln!(writer, "ERR {}", msg.replace('\n', " "))?;
            }
        }
    }
    writer.flush()
}

/// Rejects token ids outside the model's vocabulary. Network input must
/// never reach the model with ids `score` is not defined on — a panic in
/// the shared dispatcher would take the whole server down.
fn check_ids(ids: &[TokenId], vocab_len: usize) -> Result<(), String> {
    match ids.iter().find(|t| t.0 as usize >= vocab_len) {
        Some(t) => Err(format!(
            "token id {} out of range (vocab size {vocab_len})",
            t.0
        )),
        None => Ok(()),
    }
}

/// Answers one request line. Returns `true` when the client said `QUIT`.
fn respond<W: Write>(line: &str, writer: &mut W, shared: &ConnShared) -> std::io::Result<bool> {
    let vocab_len = shared.bpe.vocab().len();
    if line == "QUIT" {
        return Ok(true);
    }
    if line == "TOKENIZER" {
        write_tokenizer(writer, &shared.serialized_tokenizer)?;
        return Ok(false);
    }
    if line == "STATS" {
        write_stats(writer, &shared.registry.snapshot().render_text())?;
        return Ok(false);
    }
    if let Some(rest) = line.strip_prefix("SCORE ") {
        match parse_score_request(rest).and_then(|ids| {
            check_ids(&ids, vocab_len)?;
            Ok(ids)
        }) {
            Ok(ids) => match shared.backend.try_score(&ids) {
                // The pool shed the frame at its admission cap.
                None => write_busy(writer)?,
                Some(Ok(logits)) => write_logits(writer, &logits)?,
                Some(Err(e)) => write_model_error(writer, &e)?,
            },
            Err(msg) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
            }
        }
        return Ok(false);
    }
    if let Some(rest) = line.strip_prefix("BATCH ") {
        match parse_batch_request(rest).and_then(|contexts| {
            for ctx in &contexts {
                check_ids(ctx, vocab_len)?;
            }
            Ok(contexts)
        }) {
            Ok(contexts) => {
                let refs: Vec<&[TokenId]> = contexts.iter().map(Vec::as_slice).collect();
                match shared.backend.try_score_many(&refs) {
                    None => write_busy(writer)?,
                    // The wire batch reply is all-or-nothing; if any item
                    // failed (after the scheduler's own per-item recovery),
                    // fail the frame and let the client retry it whole.
                    Some(results) => match results.into_iter().collect::<Result<Vec<_>, _>>() {
                        Ok(all) => write_batch_logits(writer, &all)?,
                        Err(e) => write_model_error(writer, &e)?,
                    },
                }
            }
            Err(msg) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
            }
        }
        return Ok(false);
    }
    writeln!(writer, "ERR unknown command {line:?}")?;
    writer.flush()?;
    Ok(false)
}

/// Maps a model-side failure onto the wire: transient failures (and
/// expired deadlines — the backend may merely be slow) become a `RETRY`
/// frame the client treats as retryable; fatal and cancelled ones (a
/// retry cannot resurrect an abandoned request) become `ERR`.
fn write_model_error<W: Write>(writer: &mut W, e: &LmError) -> std::io::Result<()> {
    match e {
        LmError::Fatal { .. } | LmError::Cancelled => writeln!(writer, "ERR {e}")?,
        _ => writeln!(writer, "RETRY {e}")?,
    }
    writer.flush()
}

/// A running server: its address and a way to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ConnShared>,
    registry: Registry,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters of the prefix cache(s) connections score through: the
    /// shared scheduler's cache, or — behind a replica pool — every
    /// replica's cache summed.
    pub fn cache_stats(&self) -> RadixStats {
        match &self.shared.backend {
            Backend::Single(sched) => sched.cache_stats(),
            Backend::Pool(pool) => pool.stats().cache_totals(),
        }
    }

    /// The server's metrics registry: `server.*` connection/request
    /// counters plus the shared scheduler's `engine.*` metrics. The same
    /// data clients fetch with a `STATS` frame.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A frozen snapshot of every server and engine metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Stops accepting connections, joins the accept thread, and shuts the
    /// scheduler down — draining every in-flight batch, so requests being
    /// processed still get their replies. Handler threads notice the stop
    /// flag on their next read poll and close their connections.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Drain queued and in-flight work; late scores from still-running
        // handlers fall back to inline scoring inside the scheduler(s).
        match &self.shared.backend {
            Backend::Single(sched) => sched.shutdown(),
            Backend::Pool(pool) => pool.shutdown(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
