//! The wire protocol: line-based commands with exact-bits float encoding.
//!
//! ```text
//! client → server                server → client
//! ───────────────                ───────────────
//! TOKENIZER                      TOKENIZER <byte-len>\n<raw bytes>
//! SCORE <n> <id…>                LOGITS <n> <f64-bits-as-hex…>
//! BATCH <k> <n1> <id…> <n2> …    BATCHLOGITS <k>\n<k LOGITS lines>
//! STATS                          STATS <byte-len>\n<metrics text>
//! QUIT                           (connection closes)
//!                                ERR <message>      (on any failure)
//! ```
//!
//! Logits travel as hexadecimal `f64` bit patterns, so a remote `score()`
//! is bit-identical to a local one — decoding determinism survives the
//! network hop.

use lmql_lm::Logits;
use lmql_tokenizer::TokenId;
use std::io::{self, BufRead, Write};

/// Writes the typed `BUSY` shed frame (sent at accept time when the
/// server is over its connection budget, before closing).
pub(crate) fn write_busy<W: Write>(w: &mut W) -> io::Result<()> {
    writeln!(w, "BUSY")?;
    w.flush()
}

/// Reads one reply line, surfacing the two conditions every reply shares:
/// EOF (the connection died mid-request) and the typed `BUSY` shed frame.
/// Both come back as I/O errors with kinds the client classifies as
/// transient ([`UnexpectedEof`](io::ErrorKind::UnexpectedEof) →
/// connection lost, [`ConnectionRefused`](io::ErrorKind::ConnectionRefused)
/// → busy).
fn read_reply_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-reply",
        ));
    }
    let line = line.trim_end();
    if line == "BUSY" {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "server busy (load shed)",
        ));
    }
    if let Some(msg) = line.strip_prefix("RETRY ") {
        // A transient server-side failure: the request may succeed if
        // re-sent. The connection itself is still synced.
        return Err(io::Error::other(format!("server retry: {msg}")));
    }
    Ok(line.to_owned())
}

/// Writes a `SCORE` request.
pub(crate) fn write_score_request<W: Write>(w: &mut W, context: &[TokenId]) -> io::Result<()> {
    write!(w, "SCORE {}", context.len())?;
    for t in context {
        write!(w, " {}", t.0)?;
    }
    writeln!(w)?;
    w.flush()
}

/// Parses the id list of a `SCORE` request (after the command word).
pub(crate) fn parse_score_request(rest: &str) -> Result<Vec<TokenId>, String> {
    let mut parts = rest.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or("SCORE missing count")?
        .parse()
        .map_err(|_| "SCORE count not a number".to_owned())?;
    let ids: Vec<TokenId> = parts
        .map(|p| p.parse::<u32>().map(TokenId))
        .collect::<Result<_, _>>()
        .map_err(|_| "SCORE ids must be integers".to_owned())?;
    if ids.len() != n {
        return Err(format!("SCORE declared {n} ids, got {}", ids.len()));
    }
    Ok(ids)
}

/// Writes a `BATCH` request: `k` contexts, each as a length followed by
/// its ids, all on one line.
pub(crate) fn write_batch_request<W: Write>(w: &mut W, contexts: &[&[TokenId]]) -> io::Result<()> {
    write!(w, "BATCH {}", contexts.len())?;
    for ctx in contexts {
        write!(w, " {}", ctx.len())?;
        for t in *ctx {
            write!(w, " {}", t.0)?;
        }
    }
    writeln!(w)?;
    w.flush()
}

/// Parses the body of a `BATCH` request (after the command word).
pub(crate) fn parse_batch_request(rest: &str) -> Result<Vec<Vec<TokenId>>, String> {
    let mut parts = rest.split_whitespace();
    let k: usize = parts
        .next()
        .ok_or("BATCH missing count")?
        .parse()
        .map_err(|_| "BATCH count not a number".to_owned())?;
    let mut contexts = Vec::with_capacity(k);
    for i in 0..k {
        let n: usize = parts
            .next()
            .ok_or_else(|| format!("BATCH context {i} missing length"))?
            .parse()
            .map_err(|_| format!("BATCH context {i} length not a number"))?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let id = parts
                .next()
                .ok_or_else(|| format!("BATCH context {i} truncated"))?
                .parse::<u32>()
                .map_err(|_| "BATCH ids must be integers".to_owned())?;
            ids.push(TokenId(id));
        }
        contexts.push(ids);
    }
    if parts.next().is_some() {
        return Err("BATCH has trailing tokens".to_owned());
    }
    Ok(contexts)
}

/// Writes a `BATCHLOGITS` reply: a count header, then one standard
/// `LOGITS` line per context (same exact-bits encoding as `SCORE`).
pub(crate) fn write_batch_logits<W: Write>(w: &mut W, all: &[Logits]) -> io::Result<()> {
    writeln!(w, "BATCHLOGITS {}", all.len())?;
    for logits in all {
        write_logits(w, logits)?;
    }
    w.flush()
}

/// Reads a `BATCHLOGITS` reply (or surfaces an `ERR`).
pub(crate) fn read_batch_logits<R: BufRead>(r: &mut R) -> io::Result<Vec<Logits>> {
    let line = read_reply_line(r)?;
    let line = line.as_str();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(io::Error::other(format!("server error: {msg}")));
    }
    let k: usize = line
        .strip_prefix("BATCHLOGITS ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| io::Error::other(format!("unexpected reply {line:?}")))?;
    (0..k).map(|_| read_logits(r)).collect()
}

/// Writes a `LOGITS` reply.
pub(crate) fn write_logits<W: Write>(w: &mut W, logits: &Logits) -> io::Result<()> {
    write!(w, "LOGITS {}", logits.len())?;
    for &z in logits.scores() {
        write!(w, " {:x}", z.to_bits())?;
    }
    writeln!(w)?;
    w.flush()
}

/// Reads a `LOGITS` reply (or surfaces an `ERR`).
pub(crate) fn read_logits<R: BufRead>(r: &mut R) -> io::Result<Logits> {
    let line = read_reply_line(r)?;
    let line = line.as_str();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(io::Error::other(format!("server error: {msg}")));
    }
    let rest = line
        .strip_prefix("LOGITS ")
        .ok_or_else(|| io::Error::other(format!("unexpected reply {line:?}")))?;
    let mut parts = rest.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| io::Error::other("LOGITS missing count"))?;
    let scores: Vec<f64> = parts
        .map(|p| {
            u64::from_str_radix(p, 16)
                .map(f64::from_bits)
                .map_err(|_| io::Error::other("bad logit bits"))
        })
        .collect::<Result<_, _>>()?;
    if scores.len() != n {
        return Err(io::Error::other(format!(
            "LOGITS declared {n} values, got {}",
            scores.len()
        )));
    }
    Ok(Logits::from_vec(scores))
}

/// Writes the `TOKENIZER` reply: a byte-length header line then the raw
/// serialized tokenizer.
pub(crate) fn write_tokenizer<W: Write>(w: &mut W, serialized: &str) -> io::Result<()> {
    writeln!(w, "TOKENIZER {}", serialized.len())?;
    w.write_all(serialized.as_bytes())?;
    w.flush()
}

/// Reads the `TOKENIZER` reply.
pub(crate) fn read_tokenizer<R: BufRead>(r: &mut R) -> io::Result<String> {
    let line = read_reply_line(r)?;
    let line = line.as_str();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(io::Error::other(format!("server error: {msg}")));
    }
    let n: usize = line
        .strip_prefix("TOKENIZER ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| io::Error::other(format!("unexpected reply {line:?}")))?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::other("tokenizer payload not UTF-8"))
}

/// Writes the `STATS` reply: a byte-length header line then the metrics
/// snapshot in plain-text exposition format (see
/// [`lmql_obs::MetricsSnapshot::render_text`]).
pub(crate) fn write_stats<W: Write>(w: &mut W, rendered: &str) -> io::Result<()> {
    writeln!(w, "STATS {}", rendered.len())?;
    w.write_all(rendered.as_bytes())?;
    w.flush()
}

/// Reads a `STATS` reply (or surfaces an `ERR`).
pub(crate) fn read_stats<R: BufRead>(r: &mut R) -> io::Result<String> {
    let line = read_reply_line(r)?;
    let line = line.as_str();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(io::Error::other(format!("server error: {msg}")));
    }
    let n: usize = line
        .strip_prefix("STATS ")
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| io::Error::other(format!("unexpected reply {line:?}")))?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::other("stats payload not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn score_request_roundtrip() {
        let mut buf = Vec::new();
        write_score_request(&mut buf, &[TokenId(3), TokenId(0), TokenId(99)]).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let rest = line.trim_end().strip_prefix("SCORE ").unwrap();
        assert_eq!(
            parse_score_request(rest).unwrap(),
            vec![TokenId(3), TokenId(0), TokenId(99)]
        );
    }

    #[test]
    fn score_request_validation() {
        assert!(parse_score_request("2 1").is_err());
        assert!(parse_score_request("x").is_err());
        assert!(parse_score_request("1 -4").is_err());
    }

    #[test]
    fn logits_roundtrip_is_bit_exact() {
        let logits = Logits::from_vec(vec![0.1, -13.37, f64::MIN_POSITIVE, 12.0]);
        let mut buf = Vec::new();
        write_logits(&mut buf, &logits).unwrap();
        let got = read_logits(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got.scores(), logits.scores());
    }

    #[test]
    fn err_reply_surfaces() {
        let err = read_logits(&mut Cursor::new(b"ERR broken\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn batch_request_roundtrip() {
        let c1 = [TokenId(1), TokenId(2)];
        let c2: [TokenId; 0] = [];
        let c3 = [TokenId(7)];
        let mut buf = Vec::new();
        write_batch_request(&mut buf, &[&c1, &c2, &c3]).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let rest = line.trim_end().strip_prefix("BATCH ").unwrap();
        assert_eq!(
            parse_batch_request(rest).unwrap(),
            vec![c1.to_vec(), c2.to_vec(), c3.to_vec()]
        );
    }

    #[test]
    fn batch_request_validation() {
        assert!(parse_batch_request("x").is_err());
        assert!(
            parse_batch_request("2 1 5").is_err(),
            "second context missing"
        );
        assert!(parse_batch_request("1 2 5").is_err(), "context truncated");
        assert!(parse_batch_request("1 1 5 9").is_err(), "trailing tokens");
        assert!(parse_batch_request("1 1 -4").is_err(), "negative id");
    }

    #[test]
    fn batch_logits_roundtrip_is_bit_exact() {
        let all = vec![
            Logits::from_vec(vec![0.25, -7.5]),
            Logits::from_vec(vec![f64::MIN_POSITIVE]),
        ];
        let mut buf = Vec::new();
        write_batch_logits(&mut buf, &all).unwrap();
        let got = read_batch_logits(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got.len(), all.len());
        for (g, a) in got.iter().zip(&all) {
            assert_eq!(g.scores(), a.scores());
        }
    }

    #[test]
    fn batch_err_reply_surfaces() {
        let err = read_batch_logits(&mut Cursor::new(b"ERR nope\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn stats_roundtrip() {
        let payload = "counter server.requests 7\ngauge engine.cache.entries 3\n";
        let mut buf = Vec::new();
        write_stats(&mut buf, payload).unwrap();
        let got = read_stats(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn stats_err_reply_surfaces() {
        let err = read_stats(&mut Cursor::new(b"ERR down\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("down"));
    }

    #[test]
    fn busy_frame_surfaces_as_connection_refused() {
        let mut buf = Vec::new();
        write_busy(&mut buf).unwrap();
        let err = read_logits(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("busy"));
    }

    #[test]
    fn eof_mid_reply_surfaces_as_unexpected_eof() {
        let err = read_logits(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let err = read_batch_logits(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn tokenizer_roundtrip() {
        let payload = "lmql-bpe-v1\nalphabet 61 62\n";
        let mut buf = Vec::new();
        write_tokenizer(&mut buf, payload).unwrap();
        let got = read_tokenizer(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, payload);
    }
}
