//! Observability substrate for the LMQL reproduction.
//!
//! Serving-oriented LM-program runtimes treat telemetry as first-class:
//! without it there is no way to tell *why* a query was slow, which holes
//! burned decoder calls, or whether the prefix cache and microbatcher are
//! earning their keep under load. This crate provides the two primitives
//! the rest of the workspace instruments itself with:
//!
//! - [`Registry`] / [`Counter`] / [`Gauge`] / [`Histogram`] — a metrics
//!   registry whose hot path (recording) is lock-free atomics; snapshots
//!   render as deterministic plain-text exposition ([`MetricsSnapshot`]),
//! - [`Tracer`] — a per-query structured trace recorder producing span
//!   and instant events, exportable as Chrome `trace_event` JSON
//!   ([`chrome::to_chrome_json`], loadable in `chrome://tracing` /
//!   Perfetto) or a human-readable dump ([`Tracer::render_text`]).
//!
//! Both are **free when off**: a disabled [`Tracer`] (the default)
//! records nothing and allocates nothing, and metric handles are plain
//! relaxed atomics. Tests get determinism via [`Tracer::manual`], whose
//! virtual clock advances 1µs per read.

pub mod chrome;

mod metrics;
mod router;
mod stream;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use router::RouterMetrics;
pub use stream::StreamMetrics;
pub use trace::{ArgValue, EventKind, SpanGuard, TraceEvent, Tracer};
