//! Streaming-delivery metrics.
//!
//! The streaming pipeline (core event sinks → engine stream handles →
//! server `STREAM` frames) reports its health through three handles:
//! how many events were delivered, how long the consumer waited for the
//! first generated token, and how many streams were abandoned before
//! completing. They follow the same pattern as the scheduler's
//! [`SchedMetrics`]: always allocated (a few atomics), registered into a
//! [`Registry`] only when one is given.
//!
//! [`SchedMetrics`]: https://docs.rs/lmql-engine

use crate::metrics::{Counter, Histogram, Registry};

/// Metric handles for one streaming producer (an engine, a server).
#[derive(Debug, Clone, Default)]
pub struct StreamMetrics {
    /// Events emitted to consumers (tokens, chunks, forks, terminals).
    pub events: Counter,
    /// Latency from stream start to the first `TokenDelta`, in
    /// microseconds — the "time to first token" a consumer observes.
    pub first_token_us: Histogram,
    /// Streams abandoned by their consumer before the query finished.
    pub cancelled: Counter,
}

impl StreamMetrics {
    /// Handles registered into `registry` under `stream.*` names
    /// (`stream.events`, `stream.first_token_us`, `stream.cancelled`).
    pub fn registered(registry: &Registry) -> Self {
        StreamMetrics {
            events: registry.counter("stream.events"),
            first_token_us: registry.histogram("stream.first_token_us"),
            cancelled: registry.counter("stream.cancelled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_handles_work_unregistered() {
        let m = StreamMetrics::default();
        m.events.inc();
        m.first_token_us.record(1500);
        m.cancelled.inc();
        assert_eq!(m.events.get(), 1);
        assert_eq!(m.cancelled.get(), 1);
        assert_eq!(m.first_token_us.snapshot().count, 1);
    }

    #[test]
    fn registered_handles_surface_in_snapshots() {
        let r = Registry::new();
        let m = StreamMetrics::registered(&r);
        m.events.add(3);
        m.first_token_us.record(250);
        let snap = r.snapshot();
        assert_eq!(snap.counter("stream.events"), Some(3));
        assert_eq!(snap.histogram("stream.first_token_us").unwrap().count, 1);
        assert_eq!(snap.counter("stream.cancelled"), Some(0));
    }
}
