//! Router (replica-pool) metrics.
//!
//! The front-end router fans queries across a pool of replica engines;
//! these handles report how that fan-out behaves: where queries landed,
//! how long routing + execution took, how often the router shed load or
//! failed a query over to a healthy replica. They follow the same
//! pattern as [`StreamMetrics`](crate::StreamMetrics): always allocated
//! (a few atomics), registered into a [`Registry`] only when one is
//! given.

use crate::metrics::{Counter, Histogram, Registry};

/// Metric handles for one router instance.
#[derive(Debug, Clone, Default)]
pub struct RouterMetrics {
    /// Queries routed (admitted and dispatched to a replica).
    pub queries: Counter,
    /// End-to-end router latency per query in microseconds: routing
    /// decision plus replica execution.
    pub latency_us: Histogram,
    /// Queries rejected at admission (the router-level BUSY shed).
    pub shed: Counter,
    /// Queries retried on another replica after their first replica
    /// failed mid-query.
    pub failovers: Counter,
    /// Routing decisions that bypassed the affinity choice because the
    /// preferred replica was unhealthy (breaker open).
    pub rerouted: Counter,
}

impl RouterMetrics {
    /// Handles registered into `registry`: `router.queries`,
    /// `router.latency_us`, `router.shed`, `router.rerouted`, and — the
    /// fail-over counter queried by the acceptance tests —
    /// `engine.replica.failover`.
    pub fn registered(registry: &Registry) -> Self {
        RouterMetrics {
            queries: registry.counter("router.queries"),
            latency_us: registry.histogram("router.latency_us"),
            shed: registry.counter("router.shed"),
            failovers: registry.counter("engine.replica.failover"),
            rerouted: registry.counter("router.rerouted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_handles_work_unregistered() {
        let m = RouterMetrics::default();
        m.queries.inc();
        m.latency_us.record(800);
        m.shed.inc();
        m.failovers.inc();
        assert_eq!(m.queries.get(), 1);
        assert_eq!(m.shed.get(), 1);
        assert_eq!(m.failovers.get(), 1);
        assert_eq!(m.latency_us.snapshot().count, 1);
    }

    #[test]
    fn registered_handles_surface_in_snapshots() {
        let r = Registry::new();
        let m = RouterMetrics::registered(&r);
        m.queries.add(4);
        m.failovers.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("router.queries"), Some(4));
        assert_eq!(snap.counter("engine.replica.failover"), Some(1));
        assert_eq!(snap.counter("router.shed"), Some(0));
    }
}
