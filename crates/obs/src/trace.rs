//! Per-query structured tracing: span and instant events on a shared
//! recorder, exportable as Chrome `trace_event` JSON ([`crate::chrome`])
//! or a human-readable dump.
//!
//! A [`Tracer`] is a cheap clonable handle that is either *recording* or
//! *disabled*. The disabled state is the default and costs nothing: every
//! method checks one `Option` and returns without allocating, so
//! instrumentation can stay unconditionally in place on hot paths.
//! Formatted span names go through [`Tracer::span_lazy`] so the `format!`
//! itself is skipped when disabled.
//!
//! Timestamps come from a monotonic wall clock by default. Tests use
//! [`Tracer::manual`], where every clock read advances a virtual clock by
//! exactly 1µs — event timing becomes a deterministic function of the
//! sequence of recorded events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A primitive argument value attached to an event. Numbers are stored
/// unformatted; rendering happens only at export time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of `trace_event` an event renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (Chrome phase `X`).
    Complete,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `hole:ANSWER`).
    pub name: String,
    /// Category (e.g. `decode`, `engine`, `cache`).
    pub cat: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Span duration in µs (0 for instants).
    pub dur_us: u64,
    /// Small integer id of the recording thread (assigned in first-seen
    /// order, starting at 1).
    pub tid: u64,
    /// Key–value arguments.
    pub args: Vec<(String, ArgValue)>,
}

#[derive(Debug)]
enum Clock {
    Wall(Instant),
    /// Deterministic test clock: every read returns the previous value
    /// plus one microsecond.
    Manual(AtomicU64),
}

#[derive(Debug)]
struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
    clock: Clock,
    /// Thread name → small tid mapping, in first-seen order.
    tids: Mutex<Vec<std::thread::ThreadId>>,
}

impl Recorder {
    fn now_us(&self) -> u64 {
        match &self.clock {
            Clock::Wall(epoch) => epoch.elapsed().as_micros() as u64,
            Clock::Manual(tick) => tick.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = self.tids.lock().expect("tracer poisoned");
        match tids.iter().position(|t| *t == id) {
            Some(i) => i as u64 + 1,
            None => {
                tids.push(id);
                tids.len() as u64
            }
        }
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().expect("tracer poisoned").push(event);
    }
}

/// A handle to a trace recorder — or a disabled no-op.
///
/// # Example
///
/// ```
/// use lmql_obs::Tracer;
///
/// let tracer = Tracer::manual(); // deterministic clock for the doctest
/// {
///     let mut span = tracer.span("engine", "dispatch");
///     span.arg("batch", 4u64);
/// } // span ends when the guard drops
/// tracer.instant("cache", "hit");
/// let events = tracer.events();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[0].name, "dispatch"); // recorded when the guard drops
/// assert_eq!(events[1].name, "hit");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    recorder: Option<Arc<Recorder>>,
}

impl Tracer {
    /// A disabled tracer: all recording methods are allocation-free
    /// no-ops. Same as `Tracer::default()`.
    pub fn disabled() -> Self {
        Tracer { recorder: None }
    }

    /// A recording tracer on the monotonic wall clock.
    pub fn recording() -> Self {
        Tracer {
            recorder: Some(Arc::new(Recorder {
                events: Mutex::new(Vec::new()),
                clock: Clock::Wall(Instant::now()),
                tids: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A recording tracer on a deterministic virtual clock: each clock
    /// read advances time by 1µs, so tests see reproducible timestamps.
    pub fn manual() -> Self {
        Tracer {
            recorder: Some(Arc::new(Recorder {
                events: Mutex::new(Vec::new()),
                clock: Clock::Manual(AtomicU64::new(0)),
                tids: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being recorded. Callers can skip expensive
    /// argument construction when `false`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Starts a span; it ends (and is recorded) when the guard drops.
    /// `name` is only copied when recording.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &str) -> SpanGuard {
        match &self.recorder {
            None => SpanGuard { active: None },
            Some(_) => self.start_span(cat, name.to_owned()),
        }
    }

    /// Like [`span`](Self::span) for names that need formatting: the
    /// closure only runs when recording.
    #[inline]
    pub fn span_lazy(&self, cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
        match &self.recorder {
            None => SpanGuard { active: None },
            Some(_) => self.start_span(cat, name()),
        }
    }

    fn start_span(&self, cat: &'static str, name: String) -> SpanGuard {
        let rec = self.recorder.as_ref().expect("checked by callers");
        SpanGuard {
            active: Some(ActiveSpan {
                recorder: Arc::clone(rec),
                name,
                cat,
                start_us: rec.now_us(),
                args: Vec::new(),
            }),
        }
    }

    /// Records a point-in-time event.
    #[inline]
    pub fn instant(&self, cat: &'static str, name: &str) {
        if let Some(rec) = &self.recorder {
            let ts_us = rec.now_us();
            let tid = rec.tid();
            rec.push(TraceEvent {
                name: name.to_owned(),
                cat: cat.to_owned(),
                kind: EventKind::Instant,
                ts_us,
                dur_us: 0,
                tid,
                args: Vec::new(),
            });
        }
    }

    /// Records a point-in-time event with arguments; the closure building
    /// them only runs when recording.
    #[inline]
    pub fn instant_with(
        &self,
        cat: &'static str,
        name: &str,
        args: impl FnOnce() -> Vec<(String, ArgValue)>,
    ) {
        if let Some(rec) = &self.recorder {
            let ts_us = rec.now_us();
            let tid = rec.tid();
            rec.push(TraceEvent {
                name: name.to_owned(),
                cat: cat.to_owned(),
                kind: EventKind::Instant,
                ts_us,
                dur_us: 0,
                tid,
                args: args(),
            });
        }
    }

    /// A copy of all events recorded so far, in recording order.
    /// Empty for a disabled tracer.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.recorder {
            None => Vec::new(),
            Some(rec) => rec.events.lock().expect("tracer poisoned").clone(),
        }
    }

    /// Human-readable dump: one line per event in start order, nested by
    /// span containment per thread.
    pub fn render_text(&self) -> String {
        let mut events = self.events();
        events.sort_by_key(|e| (e.tid, e.ts_us, std::cmp::Reverse(e.dur_us)));
        let mut out = String::new();
        // Per-thread stack of span end times for indentation.
        let mut open: Vec<(u64, u64)> = Vec::new(); // (tid, end_ts)
        for e in &events {
            open.retain(|&(tid, end)| tid != e.tid || e.ts_us < end);
            let depth = open.iter().filter(|&&(tid, _)| tid == e.tid).count();
            let indent = "  ".repeat(depth);
            let mut line = format!(
                "[t{} {:>9.3}ms +{:>8.3}ms] {}{} {}",
                e.tid,
                e.ts_us as f64 / 1000.0,
                e.dur_us as f64 / 1000.0,
                indent,
                e.cat,
                e.name
            );
            for (k, v) in &e.args {
                let rendered = match v {
                    ArgValue::U64(n) => n.to_string(),
                    ArgValue::F64(f) => format!("{f}"),
                    ArgValue::Str(s) => format!("{s:?}"),
                };
                line.push_str(&format!(" {k}={rendered}"));
            }
            line.push('\n');
            out.push_str(&line);
            if e.kind == EventKind::Complete {
                open.push((e.tid, e.ts_us + e.dur_us));
            }
        }
        out
    }
}

#[derive(Debug)]
struct ActiveSpan {
    recorder: Arc<Recorder>,
    name: String,
    cat: &'static str,
    start_us: u64,
    args: Vec<(String, ArgValue)>,
}

/// An open span: records a [`EventKind::Complete`] event on drop.
#[derive(Debug)]
#[must_use = "a span measures until the guard drops; binding to _ ends it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches an argument (no-op on a disabled tracer).
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(a) = &mut self.active {
            a.args.push((key.to_owned(), value.into()));
        }
    }

    /// Whether this guard belongs to a recording tracer.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = a.recorder.now_us();
            let tid = a.recorder.tid();
            a.recorder.push(TraceEvent {
                name: a.name,
                cat: a.cat.to_owned(),
                kind: EventKind::Complete,
                ts_us: a.start_us,
                dur_us: end.saturating_sub(a.start_us),
                tid,
                args: a.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let mut s = t.span("cat", "name");
            s.arg("k", 1u64);
            assert!(!s.is_recording());
        }
        t.instant("cat", "evt");
        t.instant_with("cat", "evt2", || panic!("must not run when disabled"));
        let _ = t.span_lazy("cat", || panic!("must not format when disabled"));
        assert!(t.events().is_empty());
        assert_eq!(t.render_text(), "");
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let record = || {
            let t = Tracer::manual();
            {
                let mut outer = t.span("a", "outer");
                outer.arg("n", 2u64);
                let _inner = t.span("a", "inner");
            }
            t.instant("b", "done");
            t.events()
        };
        let a = record();
        let b = record();
        assert_eq!(a, b, "identical event sequences → identical traces");
        // outer starts at tick 1, inner spans ticks 2..3, outer ends at 4.
        let outer = a.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!((outer.ts_us, outer.dur_us), (1, 3));
        let inner = a.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!((inner.ts_us, inner.dur_us), (2, 1));
    }

    #[test]
    fn span_lazy_formats_only_when_enabled() {
        let t = Tracer::manual();
        {
            let _s = t.span_lazy("decode", || format!("hole:{}", "X"));
        }
        assert_eq!(t.events()[0].name, "hole:X");
    }

    #[test]
    fn tids_are_small_and_stable() {
        let t = Tracer::manual();
        t.instant("c", "main1");
        std::thread::scope(|s| {
            s.spawn(|| t.instant("c", "worker"));
        });
        t.instant("c", "main2");
        let events = t.events();
        let main1 = events.iter().find(|e| e.name == "main1").unwrap();
        let main2 = events.iter().find(|e| e.name == "main2").unwrap();
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(main1.tid, main2.tid);
        assert_ne!(main1.tid, worker.tid);
        assert!(main1.tid >= 1 && worker.tid <= 2);
    }

    #[test]
    fn render_text_nests_by_containment() {
        let t = Tracer::manual();
        {
            let _outer = t.span("a", "outer");
            t.instant("b", "inside");
        }
        t.instant("b", "after");
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("a outer"), "{text}");
        assert!(lines[1].contains("  b inside"), "{text}");
        assert!(lines[2].ends_with("b after"), "{text}");
    }
}
