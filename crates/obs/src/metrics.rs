//! The metrics registry: counters, gauges and log-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! shared atomics, so the *hot path* — incrementing a counter from the
//! engine dispatcher or a server handler — is a single lock-free atomic
//! op. The registry itself only takes a lock at registration time (once
//! per metric name) and when snapshotting.
//!
//! Histograms are log₂-bucketed: bucket 0 holds the value `0`, bucket
//! `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the top bucket (index
//! [`Histogram::BUCKETS`]` - 1` = 64) holds `[2^63, u64::MAX]`. Every
//! `u64` — including `0` and `u64::MAX` — lands in exactly one bucket.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero (unregistered; see [`Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (occupancy, bytes, queue depth).
/// Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero (unregistered; see [`Registry::gauge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races is *not* guaranteed;
    /// callers pair `add`/`sub` so the value stays non-negative).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; Histogram::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed latency/size histogram. Clones share the same cells;
/// recording is lock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Number of buckets: one for `0`, one per power of two up to and
    /// including `2^63..=u64::MAX`.
    pub const BUCKETS: usize = 65;

    /// A fresh histogram (unregistered; see [`Registry::histogram`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: `0` → 0, otherwise `⌊log₂ v⌋ + 1`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.cells;
        c.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.cells;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_index`]).
    pub buckets: [u64; Histogram::BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty. Bucketed, so an approximation
    /// with ≤ 2× relative error.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i (== lower bound of i+1).
                return if i + 1 < Histogram::BUCKETS {
                    Histogram::bucket_lower_bound(i + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
            }
        }
        self.max
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A frozen, name-sorted view of every metric in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Snapshot of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Plain-text exposition, one metric per line, deterministically
    /// ordered by kind then name:
    ///
    /// ```text
    /// counter engine.cache_hits 42
    /// gauge engine.cache_bytes 1024
    /// histogram engine.batch_size count=3 sum=12 mean=4.00 p50<=3 p99<=7 max=6
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} mean={:.2} p50<={} p99<={} max={}",
                h.count,
                h.sum,
                h.mean(),
                h.quantile_bound(0.5),
                h.quantile_bound(0.99),
                h.max,
            );
        }
        out
    }
}

/// A named collection of metrics. Cloning shares the registry; handles
/// obtained from it keep working (and being visible in snapshots) for the
/// registry's whole lifetime.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Registers an externally created counter under `name`, so values
    /// recorded through existing handles appear in snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register_counter(&self, name: &str, counter: Counter) {
        let mut m = self.metrics.lock().expect("registry poisoned");
        let prev = m.insert(name.to_owned(), Metric::Counter(counter));
        assert!(prev.is_none(), "metric {name:?} registered twice");
    }

    /// Registers an externally created gauge under `name`, so values
    /// recorded through existing handles appear in snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register_gauge(&self, name: &str, gauge: Gauge) {
        let mut m = self.metrics.lock().expect("registry poisoned");
        let prev = m.insert(name.to_owned(), Metric::Gauge(gauge));
        assert!(prev.is_none(), "metric {name:?} registered twice");
    }

    /// Registers an externally created histogram under `name`, so values
    /// recorded through existing handles appear in snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register_histogram(&self, name: &str, histogram: Histogram) {
        let mut m = self.metrics.lock().expect("registry poisoned");
        let prev = m.insert(name.to_owned(), Metric::Histogram(histogram));
        assert!(prev.is_none(), "metric {name:?} registered twice");
    }

    /// A frozen view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_get() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 43, "clones share the cell");
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_bucket_edges() {
        // 0 is its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        // The top bucket holds everything from 2^63 up to u64::MAX.
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
        assert!(Histogram::bucket_index(u64::MAX) < Histogram::BUCKETS);
        // Bounds are consistent with indices.
        for i in 0..Histogram::BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_records_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
        // Sum wraps: 0 + u64::MAX.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 110);
        assert!((s.mean() - 22.0).abs() < 1e-12);
        // p50 (3rd of 5 observations) lands in bucket [2,4): bound 3.
        assert_eq!(s.quantile_bound(0.5), 3);
        // p99 → the 100 observation, bucket [64,128): bound 127.
        assert_eq!(s.quantile_bound(0.99), 127);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), 0);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.snapshot().counter("a"), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn register_external_counter() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(7);
        r.register_counter("pre", c.clone());
        c.inc();
        assert_eq!(r.snapshot().counter("pre"), Some(8));
    }

    #[test]
    fn exposition_is_deterministic_and_ordered() {
        let r = Registry::new();
        r.counter("z.count").inc();
        r.counter("a.count").add(3);
        r.gauge("m.bytes").set(64);
        r.histogram("b.sizes").record(4);
        let text = r.snapshot().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "counter a.count 3");
        assert_eq!(lines[1], "counter z.count 1");
        assert_eq!(lines[2], "gauge m.bytes 64");
        assert!(lines[3].starts_with("histogram b.sizes count=1 sum=4 mean=4.00"));
        assert_eq!(text, r.snapshot().render_text(), "stable across snapshots");
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }
}
